"""Legacy setup shim: enables `pip install -e .` on offline hosts
(no wheel package available for PEP 660 editable builds)."""
from setuptools import setup

setup()
