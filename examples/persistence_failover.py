#!/usr/bin/env python3
"""Scenario: crash recovery with snapshots, op-log, and rollback defense.

An order-processing store survives a host crash: state is rebuilt from
the last sealed snapshot plus the authenticated operation log (§7's
fine-grained alternative, implemented in ``repro.ext.oplog``).  A
malicious host then tries to serve a *stale* snapshot — and is caught by
the monotonic counter.
"""

from repro import ShieldStore, Snapshotter, shield_opt
from repro.errors import RollbackError
from repro.ext import OperationLog, RecoveringStore
from repro.sim import MonotonicCounterService, SealingService


def main() -> None:
    sealing = SealingService(b"platform-sealing-secret")
    counters = MonotonicCounterService()
    snapshotter = Snapshotter(sealing, counters)

    store = ShieldStore(shield_opt(num_buckets=256, num_mac_hashes=128))
    ctx = store.enclave.context()

    print("== phase 1: live traffic, periodic snapshot ==")
    for i in range(50):
        store.set(f"order:{i:04d}".encode(), f"status=paid;amount={i * 10}".encode())
    snapshot_v1 = snapshotter.snapshot_bytes(ctx, store)
    print(f"snapshot v1: {len(snapshot_v1)} bytes, "
          f"counter={counters.read('shieldstore')}")

    print("\n== phase 2: post-snapshot writes go to the op-log ==")
    log = OperationLog(store, counters, counter_batch=8)
    wrapped = RecoveringStore(store, log)
    wrapped.set(b"order:0050", b"status=paid;amount=500")
    wrapped.set(b"order:0007", b"status=refunded;amount=70")
    wrapped.delete(b"order:0013")
    wrapped.increment(b"metrics:orders", 3)
    log_blob = log.dump()
    print(f"op-log: {len(log)} records, {len(log_blob)} bytes, "
          f"{log.counter_bumps} counter bumps (batched)")

    print("\n== phase 3: crash! recover on a fresh machine ==")
    recovered = ShieldStore(shield_opt(num_buckets=256, num_mac_hashes=128))
    rctx = recovered.enclave.context()
    snapshotter.restore(rctx, snapshot_v1, recovered)
    replayed = log.replay(rctx, log_blob, recovered)
    print(f"restored {len(recovered)} keys ({replayed} log records replayed)")
    print("order:0007 ->", recovered.get(b"order:0007"))
    print("order:0013 deleted?", not recovered.contains(b"order:0013"))

    print("\n== phase 4: the host serves a stale snapshot ==")
    snapshot_v2 = snapshotter.snapshot_bytes(rctx, recovered)  # counter -> 2
    stale_target = ShieldStore(shield_opt(num_buckets=256, num_mac_hashes=128))
    try:
        snapshotter.restore(stale_target.enclave.context(), snapshot_v1, stale_target)
        print("-> STALE SNAPSHOT ACCEPTED (bug!)")
    except RollbackError as exc:
        print(f"-> rollback detected: {exc}")

    print(f"\nsimulated recovery time: {recovered.machine.elapsed_us() / 1000:.2f} ms")


if __name__ == "__main__":
    main()
