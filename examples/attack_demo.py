#!/usr/bin/env python3
"""Threat-model walkthrough: every attack from the paper, live.

A privileged adversary (malicious OS / cold-boot / bus probing) owns all
untrusted memory.  This script mounts each attack class against a
running store and shows the defense firing:

1. snooping      -> sees only ciphertext
2. tampering     -> per-entry MAC (IntegrityError)
3. replay        -> in-enclave bucket-set hashes (ReplayError)
4. chain hiding  -> authenticated chain lengths (IntegrityError)
5. pointer abuse -> §7 enclave-range check (PointerSafetyError)
6. enclave read  -> refused by hardware (EnclaveError)
"""

import struct

from repro import Attacker, ShieldStore, shield_opt
from repro.core.entry import HEADER_SIZE, MAC_SIZE, unpack_header
from repro.errors import (
    EnclaveError,
    IntegrityError,
    KeyNotFoundError,
    PointerSafetyError,
    ReplayError,
)
from repro.sim.memory import ENCLAVE_BASE


def find_entry(store, key):
    """Walk raw untrusted chains to locate a key's record (attacker POV
    needs no keys for this: layout is public)."""
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    mem = store.machine.memory
    addr = int.from_bytes(mem.raw_read(store.buckets.slot_addr(bucket), 8), "little")
    while addr:
        header = unpack_header(mem.raw_read(addr, HEADER_SIZE))
        plain = store.suite.decrypt(
            header.iv_ctr, mem.raw_read(addr + HEADER_SIZE, header.kv_size)
        )
        if plain[: header.key_size] == key:
            return addr, header
        addr = header.next_ptr
    raise LookupError(key)


def expect(exc_types, action, label):
    try:
        action()
    except exc_types as exc:
        print(f"  [DETECTED] {label}: {type(exc).__name__}")
        return
    print(f"  [MISSED!]  {label} went unnoticed")


def main() -> None:
    # MAC cache on: hot reads verify against the enclave-cached MAC
    # lists in O(1).  Every attack below must still be detected — a
    # replay may surface as IntegrityError instead of ReplayError when
    # the stale entry is compared against the cached (current) MAC.
    store = ShieldStore(
        shield_opt(num_buckets=64, num_mac_hashes=32, mac_cache_bytes=64 * 1024)
    )
    attacker = Attacker(store.machine.memory)
    store.set(b"victim-key", b"medical-record: [REDACTED]")
    addr, header = find_entry(store, b"victim-key")

    print("1. snooping untrusted memory")
    record = attacker.read(addr, header.total_size)
    print(f"  raw entry bytes: {record[:40].hex()}...")
    print(f"  plaintext visible? {b'medical' in record}")

    print("2. flipping a ciphertext bit")
    attacker.flip_bit(addr + HEADER_SIZE + 2, 4)
    expect((IntegrityError, ReplayError), lambda: store.get(b"victim-key"),
           "ciphertext tamper")
    attacker.flip_bit(addr + HEADER_SIZE + 2, 4)  # restore
    print("  restored ->", store.get(b"victim-key")[:15], b"...")

    print("3. replaying a stale version")
    snapshot_entry = attacker.snapshot(addr, header.total_size)
    bucket = store.keyring.keyed_bucket_hash(b"victim-key", store.config.num_buckets)
    mac_ptr = int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket) + 8, 8),
        "little",
    )
    snapshot_macb = attacker.snapshot(mac_ptr, store.macbuckets.node_size)
    store.set(b"victim-key", b"medical-record: updated-v2")
    attacker.replay(snapshot_entry)
    attacker.replay(snapshot_macb)
    expect((ReplayError, IntegrityError),
           lambda: store.get(b"victim-key"), "stale-entry replay")

    print("4. hiding an entry by truncating its chain")
    fresh = ShieldStore(shield_opt(num_buckets=4, num_mac_hashes=2))
    fresh_attacker = Attacker(fresh.machine.memory)
    for i in range(12):
        fresh.set(f"key-{i}".encode(), b"x")
    target_bucket = fresh.keyring.keyed_bucket_hash(b"key-3", 4)
    head = int.from_bytes(
        fresh.machine.memory.raw_read(fresh.buckets.slot_addr(target_bucket), 8),
        "little",
    )
    fresh_attacker.write(head, struct.pack("<Q", 0))  # cut the chain
    expect((IntegrityError, ReplayError, KeyNotFoundError),
           lambda: [fresh.get(f"key-{i}".encode()) for i in range(12)],
           "chain truncation")

    print("5. redirecting a pointer into the enclave")
    attacker.write(
        store.buckets.slot_addr(bucket), struct.pack("<Q", ENCLAVE_BASE + 4096)
    )
    expect(PointerSafetyError, lambda: store.get(b"victim-key"),
           "enclave-range pointer")

    print("6. reading enclave memory directly")
    expect(EnclaveError,
           lambda: attacker.read(store.mactree.base, 16),
           "EPC read attempt")

    print("7. reading the enclave's verified-MAC cache")
    expect(EnclaveError,
           lambda: attacker.read(store.maccache.base, 16),
           "MAC-cache EPC read attempt")
    print(f"  (cache served {store.stats.mac_cache_hits} verified hits "
          f"during the attacks above)")


if __name__ == "__main__":
    main()
