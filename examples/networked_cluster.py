#!/usr/bin/env python3
"""Scenario: a real TCP deployment with remote attestation.

Runs an actual ShieldStore server on a localhost socket (not the cost
model — real frames, real handshake) and drives it with three clients:

* two legitimate clients that attest the enclave and share data;
* one client expecting a *different* enclave measurement, which must
  refuse to connect (supply-chain check: wrong code in the enclave).
"""

from repro import AttestationService, ShieldStore, shield_opt
from repro.errors import AttestationError
from repro.net import TCPShieldClient, TCPShieldServer


def main() -> None:
    ias = AttestationService(b"shared-attestation-root")
    store = ShieldStore(shield_opt(num_buckets=1024, num_mac_hashes=512))
    server = TCPShieldServer(store, ias)
    server.start()
    host, port = server.address
    print(f"server enclave listening on {host}:{port}")
    print(f"enclave measurement: {store.enclave.measurement.hex()[:24]}...")

    try:
        print("\n== client A: attest, write ==")
        alice = TCPShieldClient(
            server.address, ias, store.enclave.measurement, bytes(range(32))
        )
        alice.set(b"inventory:widget", b"count=150;price=9.99")
        alice.increment(b"inventory:orders", 1)
        print("A wrote inventory:widget")

        print("\n== client B: attest, read what A wrote ==")
        bob = TCPShieldClient(
            server.address, ias, store.enclave.measurement, bytes(range(32, 64))
        )
        print("B reads ->", bob.get(b"inventory:widget"))
        print("B appends, gets ->", bob.append(b"inventory:widget", b";restock=soon"))

        print("\n== client C: expects a different enclave build ==")
        wrong_measurement = bytes(32)
        try:
            TCPShieldClient(
                server.address, ias, wrong_measurement, bytes(range(64, 96))
            )
            print("-> C CONNECTED (bug!)")
        except AttestationError as exc:
            print(f"-> C refused to trust the server: {exc}")

        alice.close()
        bob.close()
    finally:
        server.close()
    print("\nserver stopped; all session keys forgotten")


if __name__ == "__main__":
    main()
