#!/usr/bin/env python3
"""Quickstart: a shielded key-value store in five minutes.

Creates a ShieldStore on a simulated SGX machine, runs the basic
operation surface, peeks at what an attacker actually sees in untrusted
memory, and prints the simulated performance counters.
"""

from repro import Attacker, ShieldStore, shield_opt


def main() -> None:
    # A store with 4096 hash buckets and 2048 in-enclave MAC hashes.
    # (The paper's production shape is 8M buckets / 4M hashes.)
    store = ShieldStore(shield_opt(num_buckets=4096, num_mac_hashes=2048))

    print("== basic operations ==")
    store.set(b"user:1001", b'{"name": "alice", "plan": "pro"}')
    store.set(b"user:1002", b'{"name": "bob", "plan": "free"}')
    print("get user:1001 ->", store.get(b"user:1001"))

    # Server-side computation (§3.2): the enclave transforms values
    # without the client ever shipping plaintext over the wire.
    store.increment(b"stats:logins", 1)
    store.increment(b"stats:logins", 1)
    print("logins ->", store.get(b"stats:logins"))
    store.append(b"audit:1001", b"login;")
    store.append(b"audit:1001", b"update-profile;")
    print("audit log ->", store.get(b"audit:1001"))

    print("\n== what the attacker sees ==")
    attacker = Attacker(store.machine.memory)
    base, size = attacker.untrusted_allocations()[-1]
    sample = attacker.read(base, min(size, 128))
    print(f"untrusted bytes at 0x{base:x}: {sample[:48].hex()}...")
    print("plaintext visible?", b"alice" in sample)

    print("\n== simulated cost accounting ==")
    machine = store.machine
    print(f"simulated time: {machine.elapsed_us():.1f} us")
    counters = machine.counters.snapshot()
    for name in ("aes_calls", "cmac_calls", "decryptions", "epc_faults"):
        print(f"  {name}: {counters[name]}")
    print(f"store stats: {store.stats.gets} gets, {store.stats.sets} sets, "
          f"{store.stats.hint_skips} hint skips")


if __name__ == "__main__":
    main()
