#!/usr/bin/env python3
"""Scenario: a leaderboard with verified range queries (§7 future work).

The paper's hash index cannot answer "scores between X and Y"; §7 points
at skiplist-style indexes as future work.  ``repro.ext.rangestore``
implements it: an ordered index over encrypted entries with re-designed
integrity metadata (per-segment hashes), so range *results* are
authenticated — a malicious host cannot drop the top player from the
leaderboard without detection.
"""

from repro import Attacker
from repro.errors import IntegrityError, ReplayError
from repro.ext import RangeShieldStore


def score_key(score: int, player: str) -> bytes:
    # Descending-friendly composite key: zero-padded score then name.
    return f"score:{score:08d}:{player}".encode()


def main() -> None:
    board = RangeShieldStore(segment_size=8)
    players = [
        ("aria", 9120), ("bren", 8430), ("caro", 8430), ("dmitri", 7210),
        ("eva", 6980), ("finn", 5500), ("gus", 4470), ("hana", 3020),
        ("ivan", 2210), ("june", 1100),
    ]
    for player, score in players:
        board.set(score_key(score, player), f"{player}|clan=red".encode())
    print(f"leaderboard holds {len(board)} entries")

    print("\n== verified range query: scores 5000..9000 ==")
    for key, value in board.range(score_key(5000, ""), score_key(9000, "~")):
        print(" ", key.decode(), "->", value.decode())

    print("\n== the host tries to hide the champion ==")
    attacker = Attacker(board.machine.memory)
    champion_addr = board._index.search(score_key(9120, "aria"))
    attacker.flip_bit(champion_addr + 40, 1)  # corrupt the record
    try:
        list(board.range(score_key(9000, ""), score_key(9999, "~")))
        print("-> range returned silently (bug!)")
    except (IntegrityError, ReplayError) as exc:
        print(f"-> tampering detected during range scan: {type(exc).__name__}")

    print("\n== point ops still work elsewhere ==")
    board.set(score_key(9500, "kai"), b"kai|clan=blue")
    print("new champion:", board.get(score_key(9500, "kai")).decode())
    print(f"simulated time: {board.machine.elapsed_us():.1f} us")


if __name__ == "__main__":
    main()
