#!/usr/bin/env python3
"""Scenario: a multi-tenant session cluster with TTLs and elasticity.

Combines the extensions into one deployment story:

* three ShieldStore shards (independent enclaves, secrets, attestation)
  behind consistent hashing;
* session items carry confidential TTLs (the host cannot even see when
  they lapse);
* the cluster scales out under load — a fourth shard joins and only the
  keys whose ring ownership changed migrate;
* one shard is drained for maintenance without losing a key.
"""

from repro import AttestationService, shield_opt
from repro.ext import ExpiringStore
from repro.ext.cluster import ShieldCluster


class ExpiringCluster:
    """TTL wrapper over every shard of a cluster."""

    def __init__(self, cluster: ShieldCluster):
        self.cluster = cluster
        self._wrappers = {}

    def _store_for(self, key: bytes) -> ExpiringStore:
        node = self.cluster._checked_owner(key)
        if node.node_id not in self._wrappers:
            self._wrappers[node.node_id] = ExpiringStore(node.store)
        return self._wrappers[node.node_id]

    def set(self, key, value, ttl_us=None):
        self._store_for(key).set(key, value, ttl_us)

    def get(self, key):
        return self._store_for(key).get(key)


def main() -> None:
    cluster = ShieldCluster(
        shield_opt(num_buckets=512, num_mac_hashes=256),
        AttestationService(b"fleet-attestation-root"),
        num_nodes=3,
    )
    sessions = ExpiringCluster(cluster)

    print("== populate: 300 tenant sessions across 3 shards ==")
    for tenant in ("acme", "globex", "initech"):
        for i in range(100):
            sessions.set(
                f"{tenant}:session:{i:03d}".encode(),
                f"user={tenant}-{i}".encode(),
                ttl_us=30_000_000.0,  # 30 simulated seconds
            )
    print("shard sizes:", cluster.shard_sizes())
    print("lookup:", sessions.get(b"acme:session:042"))

    print("\n== scale out: add node-3 under load ==")
    migrated_before = cluster.keys_migrated
    cluster.add_node("node-3")
    print(f"migrated {cluster.keys_migrated - migrated_before} of {len(cluster)} keys")
    print("shard sizes:", cluster.shard_sizes())
    print("data intact:", sessions.get(b"globex:session:007"))

    print("\n== drain node-1 for maintenance ==")
    moved = cluster.remove_node("node-1")
    print(f"drained {moved} keys; shard sizes: {cluster.shard_sizes()}")
    print("data intact:", sessions.get(b"initech:session:099"))

    print("\n== per-shard isolation ==")
    masters = {n.store.keyring.master[:4].hex() for n in cluster.nodes.values()}
    print(f"{len(cluster.nodes)} shards, {len(masters)} distinct master secrets")
    print(f"cluster wall-clock (busiest shard): "
          f"{cluster.total_elapsed_us() / 1000:.1f} ms simulated")


if __name__ == "__main__":
    main()
