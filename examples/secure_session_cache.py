#!/usr/bin/env python3
"""Scenario: a session cache for a web tier on an untrusted cloud host.

The motivating deployment from the paper's introduction: a
memcached-style cache holding session tokens and per-user state on a
machine whose OS and operator you do not trust.  This example runs the
full production path:

1. the client *remote-attests* the server enclave before trusting it;
2. requests flow over the attested session with authenticated
   encryption (replays of captured requests are rejected);
3. rate limiting runs *server-side* via ``increment`` — the counter
   never leaves the enclave in plaintext;
4. the workload is measured on the simulated cost model, comparing the
   ShieldStore server against the naive in-enclave baseline.
"""

from repro import AttestationService, ShieldStore, shield_opt
from repro.errors import ProtocolError
from repro.experiments.common import make_machine, scaled
from repro.net import (
    FRONTEND_HOTCALLS,
    NetworkedServer,
    SimClient,
    make_secure_channels,
)
from repro.sim import attested_handshake


def build_attested_server(num_buckets=8192):
    store = ShieldStore(shield_opt(num_buckets=num_buckets, num_mac_hashes=num_buckets // 2))
    ias = AttestationService(b"deployment-attestation-secret")
    # The client verifies the enclave measurement and binds a session.
    client_suite, server_suite = attested_handshake(
        ias, store.enclave.context(), store.enclave, client_entropy=bytes(range(32))
    )
    client_channel, server_channel = make_secure_channels(client_suite, server_suite)
    server = NetworkedServer(
        store,
        frontend=FRONTEND_HOTCALLS,
        server_channel=server_channel,
        client_channel=client_channel,
    )
    return server, SimClient(server)


def main() -> None:
    server, client = build_attested_server()

    print("== session workflow over the attested channel ==")
    client.set(b"session:7f3a", b"user=alice;roles=admin;csrf=x91k")
    client.set(b"session:99c1", b"user=bob;roles=viewer;csrf=m3qa")
    print("lookup 7f3a ->", client.get(b"session:7f3a"))

    print("\n== server-side rate limiting ==")
    for _ in range(3):
        count = client.increment(b"ratelimit:alice:/api/export")
    print("alice export calls this window:", count)
    if count > 2:
        print("-> 429 Too Many Requests (decided without exposing the counter)")

    print("\n== captured-request replay is rejected ==")
    from repro.net.message import Request, encode_request

    # The attacker sniffs a legitimate (sealed) request off the wire...
    captured = server.client_channel.seal(
        encode_request(Request("increment", b"ratelimit:alice:/api/export", b"1"))
    )
    server.server_channel.open(captured)  # ...which the server serves once.
    try:
        server.server_channel.open(captured)  # replaying the same frame
        print("-> REPLAY ACCEPTED (bug!)")
    except ProtocolError as exc:
        print(f"-> replay rejected: {exc}")

    print("\n== simulated throughput: ShieldStore vs naive baseline ==")
    from repro.experiments.common import (
        SYSTEM_BASELINE,
        SYSTEM_SHIELDOPT,
        build_system,
        preload,
        run_workload,
    )
    from repro.workloads import OperationStream, RD95_Z, SMALL

    scale = 0.002
    for name in (SYSTEM_BASELINE, SYSTEM_SHIELDOPT):
        machine = make_machine(1, scale)
        system = build_system(name, machine, scale)
        stream = OperationStream(RD95_Z, SMALL, scaled(10_000_000, scale))
        preload(system, stream)
        result = run_workload(system, name, stream, 1500)
        print(f"  {name:10s}: {result.kops:8.1f} Kop/s (simulated)")


if __name__ == "__main__":
    main()
