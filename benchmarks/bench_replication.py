"""Replication overhead, anti-entropy convergence and partition chaos.

Measures the replicated multi-node cluster (``repro.ext.replication``)
end to end over real TCP nodes:

* **replication-factor overhead** — acked QUORUM write throughput
  through a :class:`ReplicaClient` against groups of N = 2 and 3
  replicas, versus the same workload against one unreplicated
  ``TCPShieldServer`` (factor 1).  Every replicated write fans the
  versioned record to all N nodes and waits for a majority, so the
  ratio shows what durability costs;
* **anti-entropy convergence** — kill one of three replicas, keep
  writing at QUORUM, restart it empty, and time the Merkle
  push-pull rounds until every replica reports a byte-identical
  verified content digest (plus how many keys the exchange repaired);
* **partition chaos** — the CI gate scenario: three nodes, 5% frame
  drops, one replica partitioned away then healed, one replica killed
  and restarted.  Reports acked QUORUM writes, how many were lost
  (the gate requires **zero**) and whether the group converged.

Workloads are seeded and deterministic; only wall-clock rates vary
run to run.  Results land in ``BENCH_replication.json`` (override
with ``--out``).  ``--quick`` is the CI-sized variant.
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import shield_opt
from repro.core.store import ShieldStore
from repro.errors import StoreError
from repro.ext.replication import ReplicationGroup
from repro.net import TCPShieldClient, TCPShieldServer
from repro.sim import AttestationService, faults
from repro.sim.faults import FaultPlan, FaultRule

VALUE = b"v" * 64


def _config():
    return shield_opt(num_buckets=256, num_mac_hashes=32)


def _baseline_writes(ops: int) -> dict:
    """Factor 1: one attested client against one unreplicated server."""
    store = ShieldStore(_config())
    service = AttestationService(b"bench-replication-ias")
    server = TCPShieldServer(store, service)
    server.start()
    try:
        client = TCPShieldClient(
            server.address, service, store.enclave.measurement,
            entropy=os.urandom(32),
        )
        start = time.perf_counter()
        for i in range(ops):
            client.set(b"bk%06d" % i, VALUE)
        wall = time.perf_counter() - start
        client.close()
    finally:
        server.close()
    return {
        "replicas": 1,
        "ops": ops,
        "wall_ms": round(wall * 1000.0, 2),
        "writes_per_s": round(ops / wall, 1),
    }


def _replicated_writes(num_nodes: int, ops: int, baseline: dict) -> dict:
    group = ReplicationGroup(num_nodes=num_nodes, config=_config())
    try:
        client = group.client("bench-writer")
        start = time.perf_counter()
        for i in range(ops):
            client.set(b"rk%06d" % i, VALUE)
        wall = time.perf_counter() - start
        client.close()
        group.flush_all()
        rate = ops / wall
        return {
            "replicas": num_nodes,
            "ops": ops,
            "wall_ms": round(wall * 1000.0, 2),
            "writes_per_s": round(rate, 1),
            "overhead_vs_single": round(
                baseline["writes_per_s"] / rate, 2
            ),
        }
    finally:
        group.close()


def _convergence(pairs: int) -> dict:
    """Time anti-entropy refilling a replica restarted empty."""
    group = ReplicationGroup(num_nodes=3, config=_config())
    try:
        client = group.client("bench-sync")
        group.kill("node-2")
        for i in range(pairs):
            client.set(b"sk%06d" % i, VALUE)
        group.restart("node-2")
        start = time.perf_counter()
        rounds = 0
        while not group.converged():
            group.sync_all(rounds=1)
            rounds += 1
            if rounds > 16:
                raise StoreError("anti-entropy failed to converge")
        wall = time.perf_counter() - start
        repaired = sum(
            node.store.stats().sync_keys_repaired
            for node in group.live_nodes()
        )
        client.close()
        return {
            "pairs_behind": pairs,
            "rounds": rounds,
            "keys_repaired": repaired,
            "convergence_ms": round(wall * 1000.0, 2),
            "repaired_kpairs_per_s": round(pairs / wall / 1000.0, 2),
        }
    finally:
        group.close()


def _partition_chaos(ops: int) -> dict:
    """The CI gate scenario: drops + healed partition + node kill."""
    group = ReplicationGroup(num_nodes=3, config=_config(),
                             link_deadline_s=0.5)
    plan = FaultPlan([
        FaultRule(point="tcp.client.*", kind="partition",
                  groups=[["node-0"], ["node-1", "node-2"]]),
        FaultRule(point="tcp.client.send", kind="drop", probability=0.05),
    ], seed=11)
    client = group.client("bench-chaos", max_retries=4)
    acked = {}
    attempted = 0
    try:
        calm = ops // 3
        for i in range(calm):
            attempted += 1
            client.set(b"xk%06d" % i, VALUE)
            acked[b"xk%06d" % i] = VALUE
        faults.install(plan)
        try:
            for i in range(calm, 2 * ops // 3):
                attempted += 1
                try:
                    client.set(b"xk%06d" % i, VALUE)
                    acked[b"xk%06d" % i] = VALUE
                except StoreError:
                    pass
            group.kill("node-2")
            for i in range(2 * ops // 3, ops):
                attempted += 1
                try:
                    client.set(b"xk%06d" % i, VALUE)
                    acked[b"xk%06d" % i] = VALUE
                except StoreError:
                    pass
        finally:
            plan.heal()
            faults.uninstall()
        group.restart("node-2")
        group.sync_all(rounds=3)
        lost = sum(
            1 for key, value in acked.items()
            if any(node.store.get(key) != value
                   for node in group.live_nodes())
        )
        return {
            "attempted_writes": attempted,
            "acked_quorum_writes": len(acked),
            "lost_acked_quorum_writes": lost,
            "converged": group.converged(),
            "fault_fires": plan.fires(),
        }
    finally:
        client.close()
        group.close()


def run(ops: int, sync_pairs: int, chaos_ops: int) -> dict:
    baseline = _baseline_writes(ops)
    overhead = [baseline]
    for num_nodes in (2, 3):
        overhead.append(_replicated_writes(num_nodes, ops, baseline))
    return {
        "benchmark": "replication",
        "config": {"ops": ops, "sync_pairs": sync_pairs,
                   "chaos_ops": chaos_ops, "value_bytes": len(VALUE)},
        "write_overhead": overhead,
        "anti_entropy": _convergence(sync_pairs),
        "chaos": _partition_chaos(chaos_ops),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=600,
                        help="acked writes per throughput point")
    parser.add_argument("--sync-pairs", type=int, default=400,
                        help="keys the restarted replica is behind")
    parser.add_argument("--chaos-ops", type=int, default=90,
                        help="writes attempted across the chaos phases")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.quick:
        args.ops, args.sync_pairs, args.chaos_ops = 150, 120, 60

    report = run(args.ops, args.sync_pairs, args.chaos_ops)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_replication.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    chaos = report["chaos"]
    print(f"acked quorum writes: {chaos['acked_quorum_writes']} "
          f"({chaos['lost_acked_quorum_writes']} lost, "
          f"converged={chaos['converged']})")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
