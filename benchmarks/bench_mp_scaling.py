"""Wall-clock scaling curve for the process-parallel partition engine.

Drives the same seeded YCSB-B mix as ``bench_batch_pipeline.py``
(95% read / 5% update, zipfian 0.99 — the paper's RD95_Z) through:

* ``single-process batched`` — the in-process batched pipeline on a
  4-partition store (the ``batched`` row of BENCH_batch_pipeline.json);
* ``N process workers`` for N in 1/2/4/8 — the shared-nothing
  :class:`~repro.core.procpool.ProcessPartitionPool` engine, one
  long-lived worker process per partition — measured on **both data
  planes**: ``pipe`` (portable length-prefixed pipe frames) and ``shm``
  (sealed shared-memory rings, the HotCalls-style switchless crossing).

Every process point also records the **per-stage breakdown** of where
the round trip went: ``serialize_s`` (parent-side sealing + codec),
``ipc_wait_s`` (parent blocked on the plane) and ``worker_compute_s``
(the workers' own request clocks), plus the ring counters for the shm
plane (frames, bytes, doorbell activity, peak occupancy).

Each point is measured twice — with the enclave-resident verified-MAC
cache off and on (sized to the working set; per-worker caches need no
cross-process coherence because partitions are disjoint) — and carries
the store-side ``op_stages`` wall split (chain walk / per-entry MAC
crypto / set gather+verify) so the JSON shows the verification time the
cache removes at every worker count.

Total store geometry (buckets, MAC hashes) is held constant across the
worker counts — partitions divide the structure, they don't grow it —
so the curve isolates parallel speedup from capacity effects.

Scaling is bounded by physical cores: worker counts above ``cpus``
measure IPC overhead, not parallel speedup, and the run says so loudly
(stderr warning + a structured ``cpu_warning`` object in the JSON).

Results land in ``BENCH_mp_scaling.json`` (override with ``--out``).
Run ``python benchmarks/bench_mp_scaling.py`` for the full measurement
or ``--quick`` for the CI-sized variant.
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    MODE_PROCESSES,
    PartitionedShieldStore,
    process_mode_supported,
    shield_opt,
)
from repro.core.procpool import DATA_PLANES, default_data_plane
from repro.core.shmring import shm_supported
from repro.sim import Machine
from repro.workloads import SMALL, OperationStream, workload

_BASE_PARTITIONS = 4


def _geometry(pairs: int):
    # Same shape as bench_batch_pipeline: few MAC hashes -> wide MAC
    # sets, the regime where batched once-per-set verification pays off.
    return max(_BASE_PARTITIONS * 64, pairs // 2), _BASE_PARTITIONS * 4


def _mac_cache_budget(pairs: int) -> int:
    # Working-set-sized budget, as in bench_batch_pipeline: one 16 B MAC
    # per resident pair plus bookkeeping, rounded up generously.
    return max(256 * 1024, pairs * 64)


def _build_single(pairs: int, mac_cache_bytes: int = 0) -> PartitionedShieldStore:
    buckets, hashes = _geometry(pairs)
    machine = Machine(num_threads=_BASE_PARTITIONS)
    return PartitionedShieldStore(
        shield_opt(
            num_buckets=buckets,
            num_mac_hashes=hashes,
            mac_cache_bytes=mac_cache_bytes,
        ),
        machine=machine,
        parallel=False,
    )


def _build_procs(
    workers: int, pairs: int, plane: str, mac_cache_bytes: int = 0
) -> PartitionedShieldStore:
    buckets, hashes = _geometry(pairs)
    return PartitionedShieldStore(
        shield_opt(
            num_buckets=buckets,
            num_mac_hashes=hashes,
            mac_cache_bytes=mac_cache_bytes,
        ),
        num_partitions=workers,
        mode=MODE_PROCESSES,
        data_plane=plane,
    )


def _ops_list(pairs: int, ops: int, seed: int):
    stream = OperationStream(workload("RD95_Z"), SMALL, pairs, seed=seed)
    return stream, list(stream.operations(ops))


def _run_batched(store, ops, batch_size: int) -> float:
    start = time.perf_counter()
    for base in range(0, len(ops), batch_size):
        batch = ops[base : base + batch_size]
        writes = [(op.key, op.value) for op in batch if op.op != "get"]
        reads = [op.key for op in batch if op.op == "get"]
        if writes:
            store.multi_set(writes)
        if reads:
            store.multi_get(reads)
    return time.perf_counter() - start


def _measure(store, label: str, pairs: int, ops: int, batch: int, seed: int) -> dict:
    stream, op_list = _ops_list(pairs, ops, seed)
    store.multi_set([(op.key, op.value) for op in stream.load_operations()])
    wall = _run_batched(store, op_list, batch)
    stats = store.stats()
    result = {
        "label": label,
        "wall_s": round(wall, 4),
        "kops": round(len(op_list) / wall / 1000.0, 1),
        "batches": stats.batches,
        "batch_ops": stats.batch_ops,
        "set_verifications_saved": stats.batch_verifications_saved,
        "mac_cache_hits": stats.mac_cache_hits,
        "mac_cache_misses": stats.mac_cache_misses,
        "mac_cache_evictions": stats.mac_cache_evictions,
        # Store-side wall split (summed across workers); distinct from
        # the transport "stages" below, which time the IPC round trip.
        "op_stages": {
            "walk_s": round(stats.stage_walk_s, 4),
            "crypto_s": round(stats.stage_crypto_s, 4),
            "verify_s": round(stats.stage_verify_s, 4),
        },
    }
    stages = store.stage_timings()
    if stages is not None:
        # Where the round trip went: parent-side sealing/codec, parent
        # blocked on the crossing, and the workers' own request clocks.
        result["stages"] = {k: round(v, 4) for k, v in sorted(stages.items())}
    transport = store.transport_stats()
    if transport.ring_frames:
        result["transport"] = transport.snapshot_dict()
    store.close()
    return result


def run(pairs: int, ops: int, batch_size: int, seed: int, worker_counts,
        planes) -> dict:
    cpus = os.cpu_count() or 1
    budget = _mac_cache_budget(pairs)
    baselines = {}
    for cache_on in (False, True):
        suffix = "+maccache" if cache_on else ""
        baselines[cache_on] = _measure(
            _build_single(pairs, budget if cache_on else 0),
            f"single-process batched{suffix}",
            pairs, ops, batch_size, seed,
        )
        print(f"{baselines[cache_on]['label']:34s} "
              f"{baselines[cache_on]['wall_s']:8.3f} s  "
              f"{baselines[cache_on]['kops']:8.1f} Kop/s")
    baseline = baselines[False]
    points = []
    for workers in worker_counts:
        for plane in planes:
            pair_points = {}
            for cache_on in (False, True):
                suffix = ", maccache" if cache_on else ""
                point = _measure(
                    _build_procs(
                        workers, pairs, plane, budget if cache_on else 0
                    ),
                    f"{workers} process workers [{plane}{suffix}]",
                    pairs, ops, batch_size, seed,
                )
                point["workers"] = workers
                point["data_plane"] = plane
                point["mac_cache"] = cache_on
                point["speedup_vs_single"] = round(
                    baseline["wall_s"] / point["wall_s"], 2
                )
                pair_points[cache_on] = point
                points.append(point)
            # Cache-on vs cache-off at the same worker count and plane.
            pair_points[True]["speedup_maccache"] = round(
                pair_points[False]["wall_s"] / pair_points[True]["wall_s"], 2
            )
            for point in pair_points.values():
                stages = point.get("stages", {})
                breakdown = (
                    f"  [ser {stages.get('serialize_s', 0):.2f}"
                    f" ipc {stages.get('ipc_wait_s', 0):.2f}"
                    f" cpu {stages.get('worker_compute_s', 0):.2f}]"
                    if stages else ""
                )
                print(f"{point['label']:34s} {point['wall_s']:8.3f} s  "
                      f"{point['kops']:8.1f} Kop/s  "
                      f"({point['speedup_vs_single']:.2f}x vs single)"
                      + breakdown)
    notes = []
    cpu_warning = None
    oversubscribed = [w for w in worker_counts if w > cpus]
    if oversubscribed:
        cpu_warning = {
            "cpus": cpus,
            "oversubscribed_worker_counts": oversubscribed,
            "message": (
                f"host has {cpus} cpu(s); worker counts {oversubscribed} "
                "measure IPC overhead, not parallel speedup"
            ),
        }
        notes.append(cpu_warning["message"])
        print(f"warning: {cpu_warning['message']}", file=sys.stderr)
    return {
        "benchmark": "mp_scaling",
        "workload": "RD95_Z (YCSB-B: 95% read / 5% update, zipfian 0.99)",
        "config": {
            "pairs": pairs,
            "ops": ops,
            "batch_size": batch_size,
            "seed": seed,
            "worker_counts": list(worker_counts),
            "data_planes": list(planes),
            "default_data_plane": default_data_plane(),
            "mac_cache_bytes": budget,
        },
        "cpus": cpus,
        "cpu_warning": cpu_warning,
        "baseline": baseline,
        "baseline_maccache": baselines[True],
        "workers": points,
        "notes": notes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=20000)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--data-planes", nargs="+", choices=list(DATA_PLANES),
                        default=None,
                        help="planes to measure (default: pipe and, where "
                             "supported, shm)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer pairs/ops, workers 1+2)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.quick:
        args.pairs, args.ops, args.workers = 1000, 4000, [1, 2]
    if args.data_planes is None:
        args.data_planes = ["pipe"] + (["shm"] if shm_supported() else [])

    if not process_mode_supported():
        print("process mode unsupported on this platform; nothing to measure")
        return 0

    report = run(args.pairs, args.ops, args.batch_size, args.seed,
                 args.workers, args.data_planes)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_mp_scaling.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
