"""Wall-clock scaling curve for the process-parallel partition engine.

Drives the same seeded YCSB-B mix as ``bench_batch_pipeline.py``
(95% read / 5% update, zipfian 0.99 — the paper's RD95_Z) through:

* ``single-process batched`` — the in-process batched pipeline on a
  4-partition store (the ``batched`` row of BENCH_batch_pipeline.json);
* ``N process workers`` for N in 1/2/4/8 — the shared-nothing
  :class:`~repro.core.procpool.ProcessPartitionPool` engine, one
  long-lived worker process per partition, batches shipped over pipes
  as length-prefixed wire frames and executed via ``multi_get`` /
  ``multi_set``.

Total store geometry (buckets, MAC hashes) is held constant across the
worker counts — partitions divide the structure, they don't grow it —
so the curve isolates parallel speedup from capacity effects.

Scaling is bounded by physical cores: the JSON records ``cpus`` and the
per-point ``kops`` so a 1-core container (no real parallelism, IPC
overhead only) and a 4-vCPU CI runner (near-linear to 4 workers) can be
told apart.  The operation sequence is seeded and deterministic; only
``wall_s`` / ``kops`` / speedups vary run to run.

Results land in ``BENCH_mp_scaling.json`` (override with ``--out``).
Run ``python benchmarks/bench_mp_scaling.py`` for the full measurement
or ``--quick`` for the CI-sized variant.
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    MODE_PROCESSES,
    PartitionedShieldStore,
    process_mode_supported,
    shield_opt,
)
from repro.sim import Machine
from repro.workloads import SMALL, OperationStream, workload

_BASE_PARTITIONS = 4


def _geometry(pairs: int):
    # Same shape as bench_batch_pipeline: few MAC hashes -> wide MAC
    # sets, the regime where batched once-per-set verification pays off.
    return max(_BASE_PARTITIONS * 64, pairs // 2), _BASE_PARTITIONS * 4


def _build_single(pairs: int) -> PartitionedShieldStore:
    buckets, hashes = _geometry(pairs)
    machine = Machine(num_threads=_BASE_PARTITIONS)
    return PartitionedShieldStore(
        shield_opt(num_buckets=buckets, num_mac_hashes=hashes),
        machine=machine,
        parallel=False,
    )


def _build_procs(workers: int, pairs: int) -> PartitionedShieldStore:
    buckets, hashes = _geometry(pairs)
    return PartitionedShieldStore(
        shield_opt(num_buckets=buckets, num_mac_hashes=hashes),
        num_partitions=workers,
        mode=MODE_PROCESSES,
    )


def _ops_list(pairs: int, ops: int, seed: int):
    stream = OperationStream(workload("RD95_Z"), SMALL, pairs, seed=seed)
    return stream, list(stream.operations(ops))


def _run_batched(store, ops, batch_size: int) -> float:
    start = time.perf_counter()
    for base in range(0, len(ops), batch_size):
        batch = ops[base : base + batch_size]
        writes = [(op.key, op.value) for op in batch if op.op != "get"]
        reads = [op.key for op in batch if op.op == "get"]
        if writes:
            store.multi_set(writes)
        if reads:
            store.multi_get(reads)
    return time.perf_counter() - start


def _measure(store, label: str, pairs: int, ops: int, batch: int, seed: int) -> dict:
    stream, op_list = _ops_list(pairs, ops, seed)
    store.multi_set([(op.key, op.value) for op in stream.load_operations()])
    wall = _run_batched(store, op_list, batch)
    stats = store.stats()
    result = {
        "label": label,
        "wall_s": round(wall, 4),
        "kops": round(len(op_list) / wall / 1000.0, 1),
        "batches": stats.batches,
        "batch_ops": stats.batch_ops,
        "set_verifications_saved": stats.batch_verifications_saved,
    }
    store.close()
    return result


def run(pairs: int, ops: int, batch_size: int, seed: int, worker_counts) -> dict:
    cpus = os.cpu_count() or 1
    baseline = _measure(
        _build_single(pairs), "single-process batched", pairs, ops, batch_size, seed
    )
    print(f"{baseline['label']:24s} {baseline['wall_s']:8.3f} s  "
          f"{baseline['kops']:8.1f} Kop/s")
    points = []
    for workers in worker_counts:
        point = _measure(
            _build_procs(workers, pairs),
            f"{workers} process workers",
            pairs, ops, batch_size, seed,
        )
        point["workers"] = workers
        point["speedup_vs_single"] = round(
            baseline["wall_s"] / point["wall_s"], 2
        )
        points.append(point)
        print(f"{point['label']:24s} {point['wall_s']:8.3f} s  "
              f"{point['kops']:8.1f} Kop/s  "
              f"({point['speedup_vs_single']:.2f}x vs single)")
    notes = []
    if cpus < max(worker_counts):
        notes.append(
            f"host has {cpus} cpu(s); worker counts above that measure "
            f"IPC overhead, not parallel speedup"
        )
    return {
        "benchmark": "mp_scaling",
        "workload": "RD95_Z (YCSB-B: 95% read / 5% update, zipfian 0.99)",
        "config": {
            "pairs": pairs,
            "ops": ops,
            "batch_size": batch_size,
            "seed": seed,
            "worker_counts": list(worker_counts),
        },
        "cpus": cpus,
        "baseline": baseline,
        "workers": points,
        "notes": notes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=20000)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer pairs/ops, workers 1+2)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.quick:
        args.pairs, args.ops, args.workers = 1000, 4000, [1, 2]

    if not process_mode_supported():
        print("process mode unsupported on this platform; nothing to measure")
        return 0

    report = run(args.pairs, args.ops, args.batch_size, args.seed, args.workers)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_mp_scaling.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    for note in report["notes"]:
        print(f"note: {note}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
