"""Figure 19 — persistence: none vs naive vs optimized snapshots."""

from conftest import record_table

from repro.experiments import fig19


def test_fig19_persistence(benchmark, bench_scale):
    # Every cell must cross at least one snapshot interval; the fastest
    # (small, read-only) cells need ~55k ops to cover 1.15 intervals.
    result = benchmark.pedantic(
        lambda: fig19.run(scale=bench_scale, max_ops=68_000, intervals=1.15),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    headers = list(result.headers)
    naive_col = headers.index("naive loss %")
    opt_col = headers.index("opt loss %")
    large_naive = [r[naive_col] for r in result.rows if r[0] == "large"]
    small_naive = [r[naive_col] for r in result.rows if r[0] == "small"]
    for row in result.rows:
        # Every cell crossed a snapshot: naive must have paid something.
        assert row[naive_col] > 1, (row[0], row[1], "no snapshot occurred?")
        # Optimized persistence costs far less than naive (paper: 2-6.5%
        # vs up to 25%), and never *gains* throughput.
        assert row[opt_col] < row[naive_col]
        assert row[opt_col] < 12
        # Naive stalls are bounded but material on the large set.
        assert row[naive_col] < 40
    # Bigger data sets stall longer under naive snapshots.
    assert min(large_naive) > max(small_naive) * 0.9
    # Read-only + optimized is nearly free (paper: matches no-persistence).
    read_only_opt = [r[opt_col] for r in result.rows if r[1] == "RD100_Z"]
    assert all(v < 5 for v in read_only_opt)
