"""Figure 11 — per-workload throughput, large data set."""

from conftest import record_table

from repro.experiments import fig11


def test_fig11_workloads(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig11.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    ratio_col = list(result.headers).index("shieldbase/baseline")
    # Paper: ~7.3x on RD50 mixes, rising to ~11x on RD95/RD100.
    assert rows["RD50_Z"][ratio_col] > 4
    assert rows["RD95_Z"][ratio_col] > rows["RD50_Z"][ratio_col] * 0.9
    # Read-only beats update-heavy for ShieldStore (no re-encryption).
    opt_col = list(result.headers).index("shieldopt Kop/s")
    assert rows["RD100_Z"][opt_col] > rows["RD50_Z"][opt_col]
