"""Figure 14 — cumulative optimization ablation over chain lengths."""

from conftest import BENCH_SCALE, record_table

from repro.experiments import fig14


def test_fig14_ablation(benchmark):
    # Chain lengths (the experiment's x-dimension) are scale-invariant,
    # so this grid runs at a smaller scale: the 40M-entry cells preload
    # 4x the pairs through 40-long chains.
    scale = min(BENCH_SCALE / 2, 0.001)
    result = benchmark.pedantic(
        lambda: fig14.run(scale=scale, ops=500), rounds=1, iterations=1
    )
    record_table(result)
    by_cell = {(row[0], row[1]): row for row in result.rows}
    # Long chains (1M buckets / 40M entries): KeyOPT must deliver a big
    # win over ShieldBase (paper: the dominant effect in that corner).
    long_chain = by_cell[("1M buckets / 40M entries", "RD95_Z")]
    shieldbase, keyopt, heap, macbucket = long_chain[2:6]
    assert keyopt > shieldbase * 1.5
    # The fully optimized configuration is the best of the column.
    assert macbucket >= max(shieldbase, keyopt) * 0.9
    # Short chains (8M/10M): optimizations matter much less.
    short_chain = by_cell[("8M buckets / 10M entries", "RD95_Z")]
    assert short_chain[5] < short_chain[2] * 2.5
