"""Figure 18 — networked client/server evaluation."""

from conftest import record_table

from repro.experiments import fig18


def test_fig18_networked(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig18.run(scale=bench_scale, ops=max(300, bench_ops // 3)),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    headers = list(result.headers)
    col = {name: headers.index(name) for name in fig18.NET_SYSTEMS}
    for row in result.rows:
        threads = row[0]
        ratio = row[col["shieldopt+hotcalls"]] / row[col["baseline+hotcalls"]]
        if threads == 1:
            # Paper: 4.9-6.4x at 1 thread.
            assert 3.5 < ratio < 10, (row[1], ratio)
        else:
            # Paper: 9.2-10.7x at 4 threads; ours runs high (~17-21x)
            # because the simulated client never saturates the server
            # the way the paper's single 10GbE load generator does.
            assert 6 < ratio < 24, (row[1], ratio)
        # HotCalls beat OCALLs for the same store.
        assert row[col["shieldopt+hotcalls"]] > row[col["shieldopt"]]
        # Insecure systems still beat the shielded store (paper: 3-3.9x).
        gap = row[col["insecure baseline"]] / row[col["shieldopt+hotcalls"]]
        assert 1.3 < gap < 8, (row[1], gap)
