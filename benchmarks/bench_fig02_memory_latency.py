"""Figure 2 — memory access latency w/ and w/o SGX vs working set."""

from conftest import record_table

from repro.experiments import fig02


def test_fig02_memory_latency(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig02.run(scale=bench_scale, accesses=2000), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    # Columns: WSS, NoSGX-r, Enclave-r, Unprot-r, NoSGX-w, Enclave-w, Unprot-w
    small, big = rows[16], rows[4096]
    # In-EPC reads ~5.7x NoSGX (paper §2.1).
    assert 4.0 < small[2] / small[1] < 7.5
    # Unprotected-from-enclave ~= NoSGX at every size.
    assert 0.8 < small[3] / small[1] < 1.2
    assert 0.8 < big[3] / big[1] < 1.2
    # Thrashing reads ~578x, writes ~685x (paper Fig. 2).
    assert 300 < big[2] / big[1] < 900
    assert big[5] / big[4] > big[2] / big[1]  # writes hurt more
    # Latency is monotonically non-decreasing past the EPC knee.
    enclave_reads = [rows[w][2] for w in (64, 96, 128, 256, 1024, 4096)]
    assert all(a <= b * 1.05 for a, b in zip(enclave_reads, enclave_reads[1:]))
