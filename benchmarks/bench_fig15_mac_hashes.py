"""Figure 15 — MAC-hash count trade-off (EPC overflow at 8M)."""

from conftest import record_table

from repro.experiments import fig15


def test_fig15_mac_hashes(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig15.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    for row in result.rows:
        name, one_m, two_m, four_m, eight_m = row
        # More hashes help... (paper: +5..13% from 1M to 4M)
        assert four_m > one_m
        # ...until the array exceeds the EPC and paging wrecks it.
        assert eight_m < four_m * 0.75, (name, four_m, eight_m)
