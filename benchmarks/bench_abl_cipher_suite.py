"""Ablation — reference AES suite vs fast hashlib suite.

The two backends must agree functionally and be charged identical
simulated costs (the cost model keys on byte counts, not the backend);
only *host* wall-clock differs.
"""

import time

from conftest import record_table

from repro.core import ShieldStore, shield_opt
from repro.experiments.common import TableResult


def run_ablation():
    rows = []
    for suite in ("aes-reference", "fast-hashlib"):
        store = ShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=32, suite_name=suite)
        )
        wall_start = time.perf_counter()
        for i in range(250):
            store.set(f"key-{i:04d}".encode(), b"value-" + bytes([i % 250]) * 26)
        for i in range(250):
            assert store.get(f"key-{i:04d}".encode())[:6] == b"value-"
        wall = time.perf_counter() - wall_start
        rows.append(
            [
                suite,
                store.machine.elapsed_us(),
                store.machine.counters.aes_calls,
                round(wall * 1000, 1),
            ]
        )
    return TableResult(
        "Ablation cipher-suite",
        "Reference AES vs fast suite: identical simulated cost, different host cost",
        ["suite", "simulated us", "aes calls", "host ms"],
        rows,
        ["simulated columns must match exactly; host wall-clock differs"],
    )


def test_cipher_suite_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    reference, fast = result.rows
    assert reference[1] == fast[1]  # identical simulated time
    assert reference[2] == fast[2]  # identical crypto call counts
