"""Table 1 — memcached vs baseline parity (networked, no SGX)."""

from conftest import record_table

from repro.experiments import table1


def test_table1_baseline_parity(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: table1.run(scale=bench_scale, ops=bench_ops),
        rounds=1,
        iterations=1,
    )
    record_table(result)
    for threads, memcached, baseline, ratio, _pm, _pb in result.rows:
        # Paper: the two designs perform alike (within ~10%).
        assert 0.85 < ratio < 1.15, (threads, ratio)
    one_thread, four_threads = result.rows[0][2], result.rows[1][2]
    # Paper: 312 -> 846 Kop/s, i.e. meaningful but sub-linear scaling.
    assert 1.8 < four_threads / one_thread < 3.6
