"""Ablation — hash partitioning under skew (the Fig. 8 design's limit).

ShieldStore's lock-free partitioning (§5.3) assumes hash routing spreads
load; a zipfian-hot key pins its whole request stream to one thread.
Sweep the skew and measure 4-thread efficiency — the cost of the
"never synchronize" design decision the paper makes.
"""

from conftest import record_table

from repro.core import PartitionedShieldStore, shield_opt
from repro.experiments.common import TableResult
from repro.sim import Machine
from repro.workloads import SMALL, OperationStream, WorkloadSpec

_PAIRS = 1500
_OPS = 3000


def _throughput(theta, threads):
    machine = Machine(num_threads=threads)
    store = PartitionedShieldStore(
        shield_opt(num_buckets=1024, num_mac_hashes=512), machine=machine
    )
    if theta is None:
        spec = WorkloadSpec("SKEW_U", "uniform reads", 1.0, distribution="uniform")
    else:
        spec = WorkloadSpec(
            "SKEW_Z", "zipf reads", 1.0, distribution="zipfian", theta=theta
        )
    stream = OperationStream(spec, SMALL, _PAIRS, seed=7)
    for op in stream.load_operations():
        store.set(op.key, op.value)
    machine.reset_measurement()
    for op in stream.operations(_OPS):
        store.get(op.key)
    return _OPS / machine.elapsed_us() * 1000.0


def run_ablation():
    rows = []
    for label, theta in (
        ("uniform", None),
        ("zipf 0.50", 0.5),
        ("zipf 0.90", 0.9),
        ("zipf 0.99", 0.99),
    ):
        one = _throughput(theta, 1)
        four = _throughput(theta, 4)
        rows.append([label, one, four, four / one, 100 * four / one / 4])
    return TableResult(
        "Ablation partition-skew",
        "4-thread efficiency of hash partitioning vs key skew",
        ["distribution", "1T Kop/s", "4T Kop/s", "speedup", "efficiency %"],
        rows,
        ["lock-free partitioning trades worst-case balance for zero "
         "synchronization; heavier skew costs parallel efficiency"],
    )


def test_partition_skew_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    by_dist = {row[0]: row for row in result.rows}
    # Uniform routing parallelizes nearly perfectly.
    assert by_dist["uniform"][3] > 3.3
    # Stronger skew erodes the speedup but never erases it.
    assert by_dist["zipf 0.99"][3] < by_dist["uniform"][3]
    assert by_dist["zipf 0.99"][3] > 1.5
