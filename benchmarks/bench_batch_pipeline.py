"""Wall-clock benchmark for the batched write pipeline + parallel router.

Unlike the ``bench_fig*`` suites (which report *simulated* cycles), this
script measures real interpreter wall-clock for the three ways of
driving a 4-partition store through a YCSB-B style mix (95% read / 5%
update, zipfian 0.99 — the paper's RD95_Z):

* ``sequential``        — one ``get``/``set`` call per operation;
* ``batched``           — operations grouped into ``multi_get`` /
  ``multi_set`` batches so every touched MAC set is verified once and
  its hash recomputed once per batch;
* ``batched+parallel``  — the same batches fanned out to the partition
  router's worker threads;
* ``batched+maccache``  — the same batches with the enclave-resident
  verified-MAC cache sized to hold the working set, so point reads
  verify in O(1) against the in-enclave copy instead of regathering
  and rehashing the covering set (``speedup_maccache`` compares this
  against ``batched``, the cache-off baseline).

Each mode also reports the wall-clock stage split (chain walk /
per-entry MAC crypto / set gather+verify) so the JSON shows *where*
the MAC cache removes time, plus its hit/miss/eviction counters.

The workload is seeded, so the operation sequence and all amortization
counters in the emitted JSON are deterministic; only the ``wall_s`` /
``kops`` timing fields vary run to run.  Results land in
``BENCH_batch_pipeline.json`` (override with ``--out``).

Run ``python benchmarks/bench_batch_pipeline.py`` for the full
measurement or ``--quick`` for the CI-sized variant.
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import PartitionedShieldStore, shield_opt
from repro.sim import Machine
from repro.workloads import SMALL, OperationStream, workload

_THREADS = 4


def _build_store(
    parallel: bool, pairs: int, mac_cache_bytes: int = 0
) -> PartitionedShieldStore:
    # A small mac-hash count keeps in-enclave state tiny but makes each
    # MAC set span many buckets (the Fig. 15 trade-off), so a single op
    # pays a wide set verification — the regime where once-per-batch
    # verification, deferred set updates and the verified-MAC cache
    # pay off.
    machine = Machine(num_threads=_THREADS)
    return PartitionedShieldStore(
        shield_opt(
            num_buckets=max(_THREADS * 64, pairs // 2),
            num_mac_hashes=_THREADS * 4,
            mac_cache_bytes=mac_cache_bytes,
        ),
        machine=machine,
        parallel=parallel,
    )


def _load(store: PartitionedShieldStore, stream: OperationStream) -> None:
    items = [(op.key, op.value) for op in stream.load_operations()]
    store.multi_set(items)


def _ops_list(pairs: int, ops: int, seed: int):
    stream = OperationStream(workload("RD95_Z"), SMALL, pairs, seed=seed)
    return stream, list(stream.operations(ops))


def _run_sequential(store, ops) -> float:
    start = time.perf_counter()
    for op in ops:
        if op.op == "get":
            store.get(op.key)
        else:
            store.set(op.key, op.value)
    return time.perf_counter() - start


def _run_batched(store, ops, batch_size: int) -> float:
    start = time.perf_counter()
    for base in range(0, len(ops), batch_size):
        batch = ops[base : base + batch_size]
        writes = [(op.key, op.value) for op in batch if op.op != "get"]
        reads = [op.key for op in batch if op.op == "get"]
        if writes:
            store.multi_set(writes)
        if reads:
            store.multi_get(reads)
    return time.perf_counter() - start


def _mac_cache_budget(pairs: int) -> int:
    # Size the cache to hold the whole working set's MAC lists: one MAC
    # (16 B) per resident pair plus per-bucket/per-set bookkeeping,
    # rounded up generously — the point of the on/off comparison is the
    # all-hits regime (paper Fig. 15's "enough EPC" end).
    return max(256 * 1024, pairs * 64)


def _measure(mode: str, pairs: int, ops: int, batch_size: int, seed: int) -> dict:
    parallel = mode == "batched+parallel"
    mac_cache_bytes = _mac_cache_budget(pairs) if "maccache" in mode else 0
    store = _build_store(parallel, pairs, mac_cache_bytes)
    stream, op_list = _ops_list(pairs, ops, seed)
    _load(store, stream)
    if mode == "sequential":
        wall = _run_sequential(store, op_list)
    else:
        wall = _run_batched(store, op_list, batch_size)
    stats = store.stats()
    reads = sum(1 for op in op_list if op.op == "get")
    result = {
        "mode": mode,
        "wall_s": round(wall, 4),
        "kops": round(len(op_list) / wall / 1000.0, 1),
        "reads": reads,
        "batches": stats.batches,
        "batch_ops": stats.batch_ops,
        "set_verifications_saved": stats.batch_verifications_saved,
        "set_updates_saved": stats.batch_set_updates_saved,
        "mac_cache_bytes": mac_cache_bytes,
        "mac_cache_hits": stats.mac_cache_hits,
        "mac_cache_misses": stats.mac_cache_misses,
        "mac_cache_evictions": stats.mac_cache_evictions,
        "stages_s": {
            "walk": round(stats.stage_walk_s, 4),
            "crypto": round(stats.stage_crypto_s, 4),
            "verify": round(stats.stage_verify_s, 4),
        },
    }
    store.close()
    return result


_MODES = ("sequential", "batched", "batched+parallel", "batched+maccache")


def run(pairs: int, ops: int, batch_size: int, seed: int) -> dict:
    modes = {}
    for mode in _MODES:
        modes[mode] = _measure(mode, pairs, ops, batch_size, seed)
        stages = modes[mode]["stages_s"]
        print(
            f"{mode:17s} {modes[mode]['wall_s']:8.3f} s  "
            f"{modes[mode]['kops']:8.1f} Kop/s  "
            f"(walk {stages['walk']:.2f} / crypto {stages['crypto']:.2f} "
            f"/ verify {stages['verify']:.2f} s, "
            f"mac-cache hits {modes[mode]['mac_cache_hits']})"
        )
    base = modes["sequential"]["wall_s"]
    return {
        "benchmark": "batch_pipeline",
        "workload": "RD95_Z (YCSB-B: 95% read / 5% update, zipfian 0.99)",
        "config": {
            "pairs": pairs,
            "ops": ops,
            "batch_size": batch_size,
            "partitions": _THREADS,
            "seed": seed,
        },
        "modes": modes,
        "speedup_batched": round(base / modes["batched"]["wall_s"], 2),
        "speedup_batched_parallel": round(
            base / modes["batched+parallel"]["wall_s"], 2
        ),
        # Cache-on vs cache-off at identical batching: the §4.3
        # verification cost the enclave-resident MAC cache removes.
        "speedup_maccache": round(
            modes["batched"]["wall_s"] / modes["batched+maccache"]["wall_s"], 2
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=20000)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer pairs and ops)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.quick:
        args.pairs, args.ops = 1000, 4000

    report = run(args.pairs, args.ops, args.batch_size, args.seed)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_batch_pipeline.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nspeedup batched           : {report['speedup_batched']:.2f}x")
    print(f"speedup batched+parallel  : {report['speedup_batched_parallel']:.2f}x")
    print(f"speedup mac cache on/off  : {report['speedup_maccache']:.2f}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
