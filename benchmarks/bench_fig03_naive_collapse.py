"""Figure 3 — the naive in-enclave store collapses beyond the EPC."""

from conftest import record_table

from repro.experiments import fig03


def test_fig03_naive_collapse(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig03.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    # Below the EPC the secure store is within a small factor of insecure.
    assert rows[16][3] < 8
    # At 4 GB the paper reports a 134x collapse; require the same decade.
    assert 60 < rows[4096][3] < 250
    # Insecure throughput is flat across the sweep.
    insecure = [row[1] for row in result.rows]
    assert max(insecure) / min(insecure) < 2.5
    # Baseline throughput decreases monotonically-ish with the data size.
    baseline = [row[2] for row in result.rows]
    assert baseline[0] > baseline[-1] * 5
