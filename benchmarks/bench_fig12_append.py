"""Figure 12 — append-operation mixes."""

from conftest import record_table

from repro.experiments import fig12


def test_fig12_append(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig12.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    ratio_col = list(result.headers).index("opt/baseline")
    # Paper: 1.7-16x improvements across the append mixes.
    for name, row in rows.items():
        assert row[ratio_col] > 1.3, (name, row[ratio_col])
    # Zipfian appends benefit least (hot values balloon, crypto dominates).
    assert rows["AP5_Z99"][ratio_col] <= rows["AP5_U"][ratio_col] * 1.3
