"""Ablation — three persistence designs on one write-heavy workload.

ShieldStore's snapshots (§4.4), the §7 op-log alternative, and the
SPEICHER-style LSM (§8) trade durability window against steady-state
throughput.  The first two run on the *same* hash store, so their rows
are directly comparable overhead; the LSM is a different base design and
is reported alongside for the §8 contrast.
"""

from conftest import record_table

from repro.core import (
    MODE_OPTIMIZED,
    ShieldStore,
    SnapshotPolicy,
    SnapshotScheduler,
    shield_opt,
)
from repro.experiments.common import TableResult
from repro.ext import OperationLog, RecoveringStore, RoteCounterService, ShieldLSM
from repro.sim import MonotonicCounterService

_OPS = 4000
_KEYS = 400


def _fresh_store():
    store = ShieldStore(shield_opt(num_buckets=512, num_mac_hashes=256))
    for i in range(_KEYS):
        store.set(f"key-{i:04d}".encode(), b"v" * 64)
    return store


def _traffic(target, machine, tick=None):
    machine.reset_measurement()
    for i in range(_OPS):
        key = f"key-{i % _KEYS:04d}".encode()
        if i % 2 == 0:
            target.set(key, b"v" * 64)
        else:
            target.get(key)
        if tick is not None:
            tick()
    return _OPS / machine.elapsed_us() * 1000.0


def run_ablation():
    rows = []

    base = _fresh_store()
    base_kops = _traffic(base, base.machine)
    rows.append(["hash store, no persistence", base_kops, "everything", "-"])

    snap_store = _fresh_store()
    scheduler = SnapshotScheduler(
        snap_store, SnapshotPolicy(mode=MODE_OPTIMIZED, interval_us=1_500.0)
    )
    snap_kops = _traffic(
        snap_store, snap_store.machine, tick=lambda: scheduler.tick(is_write=True)
    )
    rows.append(["+ snapshots (opt, §4.4)", snap_kops, "snapshot interval",
                 f"{scheduler.snapshots_taken} snapshots"])

    # Op-log on SGX hardware counters: the §7 complaint, quantified —
    # even batched 256:1, each ~60 ms NVRAM bump crushes throughput.
    log_store = _fresh_store()
    log = OperationLog(log_store, MonotonicCounterService(), counter_batch=256)
    wrapped = RecoveringStore(log_store, log)
    log_kops = _traffic(wrapped, log_store.machine)
    rows.append(["+ op-log, SGX counters (§7)", log_kops, "tail batch",
                 f"{log.counter_bumps} NVRAM bumps"])

    # Op-log on ROTE-style quorum counters: the mitigation §7 cites.
    rote_store = _fresh_store()
    rote_log = OperationLog(rote_store, RoteCounterService(), counter_batch=256)
    rote_wrapped = RecoveringStore(rote_store, rote_log)
    rote_kops = _traffic(rote_wrapped, rote_store.machine)
    rows.append(["+ op-log, ROTE counters", rote_kops, "tail batch",
                 f"{rote_log.counter_bumps} quorum acks"])

    lsm = ShieldLSM(memtable_bytes=32 * 1024)
    for i in range(_KEYS):
        lsm.set(f"key-{i:04d}".encode(), b"v" * 64)
    lsm_kops = _traffic(lsm, lsm.machine)
    rows.append(["shield-lsm (§8, per-op WAL)", lsm_kops, "zero",
                 f"{lsm.flushes} flushes"])

    return TableResult(
        "Ablation persistence-designs",
        "Throughput vs durability window (50% writes, 64B values)",
        ["design", "Kop/s", "loss window", "events"],
        rows,
        ["snapshots barely dent the hash store; the op-log pays per-write "
         "crypto+storage; the LSM is a different base trading its whole "
         "design for a zero-loss window"],
    )


def test_persistence_design_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    kops = {row[0]: row[1] for row in result.rows}
    base = kops["hash store, no persistence"]
    snapshots = kops["+ snapshots (opt, §4.4)"]
    sgx_log = kops["+ op-log, SGX counters (§7)"]
    rote_log = kops["+ op-log, ROTE counters"]
    # Optimized snapshots cost only a few percent (Fig. 19's claim).
    assert snapshots > base * 0.78
    # SGX hardware counters make logged persistence impractical — the
    # exact §7 argument for why the paper chose snapshots.
    assert sgx_log < base * 0.15
    # ROTE-style counters recover most of the gap (refs [8, 31]).
    assert rote_log > sgx_log * 5
    assert rote_log > base * 0.4
