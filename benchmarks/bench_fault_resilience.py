"""Transport resilience under scripted faults (shieldfault chaos bench).

Drives a seeded read-mostly workload through the real TCP deployment
(:class:`~repro.net.tcp.TCPShieldClient` -> ``TCPShieldServer`` -> the
multiprocess partition engine) under four scenarios:

* **baseline** — no faults: the cost floor of the resilient transport
  (deadlines + idempotency tokens active, nothing firing);
* **drop5**    — ~5% of wire frames dropped each way;
* **tamper1**  — ~1% of sealed records corrupted before authentication
  (every tamper costs a session drop + re-attested reconnect);
* **kill**     — one partition worker SIGKILLed mid-run, recovered from
  the pool checkpoint while the client retries through it.

Every scenario asserts *zero client-visible errors* and a final store
state that exactly matches the client's model (retried writes applied
exactly once — the idempotency-token dedup at work), then reports wall
time, throughput, and the retry/reconnect/tamper/recovery counters.

Results land in ``BENCH_fault_resilience.json`` (override with
``--out``).  Run ``python benchmarks/bench_fault_resilience.py`` for
the full run or ``--quick`` for the CI-sized variant.
"""

import argparse
import json
import os
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    MODE_PROCESSES,
    PartitionSnapshotter,
    PartitionedShieldStore,
    process_mode_supported,
    shield_opt,
)
from repro.net import TCPShieldClient, TCPShieldServer
from repro.sim import (
    AttestationService,
    FaultPlan,
    FaultRule,
    MonotonicCounterService,
    faults,
)

SECRET = bytes(range(32))

SCENARIOS = {
    "baseline": [],
    "drop5": [
        FaultRule(point="tcp.client.recv", kind="drop", probability=0.05),
        FaultRule(point="tcp.server.recv", kind="drop", probability=0.05),
    ],
    "tamper1": [
        # Deterministic ~1% schedule so every run actually measures the
        # tamper -> session-drop -> re-attest path.
        FaultRule(point="channel.server.open", kind="tamper", every=100),
    ],
    "kill": [
        # The checkpoint is taken before the plan installs, so hit 0 is
        # the first data-plane pipe send of the measured run.
        FaultRule(point="procpool.pipe.send", kind="crash", hits=[0]),
    ],
}


def _scenario_point(name, rules, partitions, pairs, ops, seed) -> dict:
    store = PartitionedShieldStore(
        shield_opt(num_buckets=max(64 * partitions, pairs // 2),
                   num_mac_hashes=16 * partitions),
        master_secret=SECRET,
        num_partitions=partitions,
        mode=MODE_PROCESSES,
    )
    service = AttestationService(b"bench-attestation")
    server = TCPShieldServer(store, service, request_deadline_s=10.0)
    server.start()
    client = TCPShieldClient(
        server.address,
        service,
        store.enclave.measurement,
        bytes(range(32, 64)),
        request_deadline_s=2.0,
        max_retries=12,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
    )
    try:
        keys = [f"key-{i:06d}".encode() for i in range(pairs)]
        model = {}
        for key in keys:
            client.set(key, b"value-" + key)
            model[key] = b"value-" + key
        # Checkpoint before the storm: the kill scenario recovers from
        # here with nothing to lose.
        counters = MonotonicCounterService()
        PartitionSnapshotter.for_store(store, counters).snapshot_bytes(store)
        plan = faults.install(FaultPlan(list(rules), seed=seed))

        rng = random.Random(seed)
        counts = {}
        start = time.perf_counter()
        for i in range(ops):
            key = keys[rng.randrange(pairs)]
            r = rng.random()
            if r < 0.80:
                assert client.get(key) == model[key]
            elif r < 0.95:
                value = b"v%d-" % i + key
                client.set(key, value)
                model[key] = value
            else:
                ctr = b"ctr-%d" % (i % 4)
                client.increment(ctr)
                counts[ctr] = counts.get(ctr, 0) + 1
        wall = time.perf_counter() - start

        live = client.server_stats()
        faults.uninstall()
        # Exactly-once check: the store must match the client's model.
        for key, value in model.items():
            assert client.get(key) == value
        for ctr, count in counts.items():
            assert client.get(ctr) == str(count).encode()
        return {
            "scenario": name,
            "partitions": partitions,
            "pairs": pairs,
            "ops": ops,
            "wall_ms": round(wall * 1000.0, 2),
            "kops_per_s": round(ops / wall / 1000.0, 2),
            "client_retries": client.stats.net_retries,
            "client_reconnects": client.stats.net_reconnects,
            "client_timeouts": client.stats.net_timeouts,
            "tamper_drops": live["tamper_drops"],
            "deadline_drops": live["deadline_drops"],
            "degraded_replies": live["degraded_replies"],
            "idempotent_replays": live["idempotent_replays"],
            "worker_recoveries": live["worker_recoveries"],
            "faults_fired": plan.snapshot()["total_fires"],
            "client_visible_errors": 0,  # any error would have raised
        }
    finally:
        faults.uninstall()
        client.close()
        server.close()
        store.close()


def run(partitions, pairs, ops, seed) -> dict:
    points = []
    notes = []
    if not process_mode_supported():
        notes.append(
            "process mode unsupported on this platform; "
            "fault-resilience scenarios not measured"
        )
        return {
            "benchmark": "fault_resilience",
            "config": {"partitions": partitions, "pairs": pairs, "ops": ops,
                       "seed": seed},
            "scenarios": points,
            "notes": notes,
        }
    for name, rules in SCENARIOS.items():
        point = _scenario_point(name, rules, partitions, pairs, ops, seed)
        points.append(point)
        print(
            f"{name:10s} {point['ops']:5d} ops  "
            f"{point['wall_ms']:8.1f} ms  "
            f"{point['kops_per_s']:6.2f} Kop/s  "
            f"retries {point['client_retries']:3d}  "
            f"tampers {point['tamper_drops']:2d}  "
            f"recoveries {point['worker_recoveries']}"
        )
    baseline = points[0]["kops_per_s"] or 1.0
    for point in points[1:]:
        point["throughput_vs_baseline"] = round(
            point["kops_per_s"] / baseline, 3
        )
    return {
        "benchmark": "fault_resilience",
        "config": {"partitions": partitions, "pairs": pairs, "ops": ops,
                   "seed": seed},
        "cpus": os.cpu_count() or 1,
        "scenarios": points,
        "notes": notes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--pairs", type=int, default=64)
    parser.add_argument("--ops", type=int, default=800)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer ops, 2 partitions)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.quick:
        args.ops = 200
        args.partitions = 2

    report = run(args.partitions, args.pairs, args.ops, args.seed)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_fault_resilience.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    for note in report["notes"]:
        print(f"note: {note}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
