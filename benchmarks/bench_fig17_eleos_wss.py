"""Figure 17 — vs Eleos across working-set sizes (4 KB values)."""

from conftest import record_table

from repro.experiments import fig17


def test_fig17_eleos_working_sets(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig17.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    # Eleos cannot run past its 2 GB memsys5 pool (paper §6.3).
    assert rows[4096][1] is None and rows[8192][1] is None
    assert rows[2048][1] is not None
    # Eleos degrades as the set grows; ShieldOpt stays flat.
    assert rows[2048][1] < rows[64][1]
    shield = [rows[w][2] for w in (64, 512, 2048, 8192)]
    assert max(shield) / min(shield) < 1.5
    # Eleos wins at small working sets (its cache covers them)...
    assert rows[64][1] > rows[64][2]
    # ...and the in-enclave cache closes that gap (paper §6.3).
    assert rows[64][3] > rows[64][2]
