"""Figure 16 — vs Eleos across value sizes (500 MB working set)."""

from conftest import record_table

from repro.experiments import fig16


def test_fig16_eleos_value_sizes(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig16.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    # ShieldStore wins at small values (paper: 40x at 16B, 7x at 512B;
    # our Eleos model is less catastrophic — see EXPERIMENTS.md).
    assert rows[16][3] > 1.0
    # Eleos is competitive at page-sized values (paper: ties at 1-4KB).
    assert 0.5 < rows[4096][3] < 1.6
    # ShieldStore's advantage shrinks monotonically with value size.
    advantages = [rows[v][3] for v in (16, 512, 1024, 4096)]
    assert advantages[0] >= advantages[-1]
