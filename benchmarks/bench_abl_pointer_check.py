"""Ablation — §7 untrusted-pointer range checking overhead.

The paper argues the enclave-range check on untrusted pointers "would
add minimum overhead"; quantify it.
"""

from conftest import record_table

from repro.core import ShieldStore, shield_opt
from repro.experiments.common import TableResult


def run_ablation():
    rows = []
    for check in (False, True):
        store = ShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=32, pointer_check=check)
        )
        for i in range(600):
            store.set(f"key-{i:04d}".encode(), b"v" * 32)
        machine = store.machine
        machine.reset_measurement()
        for i in range(600):
            store.get(f"key-{i:04d}".encode())
        rows.append(["on" if check else "off", machine.elapsed_us() / 600])
    return TableResult(
        "Ablation pointer-check",
        "Cost of enclave-range checking on untrusted pointers",
        ["check", "get us/op"],
        rows,
        ["paper §7: the check is one comparison; overhead should be ~0"],
    )


def test_pointer_check_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    off, on = result.rows[0][1], result.rows[1][1]
    assert abs(on - off) / off < 0.02  # well under 2%
