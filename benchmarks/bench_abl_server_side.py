"""Ablation — server-side (§3.2, chosen) vs client-side encryption.

The paper argues for server-side encryption because value-transforming
operations (append/increment) otherwise need full network round trips.
Quantify the gap on an increment-heavy workload.
"""

from conftest import record_table

from repro.core import ShieldStore, shield_opt
from repro.experiments.common import TableResult
from repro.ext import ClientKeyDirectory, ClientSideClient, PassiveStore

_OPS = 1500


def run_ablation():
    rows = []

    # Server-side: one request per increment (we omit the shared network
    # front-end cost, identical for both models; see bench note).
    store = ShieldStore(shield_opt(num_buckets=256, num_mac_hashes=128))
    store.set(b"counter", b"0")
    store.machine.reset_measurement()
    for _ in range(_OPS):
        store.increment(b"counter")
    rows.append(["server-side (ShieldStore)", _OPS / store.machine.elapsed_us() * 1000])

    # Client-side: fetch + decrypt + modify + re-encrypt + store.
    passive = PassiveStore()
    client = ClientSideClient(
        passive, ClientKeyDirectory(b"shared-master-secret-32-bytes!!!")
    )
    client.set(b"counter", b"0")
    passive.machine.reset_measurement()
    for _ in range(_OPS):
        client.increment(b"counter")
    rows.append(["client-side (passive)", _OPS / passive.machine.elapsed_us() * 1000])

    return TableResult(
        "Ablation server-side",
        "Increment throughput: server-side vs client-side encryption",
        ["model", "Kop/s"],
        rows,
        ["client-side pays two WAN round trips per read-modify-write; "
         "server-side transforms the value inside the enclave"],
    )


def test_server_side_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    server, client = result.rows[0][1], result.rows[1][1]
    assert server > client * 3  # the §3.2 argument, quantified
