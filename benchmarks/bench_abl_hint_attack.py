"""Ablation — two-step search under key-hint corruption (§5.4).

The key hint is plaintext, so an attacker can corrupt hints to make the
one-step search miss.  The two-step remedy falls back to decrypting the
whole chain.  This bench measures (a) the steady-state cost of having
two-step enabled, and (b) what hint corruption does to miss-path costs.
"""

from conftest import record_table

from repro.core import ShieldStore, shield_opt
from repro.experiments.common import TableResult


def build(two_step: bool):
    store = ShieldStore(
        shield_opt(num_buckets=32, num_mac_hashes=16, two_step_search=two_step)
    )
    for i in range(600):
        store.set(f"key-{i:04d}".encode(), b"v" * 32)
    return store


def run_ablation():
    rows = []
    for two_step in (False, True):
        store = build(two_step)
        machine = store.machine
        # Hit path: gets of existing keys.
        machine.reset_measurement()
        for i in range(500):
            store.get(f"key-{i:04d}".encode())
        hit_us = machine.elapsed_us() / 500
        # Miss path: gets of absent keys (where step two triggers).
        machine.reset_measurement()
        misses = 0
        for i in range(200):
            try:
                store.get(f"absent-{i:04d}".encode())
            except Exception:
                misses += 1
        miss_us = machine.elapsed_us() / 200
        decrypts = store.stats.search_decryptions
        rows.append(
            ["two-step" if two_step else "one-step", hit_us, miss_us, decrypts]
        )
    return TableResult(
        "Ablation hint-attack",
        "Two-step search: hit/miss cost and decryption work",
        ["search", "hit us/op", "miss us/op", "total decryptions"],
        rows,
        ["hits are unaffected; only misses (and inserts) pay for step two"],
    )


def test_hint_attack_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    one_step = result.rows[0]
    two_step = result.rows[1]
    # Hit path costs are within noise of each other.
    assert abs(two_step[1] - one_step[1]) / one_step[1] < 0.1
    # Misses are costlier with two-step (full chain decryption).
    assert two_step[2] > one_step[2]
