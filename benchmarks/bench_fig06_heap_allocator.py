"""Figure 6 — OCALL counts and throughput vs allocation granularity."""

from conftest import record_table

from repro.experiments import fig06


def test_fig06_heap_allocator(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig06.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    total_ocalls = result.column("OCALLs (total)")
    # Bigger chunks -> drastically fewer allocator exits (paper Fig. 6).
    assert total_ocalls[0] > total_ocalls[-1] * 4
    assert all(a >= b for a, b in zip(total_ocalls, total_ocalls[1:]))
    # Throughput must not degrade as chunks grow.
    kops = result.column("Kop/s")
    assert kops[-1] >= kops[0] * 0.97
