"""Figure 13 — 1-to-4-thread scalability of the three systems."""

from conftest import record_table

from repro.experiments import fig13


def test_fig13_scalability(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig13.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    # ShieldOpt scales near-linearly (paper: ~3.8x at 4 threads).
    assert rows["shieldopt"][5] > 2.8
    # The baseline gains little beyond 2 threads (paging serialization).
    assert rows["baseline"][5] < 2.0
    # Graphene-memcached degrades or stalls at 4 threads vs 2.
    graphene = rows["memcached+graphene"]
    assert graphene[4] < graphene[2] * 1.35
    # ShieldOpt throughput strictly dominates the others at 4 threads.
    assert rows["shieldopt"][4] > 5 * rows["baseline"][4]
