"""Figure 9 — decryptions to find the match, w/ and w/o key hints."""

from conftest import record_table

from repro.experiments import fig09


def test_fig09_key_hint(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig09.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    one_m = {row[0]: row for row in result.rows}["1M"]
    eight_m = {row[0]: row for row in result.rows}["8M"]
    # Long chains (1M buckets): hints cut decryptions by several x.
    assert one_m[3] > 3.0
    # Short chains (8M buckets): reduction exists but is much smaller.
    assert 1.05 < eight_m[3] < one_m[3]
    # With hints, ~1 decryption per op regardless of chain length.
    assert one_m[5] < 1.6
