"""Figure 10 — overall normalized throughput, the headline result."""

from conftest import record_table

from repro.experiments import fig10
from repro.experiments.common import (
    SYSTEM_BASELINE,
    SYSTEM_GRAPHENE,
    SYSTEM_SHIELDBASE,
    SYSTEM_SHIELDOPT,
)


def test_fig10_overall(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: fig10.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    headers = list(result.headers)
    col = {name: headers.index(f"{name} (norm)") for name in (
        SYSTEM_GRAPHENE, SYSTEM_BASELINE, SYSTEM_SHIELDBASE, SYSTEM_SHIELDOPT
    )}
    for row in result.rows:
        threads = row[0]
        opt = row[col[SYSTEM_SHIELDOPT]]
        base_ratio = row[col[SYSTEM_SHIELDBASE]]
        graphene = row[col[SYSTEM_GRAPHENE]]
        # Paper bands (we accept a generous envelope around them).
        if threads == 1:
            assert 6 <= opt <= 18, (row, "paper: 8-11x at 1 thread")
        else:
            assert 18 <= opt <= 45, (row, "paper: 24-30x at 4 threads")
        # ShieldOpt >= ShieldBase >= several x Baseline.
        assert opt >= base_ratio * 0.95
        assert base_ratio > 4
        # Graphene-memcached lives near the Baseline (-12%..+34% in paper).
        assert 0.5 < graphene < 2.0
