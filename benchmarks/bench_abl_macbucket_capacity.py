"""Ablation — MAC bucket node capacity vs chain length.

The paper fixes 30 MACs per node.  Sweep the capacity under a long-chain
configuration: tiny nodes chain (pointer chasing returns), oversized
nodes waste allocator bytes.
"""

from conftest import record_table

from repro.core import ShieldStore, shield_opt
from repro.experiments.common import TableResult


def run_ablation():
    rows = []
    for capacity in (2, 8, 30, 64):
        store = ShieldStore(
            shield_opt(
                num_buckets=8, num_mac_hashes=8, mac_bucket_capacity=capacity
            )
        )
        for i in range(320):  # chains of ~40, the paper's worst case
            store.set(f"key-{i:04d}".encode(), b"v" * 16)
        machine = store.machine
        machine.reset_measurement()
        for i in range(400):
            store.get(f"key-{i % 320:04d}".encode())
        rows.append(
            [capacity, machine.elapsed_us() / 400, store.allocator.bytes_live]
        )
    return TableResult(
        "Ablation MAC-bucket capacity",
        "Get cost and allocator footprint vs MAC bucket node capacity",
        ["capacity", "get us/op", "untrusted bytes live"],
        rows,
        ["paper picks 30; chains of 40 need two nodes at that setting"],
    )


def test_macbucket_capacity_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record_table(result)
    by_capacity = {row[0]: row for row in result.rows}
    # Degenerate 2-slot nodes chain heavily and cost more per get.
    assert by_capacity[2][1] > by_capacity[30][1]
    # Bigger nodes consume more allocator bytes than right-sized ones.
    assert by_capacity[64][2] >= by_capacity[8][2]
