"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure through its
``repro.experiments`` module, asserts the paper's shape properties, and
records the formatted table under ``benchmarks/results/`` (also echoed
to stdout, visible with ``pytest -s``).

Size knobs (environment):

* ``REPRO_BENCH_SCALE`` — working-set scale vs the paper (default 0.005,
  i.e. 10M pairs -> 50k).  Larger is more faithful and slower.
* ``REPRO_BENCH_OPS``   — measured requests per cell (default 1500).
"""

import os
import pathlib

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.005"))
BENCH_OPS = int(os.environ.get("REPRO_BENCH_OPS", "1500"))

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


# Sweep figures get an ASCII chart appended to their result file:
# experiment -> (x header, series headers, log_y)
_CHARTS = {
    "Figure 2": ("WSS (MB)", ["NoSGX read", "SGX_Enclave read"], True),
    "Figure 3": ("WSS (MB)", ["NoSGX (Kop/s)", "Baseline (Kop/s)"], True),
    "Figure 17": (
        "WSS (MB)",
        ["Eleos Kop/s", "ShieldOpt Kop/s", "ShieldOpt+cache Kop/s"],
        False,
    ),
}


def record_table(result) -> str:
    """Persist a TableResult (plus a chart for sweeps); returns the text."""
    _RESULTS_DIR.mkdir(exist_ok=True)
    text = result.format()
    if result.experiment in _CHARTS:
        from repro.experiments import charts

        x_header, series, log_y = _CHARTS[result.experiment]
        try:
            text += "\n\n" + charts.render_sweep(result, x_header, series, log_y=log_y)
        except Exception:
            pass  # charts are cosmetic; never fail a bench over them
    name = result.experiment.lower().replace(" ", "").replace(".", "")
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


@pytest.fixture
def bench_scale():
    return BENCH_SCALE


@pytest.fixture
def bench_ops():
    return BENCH_OPS
