"""Snapshot cost and worker crash-recovery latency (paper §4.4).

Measures three things about the durable multi-partition checkpoints
produced by :class:`~repro.core.persistence.PartitionSnapshotter`:

* **snapshot cost** — wall time and blob size for a full checkpoint at
  several store sizes.  Entries are dumped already-encrypted (§4.4:
  no re-encryption at snapshot time), so the cost should scale with
  entry count, not value plaintext handling;
* **restore cost** — wall time to rebuild a store from the blob,
  including the MAC-bucket rebuild and full integrity audit;
* **recovery latency** — with the multiprocess engine, SIGKILL one
  partition worker and time the respawn-plus-restore path end to end
  (first failed request through the pool reporting ``recovered``);
* **recovery-point objective** — acknowledged mutations lost to a
  SIGKILL after the last checkpoint, with and without the sealed
  write-ahead log (``wal``), plus the write-throughput cost of the
  log's group commit;
* **replay throughput** — operations per second replayed from a
  sealed log chain during recovery.

Store sizes are swept so the JSON shows how checkpoint and recovery
cost grow with resident entries.  All workloads are seeded and
deterministic; only wall-clock numbers vary run to run.

Results land in ``BENCH_snapshot_recovery.json`` (override with
``--out``).  Run ``python benchmarks/bench_snapshot_recovery.py`` for
the full sweep or ``--quick`` for the CI-sized variant.
"""

import argparse
import json
import os
import pathlib
import signal
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    MODE_PROCESSES,
    MODE_SEQUENTIAL,
    PartitionSnapshotter,
    PartitionedShieldStore,
    process_mode_supported,
    shield_opt,
)
from repro.errors import WorkerError
from repro.sim import Machine, MonotonicCounterService

SECRET = bytes(range(32))


def _build(
    mode: str, partitions: int, pairs: int, wal_dir=None
) -> PartitionedShieldStore:
    config = shield_opt(
        num_buckets=max(64 * partitions, pairs // 2),
        num_mac_hashes=16 * partitions,
    )
    if mode == MODE_PROCESSES:
        return PartitionedShieldStore(
            config,
            master_secret=SECRET,
            num_partitions=partitions,
            mode=MODE_PROCESSES,
            wal_dir=wal_dir,
        )
    return PartitionedShieldStore(
        config,
        machine=Machine(num_threads=partitions),
        master_secret=SECRET,
        mode=MODE_SEQUENTIAL,
        wal_dir=wal_dir,
    )


def _populate(store, pairs: int, batch: int = 512):
    items = [
        (f"key-{i:08d}".encode(), f"value-{i:08d}".encode() * 4)
        for i in range(pairs)
    ]
    for base in range(0, pairs, batch):
        store.multi_set(items[base : base + batch])


def _snapshot_point(mode: str, partitions: int, pairs: int) -> dict:
    store = _build(mode, partitions, pairs)
    try:
        counters = MonotonicCounterService()
        snapshotter = PartitionSnapshotter.for_store(store, counters)
        _populate(store, pairs)

        start = time.perf_counter()
        blob = snapshotter.snapshot_bytes(store)
        snap_wall = time.perf_counter() - start

        target = _build(mode, partitions, pairs)
        try:
            start = time.perf_counter()
            PartitionSnapshotter.for_store(target, counters).restore(
                blob, target
            )
            restore_wall = time.perf_counter() - start
            assert target.audit() == pairs
        finally:
            target.close()
        return {
            "mode": mode,
            "pairs": pairs,
            "blob_bytes": len(blob),
            "snapshot_ms": round(snap_wall * 1000.0, 2),
            "restore_ms": round(restore_wall * 1000.0, 2),
            "snapshot_kpairs_per_s": round(pairs / snap_wall / 1000.0, 1),
            "restore_kpairs_per_s": round(pairs / restore_wall / 1000.0, 1),
        }
    finally:
        store.close()


def _recovery_point(partitions: int, pairs: int) -> dict:
    """SIGKILL one worker and time respawn + restore from checkpoint."""
    store = _build(MODE_PROCESSES, partitions, pairs)
    try:
        counters = MonotonicCounterService()
        snapshotter = PartitionSnapshotter.for_store(store, counters)
        _populate(store, pairs)
        snapshotter.snapshot_bytes(store)

        keys = [f"key-{i:08d}".encode() for i in range(pairs)]
        victim = store.partition_index_of(keys[0])
        os.kill(store._pool.workers[victim].process.pid, signal.SIGKILL)

        start = time.perf_counter()
        try:
            store.multi_get(keys[:64])
        except WorkerError:
            pass  # the interrupted call fails; the pool recovers in place
        recovery_wall = time.perf_counter() - start
        assert store.partition_state == "recovered"
        assert store.audit() == pairs
        stats = store.stats()
        return {
            "partitions": partitions,
            "pairs": pairs,
            "recovery_ms": round(recovery_wall * 1000.0, 2),
            "worker_recoveries": stats.worker_recoveries,
            "worker_ops_lost": stats.worker_ops_lost,
        }
    finally:
        store.close()


def _rpo_point(partitions: int, pairs: int, tail: int, wal: bool) -> dict:
    """Acknowledged-mutation loss after SIGKILL, with/without the WAL.

    Checkpoint, acknowledge ``tail`` more writes, SIGKILL every worker,
    then count how many acknowledged tail writes the recovered pool
    still serves.  Also times the batched populate so the group-commit
    overhead of the log is visible next to its durability win.
    """
    with tempfile.TemporaryDirectory() as tmp:
        store = _build(
            MODE_PROCESSES, partitions, pairs,
            wal_dir=os.path.join(tmp, "wal") if wal else None,
        )
        try:
            counters = MonotonicCounterService()
            snapshotter = PartitionSnapshotter.for_store(store, counters)
            start = time.perf_counter()
            _populate(store, pairs)
            populate_wall = time.perf_counter() - start
            snapshotter.snapshot_bytes(store)

            tail_items = {
                f"tail-{i:08d}".encode(): f"tv-{i:08d}".encode()
                for i in range(tail)
            }
            for key, value in tail_items.items():
                store.set(key, value)  # acknowledged, post-checkpoint

            for handle in store._pool.workers:
                os.kill(handle.process.pid, signal.SIGKILL)

            lost = 0
            for key, value in tail_items.items():
                got = None
                for _ in range(2):  # first probe may eat the WorkerError
                    try:
                        got = store.get(key)
                        break
                    except Exception:
                        continue
                if got != value:
                    lost += 1
            stats = store.stats()
            return {
                "partitions": partitions,
                "pairs": pairs,
                "wal": wal,
                "acked_tail_ops": tail,
                "acked_ops_lost": lost,
                "worker_ops_lost": stats.worker_ops_lost,
                "wal_replayed": stats.wal_replayed,
                "populate_kops_per_s": round(
                    pairs / populate_wall / 1000.0, 1
                ),
            }
        finally:
            store.close()


def _replay_point(pairs: int) -> dict:
    """Throughput of verified log replay into a fresh store."""
    from repro.core import ShieldStore, WriteAheadLog, apply_request

    config = shield_opt(num_buckets=max(64, pairs // 2), num_mac_hashes=16)
    with tempfile.TemporaryDirectory() as tmp:
        store = ShieldStore(config, master_secret=SECRET)
        store.wal = WriteAheadLog.recover(
            tmp, 0, SECRET, config.suite_name, 0, stats=store.stats
        )
        _populate(store, pairs)
        store.wal.close()

        replica = ShieldStore(config, master_secret=SECRET)
        start = time.perf_counter()
        wal = WriteAheadLog.recover(
            tmp, 0, SECRET, config.suite_name, 0,
            apply=lambda req: apply_request(replica, req),
            stats=replica.stats,
        )
        replay_wall = time.perf_counter() - start
        wal.close()
        assert len(replica) == pairs
        return {
            "pairs": pairs,
            "frames_replayed": wal.replayed,
            "replay_ms": round(replay_wall * 1000.0, 2),
            "replay_kops_per_s": round(pairs / replay_wall / 1000.0, 1),
        }


def run(pair_sizes, partitions: int) -> dict:
    cpus = os.cpu_count() or 1
    procs_ok = process_mode_supported()
    snapshots = []
    modes = [MODE_SEQUENTIAL] + ([MODE_PROCESSES] if procs_ok else [])
    for mode in modes:
        for pairs in pair_sizes:
            point = _snapshot_point(mode, partitions, pairs)
            snapshots.append(point)
            print(
                f"{mode:12s} {pairs:7d} pairs  "
                f"snapshot {point['snapshot_ms']:8.1f} ms  "
                f"restore {point['restore_ms']:8.1f} ms  "
                f"blob {point['blob_bytes'] / 1024.0:8.1f} KiB"
            )
    recoveries = []
    if procs_ok:
        for pairs in pair_sizes:
            point = _recovery_point(partitions, pairs)
            recoveries.append(point)
            print(
                f"{'recovery':12s} {pairs:7d} pairs  "
                f"SIGKILL->recovered {point['recovery_ms']:8.1f} ms"
            )
    rpo = []
    if procs_ok:
        tail = max(32, min(pair_sizes) // 8)
        for wal in (False, True):
            point = _rpo_point(partitions, min(pair_sizes), tail, wal)
            rpo.append(point)
            print(
                f"{'rpo':12s} wal={str(wal):5s}  "
                f"acked lost {point['acked_ops_lost']:4d}/{tail}  "
                f"populate {point['populate_kops_per_s']:8.1f} kops/s"
            )
    replays = []
    for pairs in pair_sizes:
        point = _replay_point(pairs)
        replays.append(point)
        print(
            f"{'replay':12s} {pairs:7d} pairs  "
            f"{point['replay_ms']:8.1f} ms  "
            f"{point['replay_kops_per_s']:8.1f} kops/s"
        )
    notes = []
    if not procs_ok:
        notes.append(
            "process mode unsupported on this platform; recovery latency "
            "and recovery-point objective not measured"
        )
    return {
        "benchmark": "snapshot_recovery",
        "config": {"pair_sizes": list(pair_sizes), "partitions": partitions},
        "cpus": cpus,
        "snapshots": snapshots,
        "recoveries": recoveries,
        "rpo": rpo,
        "replays": replays,
        "notes": notes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, nargs="+",
                        default=[1000, 4000, 16000])
    parser.add_argument("--partitions", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (small stores only)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.quick:
        args.pairs = [500, 2000]

    report = run(args.pairs, args.partitions)
    out = pathlib.Path(
        args.out
        or pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_snapshot_recovery.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    for note in report["notes"]:
        print(f"note: {note}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
