"""Cycle-attribution breakdown — the analysis behind every figure."""

from conftest import record_table

from repro.experiments import breakdown


def test_cycle_breakdown(benchmark, bench_scale, bench_ops):
    result = benchmark.pedantic(
        lambda: breakdown.run(scale=bench_scale, ops=bench_ops), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    # The Baseline's cycles are overwhelmingly demand paging.
    assert rows["baseline"][3] > 75
    # ShieldStore systems never fault (their data is untrusted memory).
    assert rows["shieldopt"][3] < 1
    # ...and spend real budget on crypto instead.
    assert rows["shieldopt"][5] > 8
