"""EPC paging: residency, faults, clock eviction, serialization."""

import pytest

from repro.sim.clock import PagingSerializer, ThreadClock
from repro.sim.cycles import PAGE_SIZE, CostModel, CycleCounters
from repro.sim.epc import EPCDevice


def make_epc(pages: int = 4):
    from dataclasses import replace

    cost = replace(CostModel(), epc_effective_bytes=pages * PAGE_SIZE)
    counters = CycleCounters()
    paging = PagingSerializer()
    return EPCDevice(cost, paging, counters), counters


class TestResidency:
    def test_first_touch_faults(self):
        epc, counters = make_epc()
        clock = ThreadClock(0)
        assert epc.touch(clock, 1, write=False) is True
        assert counters.epc_faults == 1
        assert epc.is_resident(1)

    def test_second_touch_hits(self):
        epc, counters = make_epc()
        clock = ThreadClock(0)
        epc.touch(clock, 1, write=False)
        cycles = clock.cycles
        assert epc.touch(clock, 1, write=False) is False
        assert clock.cycles == cycles
        assert counters.epc_faults == 1

    def test_write_fault_costs_more(self):
        epc, _ = make_epc()
        read_clock, write_clock = ThreadClock(0), ThreadClock(1)
        epc.touch(read_clock, 1, write=False)
        epc.touch(write_clock, 2, write=True)
        assert write_clock.cycles > read_clock.cycles

    def test_capacity_respected(self):
        epc, counters = make_epc(pages=4)
        clock = ThreadClock(0)
        for page in range(10):
            epc.touch(clock, page, write=False)
        assert epc.resident_pages <= 4
        assert counters.epc_evictions >= 6

    def test_flush(self):
        epc, _ = make_epc()
        clock = ThreadClock(0)
        epc.touch(clock, 1, write=False)
        epc.flush()
        assert not epc.is_resident(1)
        assert epc.resident_pages == 0


class TestClockEviction:
    def test_hot_page_survives_sweeps(self):
        """A page touched between every fault must stay resident."""
        epc, _ = make_epc(pages=4)
        clock = ThreadClock(0)
        hot = 999
        epc.touch(clock, hot, write=False)
        for page in range(100):
            epc.touch(clock, hot, write=False)  # refresh accessed bit
            epc.touch(clock, page, write=False)
        assert epc.is_resident(hot)

    def test_cold_pages_evicted(self):
        epc, _ = make_epc(pages=4)
        clock = ThreadClock(0)
        epc.touch(clock, 0, write=False)
        for page in range(1, 50):
            epc.touch(clock, page, write=False)
        assert not epc.is_resident(0)


class TestSerialization:
    def test_faults_serialize_across_threads(self):
        epc, _ = make_epc(pages=2)
        a, b = ThreadClock(0), ThreadClock(1)
        epc.touch(a, 1, write=False)
        epc.touch(b, 2, write=False)
        serialized = epc.cost.page_fault_read_cycles * epc.cost.fault_serial_fraction
        # The second thread is floored at the cumulative serialized work.
        assert b.cycles >= 2 * serialized

    def test_fault_cost_split_preserves_total(self):
        epc, _ = make_epc()
        clock = ThreadClock(0)
        epc.touch(clock, 1, write=False)
        assert clock.cycles == pytest.approx(epc.cost.page_fault_read_cycles)
