"""Sharded cluster: routing, rebalancing, isolation."""

import pytest

from repro.core import shield_opt
from repro.errors import KeyNotFoundError, StoreError
from repro.ext.cluster import ShieldCluster
from repro.sim import AttestationService


@pytest.fixture
def cluster():
    return ShieldCluster(
        shield_opt(num_buckets=64, num_mac_hashes=32),
        AttestationService(b"cluster-ias-secret"),
        num_nodes=3,
    )


def populate(cluster, count=150):
    for i in range(count):
        cluster.set(f"key-{i:04d}".encode(), f"value-{i}".encode())


class TestRouting:
    def test_basic_operations(self, cluster):
        populate(cluster)
        assert len(cluster) == 150
        assert cluster.get(b"key-0042") == b"value-42"
        cluster.delete(b"key-0042")
        assert not cluster.contains(b"key-0042")
        assert cluster.append(b"key-0001", b"!") == b"value-1!"
        assert cluster.increment(b"counter", 7) == 7

    def test_stable_ownership(self, cluster):
        for i in range(50):
            key = f"key-{i}".encode()
            assert cluster.owner_of(key) is cluster.owner_of(key)

    def test_keys_spread_over_shards(self, cluster):
        populate(cluster, 300)
        sizes = cluster.shard_sizes()
        assert len(sizes) == 3
        assert all(size > 30 for size in sizes.values())  # rough balance

    def test_missing_key(self, cluster):
        with pytest.raises(KeyNotFoundError):
            cluster.get(b"never-stored")


class TestMembership:
    def test_add_node_migrates_only_moved_ranges(self, cluster):
        populate(cluster, 200)
        before = {
            f"key-{i:04d}".encode(): cluster.get(f"key-{i:04d}".encode())
            for i in range(200)
        }
        moved = cluster.keys_migrated
        cluster.add_node("node-3")
        migrated = cluster.keys_migrated - moved
        # Consistent hashing: roughly 1/4 of keys move, never all.
        assert 0 < migrated < 150
        for key, value in before.items():
            assert cluster.get(key) == value
        assert len(cluster) == 200

    def test_remove_node_drains(self, cluster):
        populate(cluster, 200)
        victim = next(iter(cluster.nodes))
        cluster.remove_node(victim)
        assert victim not in cluster.nodes
        assert len(cluster) == 200
        for i in range(200):
            assert cluster.get(f"key-{i:04d}".encode()) == f"value-{i}".encode()

    def test_cannot_drain_last_node(self):
        single = ShieldCluster(
            shield_opt(num_buckets=16, num_mac_hashes=8),
            AttestationService(b"cluster-ias-secret"),
            num_nodes=1,
        )
        with pytest.raises(StoreError):
            single.remove_node("node-0")

    def test_duplicate_node_rejected(self, cluster):
        with pytest.raises(StoreError):
            cluster.add_node("node-0")


class TestIsolation:
    def test_shards_have_distinct_secrets(self, cluster):
        masters = {node.store.keyring.master for node in cluster.nodes.values()}
        assert len(masters) == len(cluster.nodes)

    def test_shard_ciphertexts_differ_for_same_pair(self, cluster):
        """The same (key, value) stored on two shards must produce
        different ciphertexts — no cross-shard key reuse."""
        nodes = list(cluster.nodes.values())
        nodes[0].store.set(b"same-key", b"same-value")
        nodes[1].store.set(b"same-key", b"same-value")

        def ciphertext_of(node):
            store = node.store
            bucket = store.keyring.keyed_bucket_hash(
                b"same-key", store.config.num_buckets
            )
            addr = int.from_bytes(
                store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
                "little",
            )
            return store.machine.memory.raw_read(addr + 33, 18)

        assert ciphertext_of(nodes[0]) != ciphertext_of(nodes[1])

    def test_per_shard_clocks(self, cluster):
        populate(cluster, 90)
        busy = [node.machine.elapsed_us() for node in cluster.nodes.values()]
        assert all(us > 0 for us in busy)
        assert cluster.total_elapsed_us() == max(busy)
