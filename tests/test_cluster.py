"""Sharded cluster: routing, rebalancing, isolation."""

import pytest

from repro.core import shield_opt
from repro.errors import KeyNotFoundError, StoreError
from repro.ext.cluster import ShieldCluster
from repro.sim import AttestationService


@pytest.fixture
def cluster():
    return ShieldCluster(
        shield_opt(num_buckets=64, num_mac_hashes=32),
        AttestationService(b"cluster-ias-secret"),
        num_nodes=3,
    )


def populate(cluster, count=150):
    for i in range(count):
        cluster.set(f"key-{i:04d}".encode(), f"value-{i}".encode())


class TestRouting:
    def test_basic_operations(self, cluster):
        populate(cluster)
        assert len(cluster) == 150
        assert cluster.get(b"key-0042") == b"value-42"
        cluster.delete(b"key-0042")
        assert not cluster.contains(b"key-0042")
        assert cluster.append(b"key-0001", b"!") == b"value-1!"
        assert cluster.increment(b"counter", 7) == 7

    def test_stable_ownership(self, cluster):
        for i in range(50):
            key = f"key-{i}".encode()
            assert cluster.owner_of(key) is cluster.owner_of(key)

    def test_keys_spread_over_shards(self, cluster):
        populate(cluster, 300)
        sizes = cluster.shard_sizes()
        assert len(sizes) == 3
        assert all(size > 30 for size in sizes.values())  # rough balance

    def test_missing_key(self, cluster):
        with pytest.raises(KeyNotFoundError):
            cluster.get(b"never-stored")


class TestMembership:
    def test_add_node_migrates_only_moved_ranges(self, cluster):
        populate(cluster, 200)
        before = {
            f"key-{i:04d}".encode(): cluster.get(f"key-{i:04d}".encode())
            for i in range(200)
        }
        moved = cluster.keys_migrated
        cluster.add_node("node-3")
        migrated = cluster.keys_migrated - moved
        # Consistent hashing: roughly 1/4 of keys move, never all.
        assert 0 < migrated < 150
        for key, value in before.items():
            assert cluster.get(key) == value
        assert len(cluster) == 200

    def test_remove_node_drains(self, cluster):
        populate(cluster, 200)
        victim = next(iter(cluster.nodes))
        cluster.remove_node(victim)
        assert victim not in cluster.nodes
        assert len(cluster) == 200
        for i in range(200):
            assert cluster.get(f"key-{i:04d}".encode()) == f"value-{i}".encode()

    def test_cannot_drain_last_node(self):
        single = ShieldCluster(
            shield_opt(num_buckets=16, num_mac_hashes=8),
            AttestationService(b"cluster-ias-secret"),
            num_nodes=1,
        )
        with pytest.raises(StoreError):
            single.remove_node("node-0")

    def test_duplicate_node_rejected(self, cluster):
        with pytest.raises(StoreError):
            cluster.add_node("node-0")


class TestIsolation:
    def test_shards_have_distinct_secrets(self, cluster):
        masters = {node.store.keyring.master for node in cluster.nodes.values()}
        assert len(masters) == len(cluster.nodes)

    def test_shard_ciphertexts_differ_for_same_pair(self, cluster):
        """The same (key, value) stored on two shards must produce
        different ciphertexts — no cross-shard key reuse."""
        nodes = list(cluster.nodes.values())
        nodes[0].store.set(b"same-key", b"same-value")
        nodes[1].store.set(b"same-key", b"same-value")

        def ciphertext_of(node):
            store = node.store
            bucket = store.keyring.keyed_bucket_hash(
                b"same-key", store.config.num_buckets
            )
            addr = int.from_bytes(
                store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
                "little",
            )
            return store.machine.memory.raw_read(addr + 33, 18)

        assert ciphertext_of(nodes[0]) != ciphertext_of(nodes[1])

    def test_per_shard_clocks(self, cluster):
        populate(cluster, 90)
        busy = [node.machine.elapsed_us() for node in cluster.nodes.values()]
        assert all(us > 0 for us in busy)
        assert cluster.total_elapsed_us() == max(busy)


@pytest.fixture
def replicated():
    return ShieldCluster(
        shield_opt(num_buckets=64, num_mac_hashes=32),
        AttestationService(b"cluster-ias-secret"),
        num_nodes=4,
        replicas=3,
    )


class TestReplicatedCluster:
    """replicas > 1: quorum placement on the shared ring (satellite)."""

    def test_validation(self):
        config = shield_opt(num_buckets=64, num_mac_hashes=32)
        service = AttestationService(b"cluster-ias-secret")
        with pytest.raises(StoreError, match="more replicas"):
            ShieldCluster(config, service, num_nodes=2, replicas=3)
        with pytest.raises(StoreError, match="consistency"):
            ShieldCluster(config, service, num_nodes=3, replicas=2,
                          consistency="eventual")

    def test_basic_operations(self, replicated):
        populate(replicated, 80)
        assert len(replicated) == 80
        assert replicated.get(b"key-0042") == b"value-42"
        replicated.delete(b"key-0042")
        with pytest.raises(KeyNotFoundError):
            replicated.get(b"key-0042")
        assert len(replicated) == 79

    def test_each_key_lands_on_its_preference_list(self, replicated):
        populate(replicated, 60)
        for i in range(60):
            key = f"key-{i:04d}".encode()
            holders = [
                node.node_id for node in replicated.nodes.values()
                if node.store.contains(key)
            ]
            expected = [n.node_id for n in replicated.preference_nodes(key)]
            assert sorted(holders) == sorted(expected)

    def test_survives_a_node_kill(self, replicated):
        populate(replicated, 80)
        replicated.kill_node("node-1")
        for i in range(80):
            assert replicated.get(f"key-{i:04d}".encode()) == \
                f"value-{i}".encode()
        # Writes still reach a majority of each key's replica set.
        replicated.set(b"key-after-kill", b"still-works")
        assert replicated.get(b"key-after-kill") == b"still-works"

    def test_below_quorum_write_fails_but_one_works(self, replicated):
        populate(replicated, 10)
        key = b"key-0003"
        prefs = [n.node_id for n in replicated.preference_nodes(key)]
        for node_id in prefs[:2]:  # 2 of 3 replicas down: no majority
            replicated.kill_node(node_id)
        with pytest.raises(StoreError):
            replicated.set(key, b"nope")
        replicated.set(key, b"yes", consistency="one")
        assert replicated.get(key, consistency="one") == b"yes"

    def test_add_node_keeps_replicated_data(self, replicated):
        populate(replicated, 60)
        replicated.add_node("node-9")
        for i in range(60):
            assert replicated.get(f"key-{i:04d}".encode()) == \
                f"value-{i}".encode()
        # Placement is re-established against the grown ring.
        for i in range(0, 60, 7):
            key = f"key-{i:04d}".encode()
            holders = sorted(
                node.node_id for node in replicated.nodes.values()
                if node.store.contains(key)
            )
            expected = sorted(
                n.node_id for n in replicated.preference_nodes(key)
            )
            assert holders == expected

    def test_remove_node_drains_without_loss(self, replicated):
        populate(replicated, 60)
        replicated.remove_node("node-2")
        assert len(replicated.nodes) == 3
        for i in range(60):
            assert replicated.get(f"key-{i:04d}".encode()) == \
                f"value-{i}".encode()

    def test_remove_below_replica_floor_refused(self, replicated):
        replicated.remove_node("node-3")
        with pytest.raises(StoreError, match="fewer nodes than replicas"):
            replicated.remove_node("node-2")
