"""Cross-module integration scenarios the unit suites don't cover."""

import pytest

from repro.core import (
    MODE_OPTIMIZED,
    PartitionedShieldStore,
    ShieldStore,
    SnapshotPolicy,
    SnapshotScheduler,
    Snapshotter,
    shield_opt,
)
from repro.errors import (
    EnclaveMemoryError,
    IntegrityError,
    KeyNotFoundError,
    PointerSafetyError,
    ReplayError,
    StoreError,
)
from repro.net import (
    FRONTEND_HOTCALLS,
    NetworkedServer,
    SimClient,
    make_secure_channels,
)
from repro.sim import (
    Attacker,
    AttestationService,
    Machine,
    MonotonicCounterService,
    SealingService,
    attested_handshake,
)


class TestFullPipeline:
    def test_attest_serve_snapshot_restore(self):
        """The whole lifecycle on one machine: attest, serve traffic over
        the secure session, snapshot, crash, restore, keep serving."""
        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        service = AttestationService(b"deployment-ias-secret")
        ctx = store.enclave.context()
        suites = attested_handshake(service, ctx, store.enclave, bytes(range(32)))
        cch, sch = make_secure_channels(*suites)
        server = NetworkedServer(
            store, frontend=FRONTEND_HOTCALLS, server_channel=sch, client_channel=cch
        )
        client = SimClient(server)
        for i in range(50):
            client.set(f"k{i:02d}".encode(), f"v{i}".encode())
        assert client.increment(b"visits") == 1

        snapshotter = Snapshotter(
            SealingService(b"platform-secret-x"), MonotonicCounterService()
        )
        blob = snapshotter.snapshot_bytes(ctx, store)

        restored = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        snapshotter.restore(restored.enclave.context(), blob, restored)
        assert restored.get(b"k07") == b"v7"
        assert restored.get(b"visits") == b"1"
        restored.set(b"post-restore", b"works")
        assert restored.get(b"post-restore") == b"works"

    def test_partitioned_store_under_attack(self):
        """Partitioning must not weaken the integrity guarantees."""
        machine = Machine(num_threads=4)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=128), machine=machine
        )
        for i in range(100):
            store.set(f"key-{i:03d}".encode(), b"value")
        attacker = Attacker(machine.memory)
        # Flip one byte in every untrusted allocation's midpoint.
        detected = 0
        for base, size in attacker.untrusted_allocations():
            attacker.flip_bit(base + size // 2, 2)
        for i in range(100):
            try:
                store.get(f"key-{i:03d}".encode())
            except (IntegrityError, ReplayError, KeyNotFoundError):
                detected += 1
            except (EnclaveMemoryError, PointerSafetyError, StoreError):
                detected += 1  # corrupted pointers refused, not followed
        assert detected > 0

    def test_snapshots_with_partitioned_store_scheduler(self):
        """The Fig. 19 scheduler runs against a partitioned store too."""
        machine = Machine(num_threads=2)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=128, num_mac_hashes=64), machine=machine
        )
        for i in range(60):
            store.set(f"key-{i}".encode(), b"v" * 32)
        machine.reset_measurement()
        scheduler = SnapshotScheduler(
            store, SnapshotPolicy(mode=MODE_OPTIMIZED, interval_us=2_000.0)
        )
        for i in range(3000):
            store.set(f"key-{i % 60}".encode(), b"w" * 32)
            scheduler.tick(is_write=True)
        assert scheduler.snapshots_taken > 0
        assert store.get(b"key-3") == b"w" * 32

    def test_networked_partitioned_4_threads(self):
        machine = Machine(num_threads=4)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=128), machine=machine
        )
        server = NetworkedServer(store, frontend=FRONTEND_HOTCALLS)
        client = SimClient(server)
        for i in range(200):
            client.set(f"key-{i:03d}".encode(), b"v")
        busy_threads = sum(1 for t in machine.clock.threads if t.cycles > 0)
        assert busy_threads == 4
        for i in range(200):
            assert client.get(f"key-{i:03d}".encode()) == b"v"

    def test_two_stores_one_machine_are_isolated(self):
        """Different enclaves on one host must not share secrets: blobs
        sealed by one cannot restore into the other."""
        machine = Machine()
        from repro.sim import Enclave

        enclave_a = Enclave(machine, bytes([1]) * 32, name="a")
        enclave_b = Enclave(machine, bytes([2]) * 32, name="b")
        store_a = ShieldStore(
            shield_opt(num_buckets=16, num_mac_hashes=8),
            machine=machine,
            enclave=enclave_a,
        )
        store_b = ShieldStore(
            shield_opt(num_buckets=16, num_mac_hashes=8),
            machine=machine,
            enclave=enclave_b,
        )
        store_a.set(b"k", b"a-data")
        store_b.set(b"k", b"b-data")
        assert store_a.get(b"k") == b"a-data"
        assert store_b.get(b"k") == b"b-data"

        snapshotter = Snapshotter(
            SealingService(b"platform-secret-y"), MonotonicCounterService()
        )
        blob = snapshotter.snapshot_bytes(store_a.enclave.context(), store_a)
        target = ShieldStore(
            shield_opt(num_buckets=16, num_mac_hashes=8),
            machine=machine,
            enclave=enclave_b,
        )
        from repro.errors import SealingError

        with pytest.raises(SealingError):
            snapshotter.restore(target.enclave.context(), blob, target)
