"""Machine, execution contexts, boundary crossings, the SDK facade."""

import pytest

from repro.crypto.suite import make_suite
from repro.errors import EnclaveError
from repro.sim import Enclave, Machine
from repro.sim.llc import LLCache
from repro.sim.sdk import (
    sgx_aes_ctr_decrypt,
    sgx_aes_ctr_encrypt,
    sgx_read_rand,
    sgx_rijndael128_cmac,
)


@pytest.fixture
def machine():
    return Machine(num_threads=2)


@pytest.fixture
def enclave(machine):
    return Enclave(machine, bytes(32))


@pytest.fixture
def suite():
    return make_suite("fast-hashlib", bytes(16), bytes(range(16)))


class TestMachine:
    def test_contexts_bound_to_threads(self, machine):
        c0 = machine.context(0)
        c1 = machine.context(1)
        c0.charge(100)
        assert machine.clock.threads[0].cycles == 100
        assert machine.clock.threads[1].cycles == 0
        c1.charge(50)
        assert machine.elapsed_us() == pytest.approx(100 / 3600)

    def test_reset_measurement_keeps_epc_warm(self, machine, enclave):
        ctx = enclave.context()
        base = enclave.alloc(8192, materialize=False)
        machine.memory.touch(ctx, base, 8, write=False)
        assert machine.counters.epc_faults == 1
        machine.reset_measurement()
        assert machine.counters.epc_faults == 0
        assert machine.clock.elapsed_cycles() == 0
        machine.memory.llc.flush()  # force the memory path to reach the EPC
        machine.memory.touch(ctx, base, 8, write=False)
        assert machine.counters.epc_faults == 0  # still resident

    def test_rng_deterministic_per_seed(self):
        a = Machine(seed=7).rng.random()
        b = Machine(seed=7).rng.random()
        assert a == b


class TestCrossings:
    def test_ecall_charges(self, machine, enclave):
        ctx = enclave.enter(0)
        assert ctx.in_enclave
        assert machine.clock.threads[0].cycles == machine.cost.ecall_cycles
        assert machine.counters.ecalls == 1

    def test_hot_entry_is_cheaper(self, machine, enclave):
        enclave.enter(0, hot=True)
        enclave.enter(1, hot=False)
        assert machine.clock.threads[0].cycles < machine.clock.threads[1].cycles

    def test_ocall_requires_enclave(self, machine, enclave):
        with pytest.raises(EnclaveError):
            machine.context(0, in_enclave=False).ocall()
        ctx = enclave.context()
        ctx.ocall(syscall=True)
        assert machine.counters.ocalls == 1
        assert ctx.clock.cycles == machine.cost.ocall_cycles + machine.cost.syscall_cycles

    def test_syscall_forbidden_inside_enclave(self, machine, enclave):
        with pytest.raises(EnclaveError):
            enclave.context().syscall()
        machine.context(0, in_enclave=False).syscall()

    def test_enclave_measurement_size(self, machine):
        with pytest.raises(EnclaveError):
            Enclave(machine, b"too-short")


class TestSdkFacade:
    def test_sgx_read_rand_deterministic(self, machine, enclave):
        ctx = enclave.context()
        a = sgx_read_rand(ctx, 16)
        machine2 = Machine(num_threads=2)
        b = sgx_read_rand(Enclave(machine2, bytes(32)).context(), 16)
        assert a == b  # same machine seed
        assert len(a) == 16

    def test_sdk_requires_enclave(self, machine, suite):
        outside = machine.context(0, in_enclave=False)
        with pytest.raises(EnclaveError):
            sgx_read_rand(outside, 16)
        with pytest.raises(EnclaveError):
            sgx_aes_ctr_encrypt(outside, suite, bytes(16), b"data")

    def test_encrypt_decrypt_roundtrip(self, machine, enclave, suite):
        ctx = enclave.context()
        ct = sgx_aes_ctr_encrypt(ctx, suite, bytes(16), b"hello enclave")
        assert sgx_aes_ctr_decrypt(ctx, suite, bytes(16), ct) == b"hello enclave"
        assert machine.counters.aes_calls == 2
        assert machine.counters.decryptions == 1

    def test_cmac_charges(self, machine, enclave, suite):
        ctx = enclave.context()
        tag = sgx_rijndael128_cmac(ctx, suite, b"message")
        assert len(tag) == 16
        assert machine.counters.cmac_calls == 1


class TestLLC:
    def test_hit_miss_accounting(self):
        from repro.sim.cycles import CostModel

        llc = LLCache(CostModel())
        assert llc.access(1) is False
        assert llc.access(1) is True
        assert llc.hits == 1 and llc.misses == 1

    def test_eviction_order(self):
        from dataclasses import replace

        from repro.sim.cycles import CostModel

        llc = LLCache(replace(CostModel(), llc_bytes=0))  # min capacity
        for line in range(llc.capacity_lines + 1):
            llc.access(line)
        assert llc.access(0) is False  # evicted (LRU)

    def test_flush(self):
        from repro.sim.cycles import CostModel

        llc = LLCache(CostModel())
        llc.access(1)
        llc.flush()
        assert llc.access(1) is False
