"""Simulated memory: regions, allocation, charged access, protection."""

import pytest

from repro.errors import EnclaveError, EnclaveMemoryError
from repro.sim import Enclave, Machine
from repro.sim.memory import (
    ENCLAVE_BASE,
    REGION_ENCLAVE,
    REGION_UNTRUSTED,
    UNTRUSTED_BASE,
)


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def enclave(machine):
    return Enclave(machine, bytes(32))


class TestAllocation:
    def test_alloc_regions(self, machine):
        e = machine.memory.alloc(64, REGION_ENCLAVE)
        u = machine.memory.alloc(64, REGION_UNTRUSTED)
        assert machine.memory.in_enclave_range(e)
        assert not machine.memory.in_enclave_range(u)
        assert e >= ENCLAVE_BASE
        assert u >= UNTRUSTED_BASE

    def test_alloc_rejects_bad_size(self, machine):
        with pytest.raises(EnclaveMemoryError):
            machine.memory.alloc(0, REGION_UNTRUSTED)

    def test_alloc_rejects_bad_region(self, machine):
        with pytest.raises(EnclaveMemoryError):
            machine.memory.alloc(64, "nowhere")

    def test_free_and_refree(self, machine):
        base = machine.memory.alloc(64, REGION_UNTRUSTED)
        machine.memory.free(base)
        with pytest.raises(EnclaveMemoryError):
            machine.memory.free(base)

    def test_find_interior_address(self, machine):
        base = machine.memory.alloc(100, REGION_UNTRUSTED)
        alloc = machine.memory.find(base + 50)
        assert alloc.base == base

    def test_find_unknown_address(self, machine):
        with pytest.raises(EnclaveMemoryError):
            machine.memory.find(UNTRUSTED_BASE + 10**9)

    def test_bytes_allocated_tracking(self, machine):
        before = machine.memory.bytes_allocated[REGION_UNTRUSTED]
        base = machine.memory.alloc(1000, REGION_UNTRUSTED)
        assert machine.memory.bytes_allocated[REGION_UNTRUSTED] == before + 1000
        machine.memory.free(base)
        assert machine.memory.bytes_allocated[REGION_UNTRUSTED] == before


class TestChargedAccess:
    def test_write_read_roundtrip(self, machine):
        ctx = machine.context(0)
        base = machine.memory.alloc(64, REGION_UNTRUSTED)
        machine.memory.write(ctx, base, b"payload")
        assert machine.memory.read(ctx, base, 7) == b"payload"

    def test_access_charges_cycles(self, machine):
        ctx = machine.context(0)
        base = machine.memory.alloc(4096, REGION_UNTRUSTED)
        before = ctx.clock.cycles
        machine.memory.read(ctx, base, 64)
        assert ctx.clock.cycles > before

    def test_overrun_rejected(self, machine):
        ctx = machine.context(0)
        base = machine.memory.alloc(16, REGION_UNTRUSTED)
        with pytest.raises(EnclaveMemoryError):
            machine.memory.read(ctx, base, 32)
        with pytest.raises(EnclaveMemoryError):
            machine.memory.write(ctx, base + 8, bytes(16))

    def test_enclave_access_requires_enclave_context(self, machine, enclave):
        base = enclave.alloc(64)
        outside = machine.context(0, in_enclave=False)
        with pytest.raises(EnclaveError):
            machine.memory.read(outside, base, 8)
        inside = enclave.context()
        machine.memory.write(inside, base, b"secret")
        assert machine.memory.read(inside, base, 6) == b"secret"

    def test_untrusted_access_from_enclave_allowed(self, machine, enclave):
        base = enclave.alloc_untrusted(64)
        ctx = enclave.context()
        machine.memory.write(ctx, base, b"shared")
        assert machine.memory.read(ctx, base, 6) == b"shared"

    def test_unmaterialized_reads_zeros(self, machine):
        ctx = machine.context(0)
        base = machine.memory.alloc(64, REGION_UNTRUSTED, materialize=False)
        machine.memory.write(ctx, base, b"ignored")
        assert machine.memory.read(ctx, base, 7) == bytes(7)

    def test_llc_makes_second_access_cheaper(self, machine):
        ctx = machine.context(0)
        base = machine.memory.alloc(64, REGION_UNTRUSTED)
        machine.memory.read(ctx, base, 64)
        first = ctx.clock.cycles
        machine.memory.read(ctx, base, 64)
        second = ctx.clock.cycles - first
        assert second < first


class TestRawAccess:
    def test_raw_roundtrip_uncharged(self, machine):
        ctx = machine.context(0)
        base = machine.memory.alloc(32, REGION_UNTRUSTED)
        machine.memory.raw_write(base, b"raw")
        before = ctx.clock.cycles
        assert machine.memory.raw_read(base, 3) == b"raw"
        assert ctx.clock.cycles == before

    def test_raw_overrun_rejected(self, machine):
        base = machine.memory.alloc(8, REGION_UNTRUSTED)
        with pytest.raises(EnclaveMemoryError):
            machine.memory.raw_read(base, 16)
