"""Meta-tests: the repository's own promises stay true."""

import pathlib
import re

from repro.experiments import ALL_EXPERIMENTS

_ROOT = pathlib.Path(__file__).parent.parent


class TestDeliverables:
    def test_every_figure_experiment_has_a_bench(self):
        bench_names = {p.name for p in (_ROOT / "benchmarks").glob("bench_*.py")}
        for name in ALL_EXPERIMENTS:
            if name == "table1":
                expected_prefix = "bench_table1"
            else:
                expected_prefix = f"bench_{name}"
            assert any(
                b.startswith(expected_prefix) for b in bench_names
            ), f"no benchmark regenerates {name}"

    def test_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "SECURITY.md"):
            path = _ROOT / doc
            assert path.exists(), doc
            assert len(path.read_text()) > 500, f"{doc} looks stubbed"

    def test_examples_in_readme_exist(self):
        readme = (_ROOT / "README.md").read_text()
        for match in re.finditer(r"`(\w+\.py)`", readme):
            name = match.group(1)
            if (_ROOT / "examples" / name).exists() or name in (
                "setup.py",
            ):
                continue
            raise AssertionError(f"README references missing example {name}")

    def test_design_lists_every_experiment(self):
        design = (_ROOT / "DESIGN.md").read_text()
        for table in ("Table 1", "Fig. 2", "Fig. 10", "Fig. 19"):
            assert table in design

    def test_experiments_md_covers_every_figure(self):
        text = (_ROOT / "EXPERIMENTS.md").read_text()
        for figure in (2, 3, 6, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19):
            assert f"Figure {figure}" in text, f"Figure {figure} unrecorded"
        assert "Table 1" in text


class TestCodeHygiene:
    def test_no_builtin_hash_in_library(self):
        """Python's hash() is process-salted; the library must not use it
        for anything that affects simulated behaviour."""
        offenders = []
        for path in (_ROOT / "src").rglob("*.py"):
            text = path.read_text()
            for lineno, line in enumerate(text.splitlines(), 1):
                stripped = line.split("#")[0]
                if re.search(r"(?<![.\w])hash\(", stripped):
                    offenders.append(f"{path.name}:{lineno}")
        assert not offenders, offenders

    def test_no_wall_clock_in_simulation(self):
        """Simulated time must come from cycle clocks, not time.time()."""
        # Real I/O surfaces only: procpool.py polls OS pipes for worker
        # liveness and shmring.py bounds real shared-memory waits, so
        # their deadlines are wall-clock by nature; the shieldlint
        # engine reports real analysis duration, not simulated time;
        # store.py's stage timers attribute reporting-only wall time to
        # walk/crypto/verify (StoreStats.WALL_CLOCK_FIELDS — excluded
        # from engine-equivalence comparisons, never fed back into any
        # simulated clock); wal.py paces real fsync group commits
        # against the disk, not any simulated clock; faults.py heals
        # network partitions after real seconds by design (chaos plans
        # cut real TCP links for a scheduled wall-clock duration — the
        # heal clock never touches simulated time).
        allowed = {
            "tcp.py", "cli.py", "procpool.py", "engine.py", "shmring.py",
            "store.py", "wal.py", "faults.py",
        }
        offenders = []
        for path in (_ROOT / "src").rglob("*.py"):
            if path.name in allowed:
                continue
            text = path.read_text()
            if re.search(
                r"\btime\.(time|monotonic|perf_counter)\(|\bperf_counter\(",
                text,
            ):
                offenders.append(path.name)
        assert not offenders, offenders

    def test_public_modules_have_docstrings(self):
        undocumented = []
        for path in (_ROOT / "src").rglob("*.py"):
            text = path.read_text().lstrip()
            if path.name == "__main__.py":
                continue
            if not text.startswith(('"""', "'''")):
                undocumented.append(str(path))
        assert not undocumented, undocumented
