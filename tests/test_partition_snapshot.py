"""Multi-partition snapshots and worker crash recovery (§4.4 extended).

One :class:`~repro.core.persistence.PartitionSnapshotter` blob carries a
section per partition under a shared monotonic counter, with the
partition count and routing geometry sealed into the header.  These
tests cover the roundtrips across execution engines, every rejection
path (geometry mismatch, rollback, tampered/truncated bytes), the
SIGKILL-a-worker recovery flow of the multiprocess pool, the checkpoint
daemon, and the ``repro snapshot`` / ``repro restore`` CLI.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    MODE_PROCESSES,
    MODE_SEQUENTIAL,
    PartitionSnapshotter,
    PartitionedShieldStore,
    process_mode_supported,
    shield_opt,
)
from repro.errors import RollbackError, SnapshotError, WorkerError
from repro.net import SnapshotDaemon
from repro.sim import Machine, MonotonicCounterService

SECRET = bytes(range(32))
PARTITIONS = 2

needs_processes = pytest.mark.skipif(
    not process_mode_supported(),
    reason="platform cannot run the multiprocess engine",
)


def _config(partitions=PARTITIONS, **overrides):
    return shield_opt(
        num_buckets=overrides.pop("num_buckets", 64 * partitions),
        num_mac_hashes=overrides.pop("num_mac_hashes", 16 * partitions),
        **overrides,
    )


def _build(mode, partitions=PARTITIONS, config=None):
    config = config or _config(partitions)
    if mode == MODE_PROCESSES:
        return PartitionedShieldStore(
            config,
            master_secret=SECRET,
            num_partitions=partitions,
            mode=MODE_PROCESSES,
        )
    return PartitionedShieldStore(
        config,
        machine=Machine(num_threads=partitions),
        master_secret=SECRET,
        mode=mode,
    )


def _populate(store, count=100, prefix="key"):
    keys = [f"{prefix}-{i:04d}".encode() for i in range(count)]
    store.multi_set([(key, b"value-" + key) for key in keys])
    return keys


def _snapshotter(store, counters=None):
    return PartitionSnapshotter.for_store(
        store, counters or MonotonicCounterService()
    )


class TestRoundtrip:
    def test_roundtrip_in_process(self):
        store = _build(MODE_SEQUENTIAL)
        keys = _populate(store)
        store.delete(keys[3])
        counters = MonotonicCounterService()
        blob = _snapshotter(store, counters).snapshot_bytes(store)
        target = _build(MODE_SEQUENTIAL)
        _snapshotter(target, counters).restore(blob, target)
        assert sorted(target.iter_items()) == sorted(store.iter_items())
        assert len(target) == len(store)
        assert target.audit() == len(target)
        # Restored store keeps serving — reads, writes, routing.
        target.set(b"after-restore", b"works")
        assert target.get(b"after-restore") == b"works"
        assert target.get(keys[0]) == b"value-" + keys[0]

    def test_restore_replaces_existing_content(self):
        store = _build(MODE_SEQUENTIAL)
        _populate(store, 40)
        counters = MonotonicCounterService()
        blob = _snapshotter(store, counters).snapshot_bytes(store)
        target = _build(MODE_SEQUENTIAL)
        _populate(target, 70, prefix="other")
        _snapshotter(target, counters).restore(blob, target)
        assert sorted(target.iter_items()) == sorted(store.iter_items())

    @needs_processes
    def test_roundtrip_processes(self):
        counters = MonotonicCounterService()
        with _build(MODE_PROCESSES) as store:
            keys = _populate(store)
            blob = _snapshotter(store, counters).snapshot_bytes(store)
            expected = sorted(store.iter_items())
        with _build(MODE_PROCESSES) as target:
            _snapshotter(target, counters).restore(blob, target)
            assert sorted(target.iter_items()) == expected
            assert target.audit() == len(target) == len(keys)
            target.set(b"after-restore", b"works")
            assert target.get(b"after-restore") == b"works"

    @needs_processes
    def test_cross_mode_restore(self):
        """A snapshot taken by worker processes restores into in-process
        partitions and vice versa — same platform, same format."""
        counters = MonotonicCounterService()
        with _build(MODE_PROCESSES) as procs:
            _populate(procs, 60)
            blob = _snapshotter(procs, counters).snapshot_bytes(procs)
            expected = sorted(procs.iter_items())
        inproc = _build(MODE_SEQUENTIAL)
        _snapshotter(inproc, counters).restore(blob, inproc)
        assert sorted(inproc.iter_items()) == expected
        blob2 = _snapshotter(inproc, counters).snapshot_bytes(inproc)
        with _build(MODE_PROCESSES) as target:
            _snapshotter(target, counters).restore(blob2, target)
            assert sorted(target.iter_items()) == expected
            assert target.audit() == len(target)


class TestRejections:
    def _blob(self, counters=None):
        store = _build(MODE_SEQUENTIAL)
        _populate(store, 30)
        return _snapshotter(store, counters).snapshot_bytes(store)

    def test_partition_count_mismatch_rejected(self):
        blob = self._blob()
        target = _build(MODE_SEQUENTIAL, partitions=3)
        with pytest.raises(SnapshotError, match="matching geometry"):
            _snapshotter(target).restore(blob, target)

    def test_table_geometry_mismatch_rejected(self):
        blob = self._blob()
        target = _build(
            MODE_SEQUENTIAL, config=_config(num_buckets=256, num_mac_hashes=32)
        )
        with pytest.raises(SnapshotError, match="does not match the store"):
            _snapshotter(target).restore(blob, target)

    def test_rollback_rejected(self):
        counters = MonotonicCounterService()
        store = _build(MODE_SEQUENTIAL)
        _populate(store, 20)
        snapshotter = _snapshotter(store, counters)
        old_blob = snapshotter.snapshot_bytes(store)
        store.set(b"newer", b"data")
        snapshotter.snapshot_bytes(store)  # bumps the shared counter
        target = _build(MODE_SEQUENTIAL)
        with pytest.raises(RollbackError):
            _snapshotter(target, counters).restore(old_blob, target)

    def test_plaintext_header_tamper_rejected(self):
        # The plaintext counter and partition count are convenience
        # copies; flipping either must trip the sealed-header check.
        for offset in (8, 16):
            blob = bytearray(self._blob())
            blob[offset] ^= 0x01
            target = _build(MODE_SEQUENTIAL)
            with pytest.raises(SnapshotError):
                _snapshotter(target).restore(bytes(blob), target)

    def test_truncations_rejected(self):
        blob = self._blob()
        for cut in (0, 7, 8, 15, 16, 19, 20, 27, len(blob) // 2, len(blob) - 1):
            target = _build(MODE_SEQUENTIAL)
            with pytest.raises(SnapshotError):
                _snapshotter(target).restore(blob[:cut], target)

    def test_trailing_bytes_rejected(self):
        blob = self._blob()
        target = _build(MODE_SEQUENTIAL)
        with pytest.raises(SnapshotError, match="trailing"):
            _snapshotter(target).restore(blob + b"\x00", target)

    def test_wrong_magic_rejected(self):
        target = _build(MODE_SEQUENTIAL)
        with pytest.raises(SnapshotError):
            _snapshotter(target).restore(b"NOTPSNAP" + bytes(32), target)


@needs_processes
class TestCrashRecovery:
    def test_sigkill_worker_restores_from_snapshot(self):
        """The tentpole flow: SIGKILL one partition worker under a live
        workload; the pool respawns it, restores the latest snapshot,
        keeps serving, and accounts for the lost window."""
        with _build(MODE_PROCESSES) as store:
            counters = MonotonicCounterService()
            snapshotter = _snapshotter(store, counters)
            keys = _populate(store, 120)
            snapshotter.snapshot_bytes(store)
            # Mutations after the checkpoint are the at-risk window.
            post = [f"post-{i:04d}".encode() for i in range(40)]
            store.multi_set([(key, b"late-" + key) for key in post])

            victim = store.partition_index_of(keys[0])
            os.kill(store._pool.workers[victim].process.pid, signal.SIGKILL)
            with pytest.raises(WorkerError, match="restored from snapshot"):
                store.multi_get(keys)

            assert store.partition_state == "recovered"
            # Every snapshotted key is intact and integrity verifies.
            values = store.multi_get(keys)
            for key in keys:
                assert values[key] == b"value-" + key
            assert store.audit() == len(store)
            stats = store.stats()
            assert stats.worker_recoveries == 1
            assert stats.worker_ops_lost >= 1
            # The pool still serves writes after recovery...
            store.set(b"after-crash", b"ok")
            assert store.get(b"after-crash") == b"ok"
            # ...and a fresh checkpoint returns the engine to "ok".
            snapshotter.snapshot_bytes(store)
            assert store.partition_state == "ok"

    def test_snapshot_restore_resets_degraded_state(self):
        """restore_all brings a degraded pool (worker died with no
        checkpoint) back to a fully known state."""
        counters = MonotonicCounterService()
        with _build(MODE_PROCESSES) as source:
            _populate(source, 50)
            blob = _snapshotter(source, counters).snapshot_bytes(source)
            expected = sorted(source.iter_items())
        with _build(MODE_PROCESSES) as store:
            _populate(store, 10, prefix="doomed")
            os.kill(store._pool.workers[0].process.pid, signal.SIGKILL)
            with pytest.raises(WorkerError, match="no snapshot"):
                store.multi_get([f"doomed-{i:04d}".encode() for i in range(10)])
            assert store.partition_state == "degraded"
            _snapshotter(store, counters).restore(blob, store)
            assert store.partition_state == "ok"
            assert sorted(store.iter_items()) == expected
            assert store.audit() == len(store)


class TestSnapshotDaemon:
    def test_periodic_checkpoints_and_latest(self, tmp_path):
        store = _build(MODE_SEQUENTIAL)
        counters = MonotonicCounterService()
        snapshotter = _snapshotter(store, counters)
        _populate(store, 30)
        daemon = SnapshotDaemon(
            lambda: snapshotter.snapshot_bytes(store), tmp_path, 3600.0
        )
        first = daemon.run_once()
        store.set(b"between-checkpoints", b"v")
        second = daemon.run_once()
        assert daemon.snapshots_written == 2
        assert SnapshotDaemon.latest_snapshot(tmp_path) == second
        assert first != second
        with open(second, "rb") as fh:
            blob = fh.read()
        target = _build(MODE_SEQUENTIAL)
        _snapshotter(target, counters).restore(blob, target)
        assert target.get(b"between-checkpoints") == b"v"
        assert len(target) == len(store)

    def test_empty_directory_has_no_latest(self, tmp_path):
        assert SnapshotDaemon.latest_snapshot(tmp_path) is None


class TestSnapshotCLI:
    def _run(self, *argv):
        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            cwd=repo,
            env=env,
            timeout=300,
        )

    def test_snapshot_restore_roundtrip(self, tmp_path):
        out = tmp_path / "cli.snap"
        taken = self._run(
            "snapshot", "--out", str(out), "--pairs", "150", "--partitions", "2"
        )
        assert taken.returncode == 0, taken.stderr
        assert out.exists()
        restored = self._run(
            "restore", "--snapshot", str(out), "--partitions", "2"
        )
        assert restored.returncode == 0, restored.stderr
        assert "restored 150 keys" in restored.stdout

    def test_restore_into_wrong_partition_count_fails(self, tmp_path):
        out = tmp_path / "cli.snap"
        taken = self._run(
            "snapshot", "--out", str(out), "--pairs", "60", "--partitions", "2"
        )
        assert taken.returncode == 0, taken.stderr
        mismatched = self._run(
            "restore", "--snapshot", str(out), "--partitions", "1"
        )
        assert mismatched.returncode == 1
        assert "restore rejected" in mismatched.stdout
