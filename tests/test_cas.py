"""Compare-and-swap semantics."""

import pytest

from repro.core import PartitionedShieldStore, ShieldStore, shield_opt
from repro.errors import KeyNotFoundError
from repro.sim import Machine


@pytest.fixture
def store():
    s = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
    s.set(b"k", b"v1")
    return s


class TestCas:
    def test_swap_on_match(self, store):
        assert store.compare_and_swap(b"k", b"v1", b"v2") is True
        assert store.get(b"k") == b"v2"

    def test_no_swap_on_mismatch(self, store):
        assert store.compare_and_swap(b"k", b"WRONG", b"v2") is False
        assert store.get(b"k") == b"v1"

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.compare_and_swap(b"absent", b"a", b"b")

    def test_size_change(self, store):
        assert store.compare_and_swap(b"k", b"v1", b"a-much-longer-value")
        assert store.get(b"k") == b"a-much-longer-value"
        assert len(store) == 1

    def test_optimistic_loop(self, store):
        """The classic CAS retry loop for lock-free read-modify-write."""
        store.set(b"cnt", b"0")
        for _ in range(10):
            while True:
                current = store.get(b"cnt")
                desired = str(int(current) + 1).encode()
                if store.compare_and_swap(b"cnt", current, desired):
                    break
        assert store.get(b"cnt") == b"10"

    def test_partitioned(self):
        ps = PartitionedShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=32),
            machine=Machine(num_threads=2),
        )
        ps.set(b"k", b"v1")
        assert ps.compare_and_swap(b"k", b"v1", b"v2")
        assert ps.get(b"k") == b"v2"

    def test_cache_coherent(self):
        s = ShieldStore(
            shield_opt(num_buckets=16, num_mac_hashes=8, cache_bytes=16 * 1024)
        )
        s.set(b"k", b"v1")
        s.get(b"k")  # cached
        assert s.compare_and_swap(b"k", b"v1", b"v2")
        assert s.get(b"k") == b"v2"  # cache must not serve v1


class TestCasOverWire:
    def test_sim_server(self):
        from repro.core import ShieldStore, shield_opt
        from repro.net import FRONTEND_HOTCALLS, NetworkedServer, SimClient

        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        client = SimClient(NetworkedServer(store, frontend=FRONTEND_HOTCALLS))
        client.set(b"k", b"v1")
        assert client.compare_and_swap(b"k", b"v1", b"v2") is True
        assert client.compare_and_swap(b"k", b"v1", b"v3") is False
        assert client.get(b"k") == b"v2"

    def test_tcp_server(self):
        from repro.core import ShieldStore, shield_opt
        from repro.net import TCPShieldClient, TCPShieldServer
        from repro.sim import AttestationService

        service = AttestationService(b"cas-tcp-ias-secret")
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        server = TCPShieldServer(store, service)
        server.start()
        try:
            client = TCPShieldClient(
                server.address, service, store.enclave.measurement, bytes(range(32))
            )
            client.set(b"k", b"v1")
            assert client.compare_and_swap(b"k", b"v1", b"v2") is True
            assert client.compare_and_swap(b"k", b"nope", b"v3") is False
            assert client.get(b"k") == b"v2"
            client.close()
        finally:
            server.close()

    def test_cas_value_codec_errors(self):
        import pytest as _pytest

        from repro.errors import ProtocolError
        from repro.net.message import decode_cas_value, encode_cas_value

        expected, new = decode_cas_value(encode_cas_value(b"a", b"bb"))
        assert (expected, new) == (b"a", b"bb")
        with _pytest.raises(ProtocolError):
            decode_cas_value(b"")
        with _pytest.raises(ProtocolError):
            decode_cas_value(b"\xff\xff\xff\xff--")
