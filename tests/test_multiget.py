"""Batched multi_get: semantics, amortization, partition fan-out."""

import pytest

from repro.core import PartitionedShieldStore, ShieldStore, shield_opt
from repro.sim import Attacker, Machine
from repro.errors import IntegrityError, ReplayError


@pytest.fixture
def store():
    s = ShieldStore(shield_opt(num_buckets=8, num_mac_hashes=4))
    for i in range(40):
        s.set(f"key-{i:02d}".encode(), f"value-{i}".encode())
    return s


class TestSemantics:
    def test_mixed_hits_and_misses(self, store):
        results = store.multi_get([b"key-03", b"absent", b"key-07"])
        assert results == {
            b"key-03": b"value-3",
            b"absent": None,
            b"key-07": b"value-7",
        }

    def test_empty_batch(self, store):
        assert store.multi_get([]) == {}

    def test_duplicate_keys(self, store):
        results = store.multi_get([b"key-01", b"key-01"])
        assert results == {b"key-01": b"value-1"}

    def test_matches_single_gets(self, store):
        keys = [f"key-{i:02d}".encode() for i in range(40)]
        batched = store.multi_get(keys)
        for key in keys:
            assert batched[key] == store.get(key)

    def test_tamper_detected_in_batch(self, store):
        attacker = Attacker(store.machine.memory)
        # Find some entry and corrupt its ciphertext.
        bucket = store.keyring.keyed_bucket_hash(b"key-05", store.config.num_buckets)
        addr = int.from_bytes(
            store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
            "little",
        )
        attacker.flip_bit(addr + 40, 1)
        with pytest.raises((IntegrityError, ReplayError)):
            store.multi_get([f"key-{i:02d}".encode() for i in range(40)])


class TestAmortization:
    def test_batch_cheaper_than_singles(self):
        """Keys sharing bucket sets amortize the set verification."""

        def run(batched):
            s = ShieldStore(shield_opt(num_buckets=8, num_mac_hashes=2))
            keys = [f"key-{i:02d}".encode() for i in range(48)]
            for key in keys:
                s.set(key, b"v" * 32)
            s.machine.reset_measurement()
            if batched:
                s.multi_get(keys)
            else:
                for key in keys:
                    s.get(key)
            return s.machine.elapsed_us()

        assert run(batched=True) < run(batched=False) * 0.8

    def test_cache_interplay(self):
        s = ShieldStore(
            shield_opt(num_buckets=8, num_mac_hashes=4, cache_bytes=32 * 1024)
        )
        s.set(b"hot", b"value")
        s.multi_get([b"hot"])  # populates / hits the cache
        hits_before = s.stats.cache_hits
        s.multi_get([b"hot"])
        assert s.stats.cache_hits > hits_before


class TestPartitionedFanOut:
    def test_routing_and_results(self):
        machine = Machine(num_threads=4)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=128), machine=machine
        )
        keys = [f"key-{i:03d}".encode() for i in range(120)]
        for key in keys:
            store.set(key, b"v-" + key)
        results = store.multi_get(keys + [b"absent"])
        assert results[b"absent"] is None
        for key in keys:
            assert results[key] == b"v-" + key

    def test_batch_work_spreads_across_threads(self):
        machine = Machine(num_threads=4)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=128), machine=machine
        )
        keys = [f"key-{i:03d}".encode() for i in range(200)]
        for key in keys:
            store.set(key, b"v")
        machine.reset_measurement()
        store.multi_get(keys)
        busy = sum(1 for t in machine.clock.threads if t.cycles > 0)
        assert busy == 4
