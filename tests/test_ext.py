"""Extensions: skiplist, verified range store, logged persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShieldStore, Snapshotter, shield_opt
from repro.errors import (
    IntegrityError,
    KeyNotFoundError,
    ReplayError,
    RollbackError,
)
from repro.ext import OperationLog, RangeShieldStore, RecoveringStore, SkipList
from repro.sim import Attacker, MonotonicCounterService, SealingService


class TestSkipList:
    def test_insert_search_delete(self):
        sl = SkipList()
        assert sl.insert(b"b", 2)
        assert sl.insert(b"a", 1)
        assert not sl.insert(b"a", 10)  # update
        assert sl.search(b"a") == 10
        assert sl.search(b"zz") is None
        assert sl.delete(b"a")
        assert not sl.delete(b"a")
        assert len(sl) == 1

    def test_items_ordered(self):
        sl = SkipList()
        for i in (5, 1, 9, 3, 7):
            sl.insert(f"k{i}".encode(), i)
        assert [k for k, _ in sl.items()] == [b"k1", b"k3", b"k5", b"k7", b"k9"]

    def test_range_bounds(self):
        sl = SkipList()
        for i in range(10):
            sl.insert(f"k{i}".encode(), i)
        assert [v for _, v in sl.range(b"k3", b"k7")] == [3, 4, 5, 6]
        assert list(sl.range(b"x", b"z")) == []

    @given(
        keys=st.lists(st.binary(min_size=1, max_size=8), min_size=0, max_size=40)
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_sorted_dict(self, keys):
        sl = SkipList()
        model = {}
        for i, key in enumerate(keys):
            sl.insert(key, i)
            model[key] = i
        assert [k for k, _ in sl.items()] == sorted(model)
        assert len(sl) == len(model)


class TestRangeStore:
    @pytest.fixture
    def store(self):
        store = RangeShieldStore(segment_size=4)
        for i in range(20):
            store.set(f"user:{i:03d}".encode(), f"data-{i}".encode())
        return store

    def test_point_ops(self, store):
        assert store.get(b"user:007") == b"data-7"
        store.set(b"user:007", b"updated")
        assert store.get(b"user:007") == b"updated"
        store.delete(b"user:007")
        with pytest.raises(KeyNotFoundError):
            store.get(b"user:007")
        assert len(store) == 19

    def test_range_query(self, store):
        results = list(store.range(b"user:005", b"user:010"))
        assert [k for k, _ in results] == [
            f"user:{i:03d}".encode() for i in range(5, 10)
        ]
        assert results[0][1] == b"data-5"

    def test_range_is_ordered_across_segments(self, store):
        keys = [k for k, _ in store.range(b"user:000", b"user:999")]
        assert keys == sorted(keys)
        assert len(keys) == 20

    def test_values_encrypted_in_untrusted_memory(self, store):
        atk = Attacker(store.machine.memory)
        for base, size in atk.untrusted_allocations():
            assert b"data-7" not in atk.read(base, size)

    def test_tampered_entry_detected(self, store):
        atk = Attacker(store.machine.memory)
        addr = store._index.search(b"user:003")
        atk.flip_bit(addr + 40, 2)
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"user:003")
        with pytest.raises((IntegrityError, ReplayError)):
            list(store.range(b"user:000", b"user:009"))

    def test_replayed_entry_detected(self, store):
        atk = Attacker(store.machine.memory)
        addr_v1 = store._index.search(b"user:004")
        from repro.core.entry import entry_total_size

        size = entry_total_size(8, 6)
        recorded = atk.snapshot(addr_v1, size)
        store.set(b"user:004", b"newer!")
        new_addr = store._index.search(b"user:004")
        if new_addr == addr_v1:
            atk.replay(recorded)
        else:
            atk.write(new_addr, recorded[1][: size])
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"user:004")

    def test_range_charges_simulated_time(self, store):
        before = store.machine.elapsed_us()
        list(store.range(b"user:000", b"user:020"))
        assert store.machine.elapsed_us() > before


class TestOperationLog:
    def _fresh(self):
        store = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16))
        counters = MonotonicCounterService()
        log = OperationLog(store, counters, counter_batch=8)
        return RecoveringStore(store, log), log, counters

    def test_logged_mutations_replayable(self):
        wrapped, log, counters = self._fresh()
        wrapped.set(b"a", b"1")
        wrapped.set(b"b", b"2")
        wrapped.append(b"a", b"!")
        wrapped.increment(b"n", 4)
        wrapped.delete(b"b")
        blob = log.dump()

        target = ShieldStore(
            shield_opt(num_buckets=32, num_mac_hashes=16),
            master_secret=wrapped.store.keyring.master,
        )
        replayed = log.replay(target.enclave.context(), blob, target)
        assert replayed == 5
        assert target.get(b"a") == b"1!"
        assert target.get(b"n") == b"4"
        assert not target.contains(b"b")

    def test_chain_tamper_detected(self):
        wrapped, log, _ = self._fresh()
        for i in range(5):
            wrapped.set(f"k{i}".encode(), b"v")
        blob = bytearray(log.dump())
        blob[20] ^= 1
        target = ShieldStore(
            shield_opt(num_buckets=32, num_mac_hashes=16),
            master_secret=wrapped.store.keyring.master,
        )
        with pytest.raises(IntegrityError):
            log.replay(target.enclave.context(), bytes(blob), target)

    def test_truncation_beyond_batch_detected(self):
        wrapped, log, counters = self._fresh()
        for i in range(20):  # 20 records, batch 8 -> counter = 2
            wrapped.set(f"k{i}".encode(), b"v")
        assert counters.read("shieldstore-log") == 2
        # Keep only the first 8 records: below the 16-record watermark.
        truncated = OperationLog(
            wrapped.store, counters, counter_batch=8
        )  # fresh chain state for re-verification
        blob_full = log.dump()
        # Reconstruct a truncated blob record by record.
        offset = 8
        records = []
        import struct as _struct

        rest = blob_full[offset:]
        while rest:
            (clen,) = _struct.unpack_from("<I", rest, 0)
            # record layout: u32 clen | u64 epoch | ciphertext | mac
            size = 4 + 8 + clen + 16
            record, rest = rest[:size], rest[size:]
            records.append(record)
        short_blob = blob_full[:8] + b"".join(records[:8])
        target = ShieldStore(
            shield_opt(num_buckets=32, num_mac_hashes=16),
            master_secret=wrapped.store.keyring.master,
        )
        with pytest.raises(RollbackError):
            log.replay(target.enclave.context(), short_blob, target)

    def test_counter_amortization(self):
        wrapped, log, counters = self._fresh()
        for i in range(64):
            wrapped.set(f"k{i}".encode(), b"v")
        # 64 mutations, batch 8: exactly 8 counter bumps, not 64.
        assert log.counter_bumps == 8

    def test_snapshot_plus_log_recovery(self):
        """Full recovery pipeline: snapshot, more writes, crash, replay."""
        store = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16))
        counters = MonotonicCounterService()
        sealing = SealingService(b"platform-secret-9")
        snapshotter = Snapshotter(sealing, counters)
        for i in range(10):
            store.set(f"base-{i}".encode(), b"v0")
        snapshot_blob = snapshotter.snapshot_bytes(store.enclave.context(), store)
        log = OperationLog(store, counters, counter_batch=4)
        wrapped = RecoveringStore(store, log)
        for i in range(6):
            wrapped.set(f"post-{i}".encode(), b"v1")
        log_blob = log.dump()

        # "Crash": rebuild from snapshot + log.
        recovered = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16))
        snapshotter.restore(recovered.enclave.context(), snapshot_blob, recovered)
        log.replay(recovered.enclave.context(), log_blob, recovered)
        assert len(recovered) == 16
        assert recovered.get(b"base-3") == b"v0"
        assert recovered.get(b"post-5") == b"v1"
