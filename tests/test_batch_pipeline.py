"""Batched write pipeline: multi_set/multi_delete semantics, amortization
counters, mid-batch tamper detection, and parallel-router equivalence."""

import pytest

from repro.core import PartitionedShieldStore, ShieldStore, shield_opt
from repro.errors import IntegrityError, KeyNotFoundError, ReplayError
from repro.sim import Attacker, Machine
from repro.workloads import SMALL, OperationStream, workload


@pytest.fixture
def store():
    return ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=4))


class TestMultiSet:
    def test_round_trip(self, store):
        items = {f"key-{i:02d}".encode(): f"value-{i}".encode() for i in range(30)}
        store.multi_set(items)
        assert store.multi_get(list(items)) == items

    def test_accepts_pairs(self, store):
        store.multi_set([(b"a", b"1"), (b"b", b"2")])
        assert store.get(b"a") == b"1"
        assert store.get(b"b") == b"2"

    def test_overwrites_and_inserts_mixed(self, store):
        store.set(b"old", b"before")
        store.multi_set({b"old": b"after", b"new": b"fresh"})
        assert store.get(b"old") == b"after"
        assert store.get(b"new") == b"fresh"

    def test_last_write_wins_within_batch(self, store):
        store.multi_set([(b"dup", b"first"), (b"dup", b"second")])
        assert store.get(b"dup") == b"second"

    def test_empty_batch(self, store):
        store.multi_set([])
        assert len(store) == 0

    def test_matches_single_sets(self):
        """Batched writes leave the same readable state as single sets."""
        single = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=4))
        batched = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=4))
        items = [(f"k{i}".encode(), f"v{i}".encode() * 3) for i in range(40)]
        for key, value in items:
            single.set(key, value)
        batched.multi_set(items)
        for key, _ in items:
            assert batched.get(key) == single.get(key)
        assert batched.audit() == single.audit()

    def test_store_consistent_after_batch(self, store):
        """Deferred set updates flush before the batch returns."""
        store.multi_set({f"k{i}".encode(): b"v" for i in range(50)})
        assert store.audit() == 50


class TestMultiDelete:
    def test_deletes_and_reports(self, store):
        store.multi_set({b"a": b"1", b"b": b"2"})
        results = store.multi_delete([b"a", b"absent", b"b"])
        assert results == {b"a": True, b"absent": False, b"b": True}
        assert len(store) == 0
        with pytest.raises(KeyNotFoundError):
            store.get(b"a")

    def test_duplicate_key_reports_first_outcome(self, store):
        store.set(b"once", b"v")
        results = store.multi_delete([b"once", b"once"])
        assert results == {b"once": True}

    def test_survivors_still_readable(self, store):
        items = {f"k{i}".encode(): f"v{i}".encode() for i in range(30)}
        store.multi_set(items)
        doomed = [k for i, k in enumerate(sorted(items)) if i % 3 == 0]
        store.multi_delete(doomed)
        for key, value in items.items():
            if key in doomed:
                with pytest.raises(KeyNotFoundError):
                    store.get(key)
            else:
                assert store.get(key) == value
        assert store.audit() == len(items) - len(doomed)


class TestAmortizationCounters:
    def test_batch_spanning_many_sets(self):
        """A batch across every MAC set verifies each set exactly once."""
        s = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=8))
        items = {f"key-{i:03d}".encode(): b"v" * 16 for i in range(96)}
        s.multi_set(items)
        assert s.stats.batches == 1
        assert s.stats.batch_ops == len(items)
        # Every one of the 8 sets was touched, but none more than once.
        assert s.stats.batch_sets_verified <= 8
        assert (
            s.stats.batch_sets_verified + s.stats.batch_verifications_saved
            == len(items)
        )
        assert s.stats.batch_verifications_saved >= len(items) - 8
        # Mutations beyond one per dirty set skipped their hash update.
        assert s.stats.batch_set_updates_saved >= len(items) - 8

    def test_single_ops_leave_counters_alone(self, store):
        store.set(b"k", b"v")
        store.get(b"k")
        store.delete(b"k")
        assert store.stats.batches == 0
        assert store.stats.batch_ops == 0
        assert store.stats.batch_sets_verified == 0

    def test_batched_writes_cheaper_than_singles(self):
        """Deferred set updates show up as simulated-time savings."""

        def run(batched):
            s = ShieldStore(shield_opt(num_buckets=8, num_mac_hashes=2))
            keys = [f"key-{i:02d}".encode() for i in range(48)]
            for key in keys:
                s.set(key, b"v" * 32)
            updates = [(key, b"w" * 32) for key in keys]
            s.machine.reset_measurement()
            if batched:
                s.multi_set(updates)
            else:
                for key, value in updates:
                    s.set(key, value)
            return s.machine.elapsed_us()

        assert run(batched=True) < run(batched=False) * 0.8


class TestTamperDetection:
    def _corrupt(self, store, key):
        """Flip a bit in a stored entry MAC (§5.2 MAC bucket node).

        A write batch never re-reads old ciphertext (it overwrites it),
        so its detection surface is the bucket-set hash over the MAC
        array — tamper there and the batch's one-time set verification
        must catch it.
        """
        attacker = Attacker(store.machine.memory)
        bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
        mac_head = int.from_bytes(
            store.machine.memory.raw_read(store.buckets.slot_addr(bucket) + 8, 8),
            "little",
        )
        attacker.flip_bit(mac_head + 16, 1)  # first MAC slot of the node

    def test_multi_set_detects_mid_batch_tamper(self, store):
        keys = [f"key-{i:02d}".encode() for i in range(40)]
        store.multi_set({k: b"v" for k in keys})
        self._corrupt(store, keys[7])
        with pytest.raises((IntegrityError, ReplayError)):
            store.multi_set({k: b"new" for k in keys})

    def test_multi_delete_detects_mid_batch_tamper(self, store):
        keys = [f"key-{i:02d}".encode() for i in range(40)]
        store.multi_set({k: b"v" for k in keys})
        self._corrupt(store, keys[7])
        with pytest.raises((IntegrityError, ReplayError)):
            store.multi_delete(keys)

    def test_store_usable_after_failed_batch(self, store):
        """The dirty-set flush runs even when verification aborts the
        batch, so untouched sets stay readable afterwards."""
        keys = [f"key-{i:02d}".encode() for i in range(40)]
        store.multi_set({k: b"v" for k in keys})
        self._corrupt(store, keys[7])
        with pytest.raises((IntegrityError, ReplayError)):
            store.multi_set({k: b"new" for k in keys})
        surviving = [k for k in keys if k != keys[7]]
        readable = 0
        for key in surviving:
            try:
                store.get(key)
                readable += 1
            except (IntegrityError, ReplayError):
                pass  # keys sharing the tampered set stay poisoned
        assert readable > 0


class TestParallelRouter:
    @staticmethod
    def _drive(parallel):
        machine = Machine(num_threads=4)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            machine=machine,
            parallel=parallel,
        )
        stream = OperationStream(workload("RD95_Z"), SMALL, 300, seed=11)
        store.multi_set([(op.key, op.value) for op in stream.load_operations()])
        reads = {}
        for _ in range(6):
            ops = list(stream.operations(100))
            writes = [(op.key, op.value) for op in ops
                      if op.op != "get" and op.value is not None]
            if writes:
                store.multi_set(writes)
            reads.update(store.multi_get([op.key for op in ops if op.op == "get"]))
        return store, reads

    def test_parallel_matches_sequential_state(self):
        """Same seed, same batches: the fan-out must leave the same
        logical key-value state as the inline router."""
        seq_store, seq_reads = self._drive(parallel=False)
        par_store, par_reads = self._drive(parallel=True)
        try:
            assert par_reads == seq_reads
            assert len(par_store) == len(seq_store)
            seq_items = dict(seq_store.iter_items())
            par_items = dict(par_store.iter_items())
            assert par_items == seq_items
            assert par_store.audit() == seq_store.audit()
        finally:
            seq_store.close()
            par_store.close()

    def test_parallel_multi_delete(self):
        machine = Machine(num_threads=4)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            machine=machine,
            parallel=True,
        )
        try:
            keys = [f"key-{i:03d}".encode() for i in range(120)]
            store.multi_set([(k, b"v-" + k) for k in keys])
            results = store.multi_delete(keys[:60] + [b"absent"])
            assert all(results[k] for k in keys[:60])
            assert results[b"absent"] is False
            assert len(store) == 60
        finally:
            store.close()

    def test_close_is_idempotent(self):
        machine = Machine(num_threads=2)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=128, num_mac_hashes=32),
            machine=machine,
            parallel=True,
        )
        store.multi_set([(b"a", b"1"), (b"b", b"2")])
        store.close()
        store.close()
