"""shieldlint: per-rule fixtures, suppressions, CLI exit codes, and the
zero-findings gate over the real tree.

Each fixture writes a tiny module at a repo-relative path the trust map
classifies (``core/store.py`` is trusted, ``core/procpool.py`` is a
lock module...) and asserts the pass flags the seeded violation — and
does *not* flag the adjacent compliant code.
"""

import textwrap

import pytest

from repro.analysis import AnalysisError, run_analysis
from repro.cli import main


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _lint(tmp_path, rules=None):
    return run_analysis(root=str(tmp_path), rules=rules)


class TestTrustBoundaryRule:
    def test_plaintext_to_pipe_sink_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def leak(conn, key, value):
                conn.send_bytes(value)
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["trust-boundary"]
        assert "send_bytes" in report.active[0].message

    def test_encrypted_payload_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def ship(conn, suite, key, value):
                conn.send_bytes(suite.encrypt(b"iv", value))
            """,
        )
        assert _lint(tmp_path).active == []

    def test_plaintext_in_exception_message_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def fail(key):
                raise ValueError(f"no such key {key!r}")
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["trust-boundary"]
        assert "exception" in report.active[0].message

    def test_declassified_length_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def fail(key):
                raise ValueError(f"bad key of {len(key)} bytes")
            """,
        )
        assert _lint(tmp_path).active == []

    def test_taint_flows_through_assignment_and_fstring(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def leak(mem, value):
                record = b"header" + value
                blob = f"{record}".encode()
                mem.raw_write(0, blob)
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["trust-boundary"]

    def test_untrusted_module_is_not_checked(self, tmp_path):
        _write(
            tmp_path,
            "workloads/gen.py",
            """
            def emit(conn, key, value):
                conn.send_bytes(value)
            """,
        )
        assert _lint(tmp_path).active == []

    def test_unsealed_write_into_shared_memory_is_flagged(self, tmp_path):
        # The shm data plane's ring buffers are host-visible: a
        # subscript store of plaintext into a SharedMemory buffer is a
        # leak even though no call is involved.
        _write(
            tmp_path,
            "core/shmring.py",
            """
            def stage(shm, channel, blob):
                plain = channel.open(blob)
                shm.buf[0 : len(plain)] = plain
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["trust-boundary"]
        assert "shared memory" in report.active[0].message

    def test_sealed_write_into_shared_memory_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/shmring.py",
            """
            def stage(shm, channel, blob):
                plain = channel.open(blob)
                sealed = channel.seal(plain)
                shm.buf[0 : len(sealed)] = sealed
            """,
        )
        assert _lint(tmp_path).active == []

    def test_decrypt_result_is_a_source(self, tmp_path):
        _write(
            tmp_path,
            "net/tcp.py",
            """
            def relay(sock, suite, blob):
                plain = suite.decrypt(b"iv", blob)
                sock.sendall(plain)
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["trust-boundary"]


class TestVerifyBeforeUseRule:
    def test_unverified_return_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            class Store:
                def get(self, key):
                    plain = self.suite.decrypt(b"iv", key)
                    return plain
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["verify-before-use"]

    def test_verified_return_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            class Store:
                def get(self, key):
                    plain = self.suite.decrypt(b"iv", key)
                    self._verify_set(0, [])
                    return plain

                def _verify_set(self, set_id, macs):
                    pass
            """,
        )
        assert _lint(tmp_path).active == []

    def test_verify_on_only_one_branch_is_flagged(self, tmp_path):
        """The "unreachable on some path" case: AND-merge of branches."""
        _write(
            tmp_path,
            "core/store.py",
            """
            class Store:
                def get(self, key, fast):
                    plain = self.suite.decrypt(b"iv", key)
                    if not fast:
                        self._verify_set(0, [])
                    return plain

                def _verify_set(self, set_id, macs):
                    pass
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["verify-before-use"]

    def test_unverified_mutation_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            class Store:
                def set(self, key, value):
                    old = self.suite.decrypt(b"iv", key)
                    self._update_entry(0, old, value)
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["verify-before-use"]
        assert "_update_entry" in report.active[0].message

    def test_unverified_yield_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            class Store:
                def iter_items(self):
                    for blob in self.chunks:
                        yield self.suite.decrypt(b"iv", blob)
            """,
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["verify-before-use"]


class TestLockOrderRule:
    def test_descending_family_order_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/procpool.py",
            """
            class ProcessPartitionPool:
                def bad(self):
                    with self._health_lock:
                        with self.workers[0].lock:
                            pass
            """,
        )
        report = _lint(tmp_path)
        assert any(
            f.rule == "lock-order" and "pinned order" in f.message
            for f in report.active
        )

    def test_ascending_exitstack_loop_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/procpool.py",
            """
            from contextlib import ExitStack

            class ProcessPartitionPool:
                def scatter(self, payloads):
                    targets = sorted(payloads)
                    with ExitStack() as stack:
                        for index in targets:
                            stack.enter_context(self.workers[index].lock)
            """,
        )
        assert _lint(tmp_path).active == []

    def test_unordered_loop_acquisition_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/procpool.py",
            """
            from contextlib import ExitStack

            class ProcessPartitionPool:
                def scatter(self, payloads):
                    with ExitStack() as stack:
                        for index in payloads:
                            stack.enter_context(self.workers[index].lock)
            """,
        )
        report = _lint(tmp_path)
        assert any(
            f.rule == "lock-order" and "ascending" in f.message
            for f in report.active
        )

    def test_nested_worker_locks_are_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/procpool.py",
            """
            class ProcessPartitionPool:
                def bad(self, a, b):
                    with self.workers[a].lock:
                        with self.workers[b].lock:
                            pass
            """,
        )
        report = _lint(tmp_path)
        assert any(
            f.rule == "lock-order" and "second" in f.message
            for f in report.active
        )

    def test_unguarded_shared_state_mutation_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/procpool.py",
            """
            class ProcessPartitionPool:
                def poke(self):
                    self.recoveries += 1
            """,
        )
        report = _lint(tmp_path)
        assert any(
            f.rule == "lock-order" and "recoveries" in f.message
            for f in report.active
        )

    def test_guarded_mutation_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/procpool.py",
            """
            class ProcessPartitionPool:
                def poke(self):
                    with self._health_lock:
                        self.recoveries += 1
            """,
        )
        assert _lint(tmp_path).active == []

    def test_held_set_propagates_into_helpers(self, tmp_path):
        """A helper that mutates under its caller's lock is clean; the
        same helper reached without the lock is flagged."""
        _write(
            tmp_path,
            "core/procpool.py",
            """
            class ProcessPartitionPool:
                def safe(self):
                    with self._health_lock:
                        self._bump()

                def unsafe(self):
                    self._bump()

                def _bump(self):
                    self.recoveries += 1
            """,
        )
        report = _lint(tmp_path)
        assert (
            len([f for f in report.active if "recoveries" in f.message]) == 1
        )


class TestSuppressions:
    VIOLATION = """
    def leak(conn, key, value):
        conn.send_bytes(value)  {comment}
    """

    def test_justified_suppression_silences_finding(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            self.VIOLATION.format(
                comment="# shieldlint: ignore[trust-boundary] -- fixture"
            ),
        )
        report = _lint(tmp_path)
        assert report.active == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].justification == "fixture"

    def test_comment_on_line_above_also_covers(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def leak(conn, key, value):
                # shieldlint: ignore[trust-boundary] -- fixture
                conn.send_bytes(value)
            """,
        )
        assert _lint(tmp_path).active == []

    def test_bare_suppression_is_itself_a_finding(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            self.VIOLATION.format(comment="# shieldlint: ignore[trust-boundary]"),
        )
        report = _lint(tmp_path)
        rules = sorted(f.rule for f in report.active)
        # The original finding stays active AND the bare comment is
        # reported: silencing always costs a written reason.
        assert rules == ["suppression", "trust-boundary"]

    def test_suppression_for_other_rule_does_not_cover(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            self.VIOLATION.format(
                comment="# shieldlint: ignore[lock-order] -- wrong rule"
            ),
        )
        report = _lint(tmp_path)
        assert [f.rule for f in report.active] == ["trust-boundary"]


class TestEngineAndCli:
    def test_rule_selection_runs_only_that_pass(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def leak(conn, key, value):
                conn.send_bytes(value)
            """,
        )
        assert _lint(tmp_path, rules=["lock-order"]).active == []
        assert len(_lint(tmp_path, rules=["trust-boundary"]).active) == 1

    def test_unknown_rule_is_an_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            run_analysis(root=str(tmp_path), rules=["no-such-rule"])

    def test_syntax_error_is_an_analysis_error(self, tmp_path):
        _write(tmp_path, "core/store.py", "def broken(:\n")
        with pytest.raises(AnalysisError):
            run_analysis(root=str(tmp_path))

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty"
        _write(
            dirty,
            "core/store.py",
            """
            def leak(conn, key, value):
                conn.send_bytes(value)
            """,
        )
        clean = tmp_path / "clean"
        _write(clean, "core/store.py", "X = 1\n")
        assert main(["lint", str(dirty)]) == 1
        assert main(["lint", str(clean)]) == 0
        assert main(["lint", str(tmp_path / "missing")]) == 2
        capsys.readouterr()

    def test_cli_json_is_machine_readable(self, tmp_path, capsys):
        import json

        _write(
            tmp_path,
            "core/store.py",
            """
            def leak(conn, key, value):
                conn.send_bytes(value)
            """,
        )
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["counts"] == {"trust-boundary": 1}
        assert payload["findings"][0]["path"] == "core/store.py"


class TestRealTreeGate:
    """The repository's own tree must lint clean — this is the CI gate."""

    def test_zero_active_findings_on_the_real_tree(self):
        report = run_analysis()  # defaults to the installed src/repro
        assert report.files_scanned > 50
        details = "\n".join(f.format() for f in report.active)
        assert report.active == [], f"shieldlint findings:\n{details}"

    def test_every_suppression_in_tree_is_justified(self):
        report = run_analysis()
        for finding in report.suppressed:
            assert finding.justification, finding.format()

    def test_all_six_passes_complete_quickly(self):
        report = run_analysis()
        assert set(report.rules) == {
            "trust-boundary",
            "verify-before-use",
            "lock-order",
            "key-domain",
            "nonce-reuse",
            "ct-compare",
        }
        assert report.duration_s < 10.0
