"""shieldfault: plan parsing, schedules, determinism, and hook behavior."""

import json

import pytest

from repro.errors import ProtocolError, SnapshotError
from repro.sim import faults
from repro.sim.faults import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)

POINT = "tcp.client.send"  # any registered point works for schedule tests


def plan_of(*rules, seed=0):
    return FaultPlan(list(rules), seed=seed)


class TestPlanParsing:
    def test_from_json_roundtrip(self):
        text = json.dumps(
            {
                "seed": 7,
                "rules": [
                    {"point": "tcp.client.send", "kind": "drop", "hits": [0, 2]},
                    {"point": "channel.server.open", "kind": "tamper",
                     "probability": 0.25, "flips": 3},
                ],
            }
        )
        plan = FaultPlan.from_json(text)
        assert plan.seed == 7
        assert len(plan.rules) == 2
        assert plan.rules[1].flips == 3

    def test_rejects_unknown_point(self):
        with pytest.raises(FaultPlanError, match="matches no registered"):
            plan_of(FaultRule(point="tcp.client.sendd", kind="drop"))

    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            plan_of(FaultRule(point=POINT, kind="explode"))

    def test_rejects_unknown_error_class(self):
        with pytest.raises(FaultPlanError, match="unknown error class"):
            plan_of(FaultRule(point=POINT, kind="error", error="KeyboardInterrupt"))

    def test_rejects_bad_probability(self):
        with pytest.raises(FaultPlanError, match="outside"):
            plan_of(FaultRule(point=POINT, kind="drop", probability=1.5))

    def test_rejects_unknown_rule_field(self):
        with pytest.raises(FaultPlanError, match="unknown field"):
            FaultPlan.from_dict(
                {"rules": [{"point": POINT, "kind": "drop", "chance": 0.5}]}
            )

    def test_rejects_non_object_plan(self):
        with pytest.raises(FaultPlanError, match="rules"):
            FaultPlan.from_dict([])

    def test_rejects_invalid_json(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_pattern_matches_multiple_points(self):
        plan = plan_of(FaultRule(point="tcp.client.*", kind="drop"))
        assert plan.decide("tcp.client.send") is not None
        assert plan.decide("tcp.client.recv") is not None
        assert plan.decide("tcp.server.send") is None

    def test_every_registered_point_is_a_valid_rule_target(self):
        for point in INJECTION_POINTS:
            plan_of(FaultRule(point=point, kind="delay"))

    def test_every_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            if kind == "partition":
                # Partition rules are the only kind with mandatory
                # extra fields: the named groups being separated.
                plan_of(FaultRule(point=POINT, kind=kind,
                                  groups=[["a"], ["b"]]))
            else:
                plan_of(FaultRule(point=POINT, kind=kind))


class TestSchedules:
    def fires_at(self, plan, n=12):
        return [plan.decide(POINT) is not None for _ in range(n)]

    def test_no_schedule_fields_fires_always(self):
        plan = plan_of(FaultRule(point=POINT, kind="drop"))
        assert self.fires_at(plan, 4) == [True] * 4

    def test_explicit_hits(self):
        plan = plan_of(FaultRule(point=POINT, kind="drop", hits=[0, 3]))
        assert self.fires_at(plan, 5) == [True, False, False, True, False]

    def test_every_nth(self):
        plan = plan_of(FaultRule(point=POINT, kind="drop", every=3))
        assert self.fires_at(plan, 7) == [
            False, False, True, False, False, True, False,
        ]

    def test_after_offsets_the_schedule(self):
        plan = plan_of(FaultRule(point=POINT, kind="drop", hits=[0], after=2))
        assert self.fires_at(plan, 4) == [False, False, True, False]

    def test_limit_caps_total_fires(self):
        plan = plan_of(FaultRule(point=POINT, kind="drop", limit=2))
        assert self.fires_at(plan, 5) == [True, True, False, False, False]

    def test_probability_is_seed_deterministic(self):
        def sequence(seed):
            plan = plan_of(
                FaultRule(point=POINT, kind="drop", probability=0.3), seed=seed
            )
            return self.fires_at(plan, 40)

        assert sequence(11) == sequence(11)
        assert sequence(11) != sequence(12)  # astronomically unlikely to tie
        hits = sum(sequence(11))
        assert 2 <= hits <= 25  # ~12 expected; loose deterministic bounds

    def test_first_matching_rule_wins(self):
        plan = plan_of(
            FaultRule(point=POINT, kind="drop", hits=[0]),
            FaultRule(point=POINT, kind="delay"),
        )
        rule, _state = plan.decide(POINT)
        assert rule.kind == "drop"
        rule, _state = plan.decide(POINT)
        assert rule.kind == "delay"

    def test_counters_and_snapshot(self):
        plan = plan_of(FaultRule(point=POINT, kind="drop", every=2))
        for _ in range(4):
            plan.decide(POINT)
        assert plan.fires() == 2
        assert plan.fires(point=POINT, kind="drop") == 2
        assert plan.fires(kind="tamper") == 0
        snap = plan.snapshot()
        assert snap["hits"][POINT] == 4
        assert snap["fires"][f"{POINT}:drop"] == 2
        assert snap["total_fires"] == 2


class TestCheckHook:
    def test_no_plan_is_a_fast_noop(self):
        faults.uninstall()
        assert faults.check(POINT, b"payload") is None
        assert faults.fires() == 0

    def test_unregistered_point_is_rejected_with_plan_installed(self):
        with faults.injected(plan_of(FaultRule(point=POINT, kind="drop"))):
            with pytest.raises(FaultPlanError, match="unregistered"):
                faults.check("tcp.client.bogus", b"x")

    def test_injected_context_restores_previous_state(self):
        assert faults.active() is None
        with faults.injected(plan_of(FaultRule(point=POINT, kind="drop"))) as p:
            assert faults.active() is p
        assert faults.active() is None

    def test_error_kind_raises_named_class(self):
        plan = plan_of(
            FaultRule(point=POINT, kind="error", error="ProtocolError", hits=[0]),
            FaultRule(point=POINT, kind="error", error="SnapshotError", hits=[0]),
        )
        with faults.injected(plan):
            with pytest.raises(ProtocolError, match="injected"):
                faults.check(POINT, b"x")
            with pytest.raises(SnapshotError, match="injected"):
                faults.check(POINT, b"x")

    def test_tamper_mutates_payload_deterministically(self):
        payload = bytes(range(64))

        def tampered(seed):
            with faults.injected(
                plan_of(FaultRule(point=POINT, kind="tamper", flips=2), seed=seed)
            ):
                return faults.check(POINT, payload).payload

        first = tampered(5)
        assert first != payload
        assert len(first) == len(payload)
        assert tampered(5) == first
        assert tampered(6) != first

    def test_tamper_with_empty_payload_is_a_noop(self):
        with faults.injected(plan_of(FaultRule(point=POINT, kind="tamper"))):
            assert faults.check(POINT, b"") is None
            assert faults.check(POINT, None) is None

    def test_crash_invokes_callback(self):
        called = []
        with faults.injected(plan_of(FaultRule(point=POINT, kind="crash"))):
            hit = faults.check(POINT, b"x", on_crash=lambda: called.append(1))
        assert called == [1]
        assert hit.kind == "crash"

    def test_crash_without_callback_raises(self):
        with faults.injected(plan_of(FaultRule(point=POINT, kind="crash"))):
            with pytest.raises(ConnectionResetError):
                faults.check(POINT, b"x")

    def test_drop_returns_hit_for_site_cooperation(self):
        with faults.injected(plan_of(FaultRule(point=POINT, kind="drop"))):
            hit = faults.check(POINT, b"x")
        assert hit.kind == "drop"

    def test_delay_sleeps_then_proceeds(self):
        import time

        with faults.injected(
            plan_of(FaultRule(point=POINT, kind="delay", delay_s=0.01))
        ):
            start = time.monotonic()
            hit = faults.check(POINT, b"x")
            assert time.monotonic() - start >= 0.009
        assert hit.kind == "delay"

    def test_module_fires_mirrors_plan(self):
        with faults.injected(plan_of(FaultRule(point=POINT, kind="drop"))):
            faults.check(POINT, b"x")
            faults.check(POINT, b"x")
            assert faults.fires() == 2
            assert faults.fires(point=POINT) == 2
            assert faults.fires(kind="drop") == 2
        assert faults.fires() == 0  # uninstalled again


class TestPersistencePoints:
    """The persistence.snapshot / persistence.restore hooks end to end."""

    def _store(self):
        from repro.core import PartitionedShieldStore, shield_opt

        return PartitionedShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=16),
            num_partitions=2,
            mode="sequential",
        )

    def test_tampered_snapshot_blob_is_rejected_on_restore(self):
        from repro.core import PartitionSnapshotter
        from repro.sim import MonotonicCounterService

        store = self._store()
        store.multi_set([(f"k{i}".encode(), b"v") for i in range(20)])
        counters = MonotonicCounterService()
        snapshotter = PartitionSnapshotter.for_store(store, counters)
        blob = snapshotter.snapshot_bytes(store)
        target = self._store()
        rule = FaultRule(
            point="persistence.restore", kind="tamper", flips=4, after=0
        )
        with faults.injected(plan_of(rule, seed=3)):
            with pytest.raises(Exception) as excinfo:
                PartitionSnapshotter.for_store(target, counters).restore(
                    blob, target
                )
        # Whatever byte the tamper hit (magic, sealed header, section),
        # the failure is a typed snapshot/integrity error, not silence.
        from repro.errors import ReproError

        assert isinstance(excinfo.value, ReproError)
        # And without the fault plan the same blob restores fine.
        clean = self._store()
        PartitionSnapshotter.for_store(clean, counters).restore(blob, clean)
        assert len(clean) == 20
