"""Trace record/replay: portability of workload sequences."""

import io

import pytest

from repro.core import ShieldStore, shield_base, shield_opt
from repro.workloads import SMALL, OperationStream, RD50_Z, Operation
from repro.workloads.trace import (
    TraceError,
    read_trace,
    record_trace,
    replay_trace,
    trace_to_string,
)


def sample_ops():
    stream = OperationStream(RD50_Z, SMALL, 40, seed=11)
    return list(stream.load_operations()) + list(stream.operations(120))


class TestRoundtrip:
    def test_record_read_identity(self, tmp_path):
        ops = sample_ops()
        path = str(tmp_path / "trace.txt")
        count = record_trace(ops, path, metadata={"workload": "RD50_Z"})
        assert count == len(ops)
        assert list(read_trace(path)) == ops

    def test_string_form(self):
        ops = sample_ops()[:10]
        text = trace_to_string(ops)
        assert text.startswith("# shieldstore-trace v1")
        assert list(read_trace(io.StringIO(text))) == ops

    def test_binary_keys_survive(self):
        ops = [Operation("set", bytes(range(16)), bytes(range(255, 0, -5)))]
        assert list(read_trace(io.StringIO(trace_to_string(ops)))) == ops


class TestValidation:
    def test_missing_header(self):
        with pytest.raises(TraceError):
            list(read_trace(io.StringIO("set aa bb\n")))

    def test_bad_op(self):
        text = "# shieldstore-trace v1\nfrobnicate aa\n"
        with pytest.raises(TraceError):
            list(read_trace(io.StringIO(text)))

    def test_bad_hex(self):
        text = "# shieldstore-trace v1\nget zz\n"
        with pytest.raises(TraceError):
            list(read_trace(io.StringIO(text)))

    def test_arity(self):
        text = "# shieldstore-trace v1\nset aa\n"
        with pytest.raises(TraceError):
            list(read_trace(io.StringIO(text)))

    def test_comments_and_blanks_skipped(self):
        text = "# shieldstore-trace v1\n\n# note\nget aa\n"
        assert len(list(read_trace(io.StringIO(text)))) == 1


class TestCrossSystemReplay:
    def test_two_configs_agree_on_results(self):
        """ShieldOpt and ShieldBase replaying one trace must observe
        identical values at every step."""
        ops = sample_ops()
        opt = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        base = ShieldStore(shield_base(num_buckets=64, num_mac_hashes=32))
        results_opt = replay_trace(ops, opt)
        results_base = replay_trace(ops, base)
        assert results_opt == results_base
        assert dict(opt.iter_items()) == dict(base.iter_items())

    def test_replay_reports_misses_as_none(self):
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        results = replay_trace([Operation("get", b"absent")], store)
        assert results == [None]
