"""AES-128 block cipher: FIPS-197 and NIST KAT vectors, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, INV_SBOX, SBOX, expand_key
from repro.errors import CryptoError


class TestVectors:
    def test_fips197_appendix_c1(self):
        cipher = AES128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_fips197_appendix_b(self):
        cipher = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_nist_zero_key_kat(self):
        cipher = AES128(bytes(16))
        assert (
            cipher.encrypt_block(bytes(16)).hex()
            == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )

    def test_nist_gfsbox_kat(self):
        # NIST AESAVS GFSbox: key all-zero, pt f34481ec3cc627bacd5dc3fb08f273e6
        cipher = AES128(bytes(16))
        ct = cipher.encrypt_block(bytes.fromhex("f34481ec3cc627bacd5dc3fb08f273e6"))
        assert ct.hex() == "0336763e966d92595a567cc9ce537f5e"

    def test_nist_keysbox_kat(self):
        # NIST AESAVS KeySbox: pt all-zero, key 10a58869d74be5a374cf867cfb473859
        cipher = AES128(bytes.fromhex("10a58869d74be5a374cf867cfb473859"))
        ct = cipher.encrypt_block(bytes(16))
        assert ct.hex() == "6d251e6944b051e04eaa6fb4dbf78465"

    def test_decrypt_vector(self):
        cipher = AES128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        pt = cipher.decrypt_block(bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"))
        assert pt.hex() == "00112233445566778899aabbccddeeff"


class TestSboxConstruction:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x


class TestKeySchedule:
    def test_expand_key_length(self):
        assert len(expand_key(bytes(16))) == 44

    def test_fips197_expansion_first_round(self):
        words = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        assert words[4] == 0xA0FAFE17
        assert words[43] == 0xB6630CA6

    def test_wrong_key_size_rejected(self):
        with pytest.raises(CryptoError):
            AES128(b"short")
        with pytest.raises(CryptoError):
            AES128(bytes(32))


class TestBlockInterface:
    def test_wrong_block_size_rejected(self):
        cipher = AES128(bytes(16))
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"short")
        with pytest.raises(CryptoError):
            cipher.decrypt_block(bytes(17))


class TestProperties:
    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_encryption_changes_block(self, key, block):
        assert AES128(key).encrypt_block(block) != block

    @given(block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_key_sensitivity(self, block):
        a = AES128(bytes(16)).encrypt_block(block)
        b = AES128(bytes([1]) + bytes(15)).encrypt_block(block)
        assert a != b
