"""Smoke tests: every experiment module runs at tiny scale and keeps its
key qualitative property.  (Full-shape assertions live in benchmarks/.)"""

import pytest

from repro.experiments import ALL_EXPERIMENTS, fig02, fig03, fig09, fig15, fig16, table1
from repro.experiments.common import (
    EcallFrontend,
    TableResult,
    build_system,
    make_machine,
    serving_thread,
)

TINY = 0.0015


class TestHarness:
    def test_build_every_system(self):
        for name in (
            "insecure",
            "baseline",
            "memcached+graphene",
            "shieldbase",
            "shieldopt",
            "shieldopt+cache",
            "eleos",
        ):
            machine = make_machine(1, TINY)
            system = build_system(name, machine, TINY)
            system.set(b"k", b"v")
            assert system.get(b"k") == b"v"

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            build_system("redis", make_machine(1, TINY), TINY)

    def test_ecall_frontend_charges_crossing(self):
        machine = make_machine(1, TINY)
        system = build_system("shieldopt", machine, TINY, standalone=True)
        assert isinstance(system, EcallFrontend)
        machine.reset_measurement()
        system.set(b"k", b"v")
        assert machine.counters.ecalls == 1

    def test_serving_thread_routing(self):
        machine = make_machine(4, TINY)
        system = build_system("shieldopt", machine, TINY)
        threads = {serving_thread(system, f"key-{i}".encode()) for i in range(64)}
        assert threads == {0, 1, 2, 3}

    def test_table_result_format_and_column(self):
        table = TableResult("T", "title", ["a", "b"], [[1, 2.5], [3, None]])
        text = table.format()
        assert "T: title" in text and "2.5" in text and "-" in text
        assert table.column("a") == [1, 3]


class TestExperimentCatalog:
    def test_catalog_is_complete(self):
        expected = {
            "table1", "breakdown", "fig02", "fig03", "fig06", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19",
        }
        assert set(ALL_EXPERIMENTS) == expected
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run)


class TestTinyRuns:
    """A fast subset executed end-to-end (others are bench-only)."""

    def test_fig02_shape(self):
        result = fig02.run(scale=TINY, accesses=300)
        rows = {row[0]: row for row in result.rows}
        assert rows[4096][2] > rows[16][2] * 20  # paging cliff exists

    def test_fig03_shape(self):
        result = fig03.run(scale=TINY, ops=300)
        rows = {row[0]: row for row in result.rows}
        assert rows[4096][3] > rows[16][3] * 3  # slowdown grows with WSS

    def test_fig09_shape(self):
        result = fig09.run(scale=TINY, ops=300)
        one_m = result.rows[0]
        assert one_m[1] > one_m[2]  # hints reduce decryptions

    def test_fig15_shape(self):
        result = fig15.run(scale=0.003, ops=300)
        for row in result.rows:
            assert row[4] < row[3]  # 8M hashes overflow the EPC

    def test_fig16_runs(self):
        result = fig16.run(scale=TINY, ops=200)
        assert len(result.rows) == 4
        assert all(row[1] and row[2] for row in result.rows)

    def test_table1_parity(self):
        result = table1.run(scale=TINY, ops=400)
        for row in result.rows:
            assert 0.8 < row[3] < 1.25
