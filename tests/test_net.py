"""Wire protocol, secure channels, and the simulated networked server."""

import pytest

from repro.core import ShieldStore, shield_opt
from repro.crypto.suite import make_suite
from repro.errors import KeyNotFoundError, ProtocolError
from repro.net import (
    FRONTEND_DIRECT,
    FRONTEND_HOTCALLS,
    FRONTEND_OCALL,
    NetworkedServer,
    Request,
    Response,
    SecureChannel,
    SimClient,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    make_secure_channels,
)


def suite_pair():
    a = make_suite("fast-hashlib", bytes(16), bytes(range(16)))
    b = make_suite("fast-hashlib", bytes(16), bytes(range(16)))
    return a, b


class TestCodec:
    def test_request_roundtrip(self):
        for op in ("get", "set", "append", "delete", "increment"):
            request = Request(op, b"the-key", b"the-value")
            assert decode_request(encode_request(request)) == request

    def test_response_roundtrip(self):
        response = Response(0, b"payload")
        assert decode_response(encode_response(response)) == response

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request(Request("explode", b"k"))

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"")
        with pytest.raises(ProtocolError):
            decode_request(bytes(9) + b"extra-that-does-not-match-lengths")
        with pytest.raises(ProtocolError):
            decode_response(b"")


class TestSecureChannel:
    def test_seal_open(self):
        sa, sb = suite_pair()
        client = SecureChannel(sa, "client")
        server = SecureChannel(sb, "server")
        sealed = client.seal(b"request-1")
        assert b"request-1" not in sealed
        assert server.open(sealed) == b"request-1"
        back = server.seal(b"response-1")
        assert client.open(back) == b"response-1"

    def test_replay_rejected(self):
        sa, sb = suite_pair()
        client, server = SecureChannel(sa, "client"), SecureChannel(sb, "server")
        sealed = client.seal(b"pay $10")
        server.open(sealed)
        with pytest.raises(ProtocolError):
            server.open(sealed)  # same sequence again

    def test_reorder_rejected(self):
        sa, sb = suite_pair()
        client, server = SecureChannel(sa, "client"), SecureChannel(sb, "server")
        first = client.seal(b"one")
        second = client.seal(b"two")
        with pytest.raises(ProtocolError):
            server.open(second)

    def test_tamper_rejected(self):
        sa, sb = suite_pair()
        client, server = SecureChannel(sa, "client"), SecureChannel(sb, "server")
        sealed = bytearray(client.seal(b"data"))
        sealed[10] ^= 1
        with pytest.raises(ProtocolError):
            server.open(bytes(sealed))

    def test_directions_use_distinct_keystreams(self):
        sa, sb = suite_pair()
        client, server = SecureChannel(sa, "client"), SecureChannel(sb, "server")
        c2s = client.seal(b"same-plaintext!!")
        s2c = server.seal(b"same-plaintext!!")
        assert c2s[8:-16] != s2c[8:-16]

    def test_unknown_role(self):
        sa, _ = suite_pair()
        with pytest.raises(ProtocolError):
            SecureChannel(sa, "eavesdropper")


class TestNetworkedServer:
    def make_server(self, frontend, secured=True):
        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        if secured:
            cch, sch = make_secure_channels(*suite_pair())
            server = NetworkedServer(
                store, frontend=frontend, server_channel=sch, client_channel=cch
            )
        else:
            server = NetworkedServer(store, frontend=frontend)
        return server

    @pytest.mark.parametrize("frontend", [FRONTEND_OCALL, FRONTEND_HOTCALLS])
    def test_full_op_surface(self, frontend):
        client = SimClient(self.make_server(frontend))
        client.set(b"k", b"v")
        assert client.get(b"k") == b"v"
        assert client.append(b"k", b"!") == b"v!"
        assert client.increment(b"n", 41) == 41
        assert client.increment(b"n") == 42
        client.delete(b"k")
        with pytest.raises(KeyNotFoundError):
            client.get(b"k")

    def test_direct_frontend_unsecured(self):
        client = SimClient(self.make_server(FRONTEND_DIRECT, secured=False))
        client.set(b"k", b"v")
        assert client.get(b"k") == b"v"

    def test_hotcalls_cheaper_than_ocalls(self):
        def cost(frontend):
            server = self.make_server(frontend)
            client = SimClient(server)
            client.set(b"k", b"v" * 64)
            server.machine.reset_measurement()
            for _ in range(50):
                client.get(b"k")
            return server.machine.elapsed_us()

        assert cost(FRONTEND_HOTCALLS) < cost(FRONTEND_OCALL)

    def test_secure_session_costs_more_than_plain(self):
        def cost(secured):
            server = self.make_server(FRONTEND_HOTCALLS, secured=secured)
            client = SimClient(server)
            client.set(b"k", b"v" * 64)
            server.machine.reset_measurement()
            for _ in range(50):
                client.get(b"k")
            return server.machine.elapsed_us()

        assert cost(True) > cost(False)

    def test_unknown_frontend(self):
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        with pytest.raises(ProtocolError):
            NetworkedServer(store, frontend="carrier-pigeon")
