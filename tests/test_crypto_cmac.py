"""AES-CMAC: RFC 4493 test vectors, subkeys, verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128
from repro.crypto.cmac import cmac, cmac_with_cipher, generate_subkeys, verify_cmac
from repro.errors import CryptoError

_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestRfc4493Vectors:
    def test_subkeys(self):
        k1, k2 = generate_subkeys(AES128(_KEY))
        assert k1.hex() == "fbeed618357133667c85e08f7236a8de"
        assert k2.hex() == "f7ddac306ae266ccf90bc11ee46d513b"

    def test_empty_message(self):
        assert cmac(_KEY, b"").hex() == "bb1d6929e95937287fa37d129b756746"

    def test_16_bytes(self):
        assert cmac(_KEY, _MSG[:16]).hex() == "070a16b46b4d4144f79bdd9dd04a287c"

    def test_40_bytes(self):
        assert cmac(_KEY, _MSG[:40]).hex() == "dfa66747de9ae63030ca32611497c827"

    def test_64_bytes(self):
        assert cmac(_KEY, _MSG).hex() == "51f0bebf7e3b9d92fc49741779363cfe"


class TestVerification:
    def test_verify_accepts_valid(self):
        tag = cmac(_KEY, b"hello world")
        assert verify_cmac(_KEY, b"hello world", tag)

    def test_verify_rejects_tampered_message(self):
        tag = cmac(_KEY, b"hello world")
        assert not verify_cmac(_KEY, b"hello w0rld", tag)

    def test_verify_rejects_tampered_tag(self):
        tag = bytearray(cmac(_KEY, b"hello"))
        tag[0] ^= 1
        assert not verify_cmac(_KEY, b"hello", bytes(tag))

    def test_verify_rejects_wrong_tag_size(self):
        with pytest.raises(CryptoError):
            verify_cmac(_KEY, b"hello", b"short")


class TestProperties:
    @given(key=st.binary(min_size=16, max_size=16), msg=st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, key, msg):
        assert cmac(key, msg) == cmac(key, msg)
        assert len(cmac(key, msg)) == 16

    @given(key=st.binary(min_size=16, max_size=16), msg=st.binary(min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_key_separation(self, key, msg):
        other = bytes([key[0] ^ 0xFF]) + key[1:]
        assert cmac(key, msg) != cmac(other, msg)

    @given(msg=st.binary(max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_cached_cipher_matches(self, msg):
        assert cmac_with_cipher(AES128(_KEY), msg) == cmac(_KEY, msg)

    @given(msg=st.binary(min_size=1, max_size=100), bit=st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_single_bit_flip_changes_tag(self, msg, bit):
        flipped = bytes([msg[0] ^ (1 << bit)]) + msg[1:]
        assert cmac(_KEY, msg) != cmac(_KEY, flipped)
