"""Multi-client session management."""

import pytest

from repro.errors import ProtocolError
from repro.net.sessions import SessionManager
from repro.sim import AttestationService, Enclave, Machine


@pytest.fixture
def manager():
    machine = Machine()
    enclave = Enclave(machine, bytes(range(32)))
    service = AttestationService(b"ias-secret-sessions")
    return SessionManager(enclave, service, idle_timeout_us=80_000.0), enclave


class TestSessions:
    def test_independent_sessions(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        sid_a, chan_a = mgr.open_session(ctx, bytes(range(32)))
        sid_b, chan_b = mgr.open_session(ctx, bytes(range(32, 64)))
        assert sid_a != sid_b
        sealed_a = chan_a.seal(b"from-a")
        sealed_b = chan_b.seal(b"from-b")
        assert mgr.open_record(ctx, sid_a, sealed_a) == b"from-a"
        assert mgr.open_record(ctx, sid_b, sealed_b) == b"from-b"

    def test_cross_session_records_rejected(self, manager):
        """A record sealed for session A cannot be laundered through B."""
        mgr, enclave = manager
        ctx = enclave.context()
        sid_a, chan_a = mgr.open_session(ctx, bytes(range(32)))
        sid_b, _chan_b = mgr.open_session(ctx, bytes(range(32, 64)))
        sealed = chan_a.seal(b"for-a-only")
        with pytest.raises(ProtocolError):
            mgr.open_record(ctx, sid_b, sealed)

    def test_response_path(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        sid, chan = mgr.open_session(ctx, bytes(range(32)))
        sealed_out = mgr.seal_record(ctx, sid, b"response")
        assert chan.open(sealed_out) == b"response"

    def test_unknown_session(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        with pytest.raises(ProtocolError):
            mgr.open_record(ctx, 999, b"x" * 32)

    def test_idle_expiry(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        sid, chan = mgr.open_session(ctx, bytes(range(32)))
        ctx.charge_us(100_000.0)  # advance simulated time past the timeout
        with pytest.raises(ProtocolError):
            mgr.open_record(ctx, sid, chan.seal(b"late"))
        assert mgr.expired_sessions == 1

    def test_active_session_survives(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        sid, chan = mgr.open_session(ctx, bytes(range(32)))
        for _ in range(5):
            ctx.charge_us(20_000.0)  # under the timeout between uses
            assert mgr.open_record(ctx, sid, chan.seal(b"ping")) == b"ping"

    def test_revocation(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        sid, chan = mgr.open_session(ctx, bytes(range(32)))
        mgr.revoke(sid)
        with pytest.raises(ProtocolError):
            mgr.open_record(ctx, sid, chan.seal(b"zombie"))
        assert mgr.revoked_sessions == 1

    def test_rekey_invalidates_old_keys(self, manager):
        mgr, enclave = manager
        ctx = enclave.context()
        sid, old_chan = mgr.open_session(ctx, bytes(range(32)))
        new_chan = mgr.rekey(ctx, sid, bytes(range(64, 96)))
        assert mgr.open_record(ctx, sid, new_chan.seal(b"fresh")) == b"fresh"
        with pytest.raises(ProtocolError):
            mgr.open_record(ctx, sid, old_chan.seal(b"stale-keys"))

    def test_capacity_evicts_oldest(self, manager):
        mgr, enclave = manager
        mgr.max_sessions = 3
        ctx = enclave.context()
        sids = []
        for i in range(4):
            ctx.charge_us(10.0)
            sid, _ = mgr.open_session(ctx, bytes(range(i, i + 32)))
            sids.append(sid)
        assert len(mgr) <= 3
        assert mgr.session_info(sids[0]) is None  # oldest evicted

    def test_many_concurrent_sessions(self, manager):
        """The paper drives 256 concurrent clients; sessions must not
        interfere at that count."""
        mgr, enclave = manager
        mgr.idle_timeout_us = 1e12
        ctx = enclave.context()
        channels = {}
        for i in range(256):
            sid, chan = mgr.open_session(ctx, i.to_bytes(4, "big") * 8)
            channels[sid] = chan
        for sid, chan in channels.items():
            payload = f"client-{sid}".encode()
            assert mgr.open_record(ctx, sid, chan.seal(payload)) == payload
