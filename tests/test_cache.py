"""In-enclave LRU cache (ShieldOpt+cache)."""

import pytest

from repro.core import EnclaveCache, ShieldStore, shield_opt
from repro.core.cache import clamp_touch_offset
from repro.sim import Enclave, Machine


@pytest.fixture
def enclave():
    return Enclave(Machine(), bytes(32))


@pytest.fixture
def ctx(enclave):
    return enclave.context()


@pytest.fixture
def cache(enclave):
    return EnclaveCache(enclave, capacity_bytes=1024)


class TestCacheSemantics:
    def test_miss_then_hit(self, cache, ctx):
        assert cache.lookup(ctx, b"k") is None
        cache.insert(ctx, b"k", b"v")
        assert cache.lookup(ctx, b"k") == b"v"

    def test_update_replaces(self, cache, ctx):
        cache.insert(ctx, b"k", b"v1")
        cache.insert(ctx, b"k", b"v2")
        assert cache.lookup(ctx, b"k") == b"v2"
        assert len(cache) == 1

    def test_invalidate(self, cache, ctx):
        cache.insert(ctx, b"k", b"v")
        cache.invalidate(b"k")
        assert cache.lookup(ctx, b"k") is None
        cache.invalidate(b"never-there")  # idempotent

    def test_byte_budget_evicts_lru(self, cache, ctx):
        for i in range(100):
            cache.insert(ctx, f"key-{i:03d}".encode(), b"x" * 32)
        assert cache.bytes_used <= cache.capacity_bytes
        assert cache.lookup(ctx, b"key-000") is None  # oldest gone
        assert cache.lookup(ctx, b"key-099") == b"x" * 32

    def test_lru_refresh_on_hit(self, cache, ctx):
        cache.insert(ctx, b"a", b"1" * 100)
        cache.insert(ctx, b"b", b"2" * 100)
        cache.lookup(ctx, b"a")  # refresh a
        for i in range(20):
            cache.insert(ctx, f"fill-{i}".encode(), b"z" * 100)
        # "a" was refreshed after "b", so "b" must be evicted first.
        order = [cache.lookup(ctx, b"a"), cache.lookup(ctx, b"b")]
        assert order[1] is None

    def test_oversized_value_not_cached(self, cache, ctx):
        cache.insert(ctx, b"big", b"x" * 4096)
        assert cache.lookup(ctx, b"big") is None

    def test_charges_cycles(self, cache, ctx):
        before = ctx.clock.cycles
        cache.insert(ctx, b"k", b"v" * 64)
        cache.lookup(ctx, b"k")
        assert ctx.clock.cycles > before

    def test_rejects_zero_capacity(self, enclave):
        with pytest.raises(ValueError):
            EnclaveCache(enclave, 0)


class _TouchRecorder:
    """Stub memory capturing the (addr, size) spans _touch charges."""

    def __init__(self):
        self.spans = []

    def touch(self, ctx, addr, size, write):
        self.spans.append((addr, size))


class TestTouchClamp:
    """Regression: the old clamp (`offset % max(1, cap - size - 1)`)
    misaddressed near-capacity entries and degenerated to offset 0 for
    every entry once ``size >= capacity_bytes - 1``."""

    def test_offset_preserved_when_span_fits(self):
        # Old code: 512 % (1024 - 512 - 1) == 1, collapsing distinct
        # entries onto nearly the same page.  The span fits as-is, so
        # the offset must be preserved.
        assert clamp_touch_offset(512, 512, 1024) == 512

    def test_tail_pinned_inside_capacity(self):
        assert clamp_touch_offset(1000, 100, 1024) == 924
        assert clamp_touch_offset(2048 + 7, 16, 1024) == 7  # wraps first

    def test_full_capacity_span_maps_to_zero(self):
        # Old code divided by max(1, -1) and lost the span entirely.
        assert clamp_touch_offset(300, 1024, 1024) == 0
        assert clamp_touch_offset(300, 1023, 1024) == 1

    def test_touch_spans_stay_inside_allocation(self, cache):
        recorder = _TouchRecorder()
        cache._memory = recorder
        for offset, size in [(0, 64), (512, 512), (1000, 100), (5000, 1024)]:
            cache._touch(None, offset, size, write=False)
        for addr, size in recorder.spans:
            assert addr >= cache.base
            assert addr + size <= cache.base + cache.capacity_bytes


class TestCachedStore:
    def test_hit_skips_untrusted_walk(self):
        store = ShieldStore(
            shield_opt(num_buckets=32, num_mac_hashes=16, cache_bytes=64 * 1024)
        )
        store.set(b"hot", b"value")
        store.get(b"hot")
        decrypts_before = store.machine.counters.decryptions
        store.get(b"hot")  # cache hit: no decryption
        assert store.machine.counters.decryptions == decrypts_before
        assert store.stats.cache_hits >= 1

    def test_hit_is_faster_than_uncached_get(self):
        def get_cost(cache_bytes):
            store = ShieldStore(
                shield_opt(
                    num_buckets=32, num_mac_hashes=16, cache_bytes=cache_bytes
                )
            )
            store.set(b"hot", b"value" * 20)
            store.get(b"hot")  # warm LLC/EPC either way
            store.machine.reset_measurement()
            store.get(b"hot")
            return store.machine.clock.elapsed_cycles()

        assert get_cost(64 * 1024) < get_cost(0) / 2

    def test_delete_invalidates(self):
        store = ShieldStore(
            shield_opt(num_buckets=32, num_mac_hashes=16, cache_bytes=64 * 1024)
        )
        store.set(b"k", b"v")
        store.get(b"k")
        store.delete(b"k")
        assert not store.contains(b"k")

    def test_set_refreshes_cache(self):
        store = ShieldStore(
            shield_opt(num_buckets=32, num_mac_hashes=16, cache_bytes=64 * 1024)
        )
        store.set(b"k", b"v1")
        store.get(b"k")
        store.set(b"k", b"v2")
        assert store.get(b"k") == b"v2"
