"""ShieldStore functional behaviour across configurations."""

import pytest

from repro.core import ShieldStore, StoreConfig, shield_base, shield_opt
from repro.errors import KeyNotFoundError, StoreError


def make_store(**overrides) -> ShieldStore:
    defaults = dict(num_buckets=64, num_mac_hashes=32)
    factory = overrides.pop("factory", shield_opt)
    return ShieldStore(factory(**{**defaults, **overrides}))


CONFIG_VARIANTS = {
    "opt": {},
    "base": {"factory": shield_base},
    "no-hints": {"key_hint_enabled": False, "two_step_search": False},
    "no-macbucket": {"mac_bucketing": False},
    "multi-bucket-sets": {"num_mac_hashes": 8},
    "ocall-alloc": {"use_extra_heap": False},
    "with-cache": {"cache_bytes": 64 * 1024},
    "reference-aes": {"suite_name": "aes-reference"},
}


@pytest.fixture(params=sorted(CONFIG_VARIANTS))
def store(request):
    return make_store(**CONFIG_VARIANTS[request.param])


class TestBasicOperations:
    def test_set_get(self, store):
        store.set(b"key", b"value")
        assert store.get(b"key") == b"value"

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get(b"missing")

    def test_overwrite_same_size(self, store):
        store.set(b"key", b"aaaa")
        store.set(b"key", b"bbbb")
        assert store.get(b"key") == b"bbbb"
        assert len(store) == 1

    def test_overwrite_different_size(self, store):
        store.set(b"key", b"short")
        store.set(b"key", b"much longer value than before")
        assert store.get(b"key") == b"much longer value than before"
        store.set(b"key", b"s")
        assert store.get(b"key") == b"s"
        assert len(store) == 1

    def test_delete(self, store):
        store.set(b"key", b"value")
        store.delete(b"key")
        assert not store.contains(b"key")
        with pytest.raises(KeyNotFoundError):
            store.delete(b"key")

    def test_delete_middle_of_chain(self, store):
        # Force collisions by inserting many keys into few buckets.
        keys = [f"k{i}".encode() for i in range(30)]
        for key in keys:
            store.set(key, b"v-" + key)
        store.delete(keys[13])
        for key in keys:
            if key == keys[13]:
                assert not store.contains(key)
            else:
                assert store.get(key) == b"v-" + key

    def test_append_existing(self, store):
        store.set(b"log", b"hello")
        assert store.append(b"log", b" world") == b"hello world"
        assert store.get(b"log") == b"hello world"

    def test_append_missing_creates(self, store):
        assert store.append(b"log", b"first") == b"first"
        assert store.get(b"log") == b"first"

    def test_increment(self, store):
        assert store.increment(b"ctr", 5) == 5
        assert store.increment(b"ctr", -2) == 3
        assert store.get(b"ctr") == b"3"

    def test_increment_non_integer_rejected(self, store):
        store.set(b"blob", b"not-a-number")
        with pytest.raises(StoreError):
            store.increment(b"blob")

    def test_empty_value(self, store):
        store.set(b"empty", b"")
        assert store.get(b"empty") == b""

    def test_binary_keys_and_values(self, store):
        key = bytes(range(32))
        value = bytes(reversed(range(256)))
        store.set(key, value)
        assert store.get(key) == value

    def test_len_tracks_population(self, store):
        for i in range(20):
            store.set(f"k{i}".encode(), b"v")
        assert len(store) == 20
        store.delete(b"k7")
        assert len(store) == 19

    def test_iter_items(self, store):
        expected = {}
        for i in range(25):
            key, value = f"k{i}".encode(), f"v{i}".encode()
            store.set(key, value)
            expected[key] = value
        assert dict(store.iter_items()) == expected


class TestChainBehaviour:
    def test_many_collisions(self):
        store = ShieldStore(shield_opt(num_buckets=2, num_mac_hashes=1))
        for i in range(40):
            store.set(f"key-{i}".encode(), f"value-{i}".encode() * 3)
        for i in range(40):
            assert store.get(f"key-{i}".encode()) == f"value-{i}".encode() * 3

    def test_update_in_long_chain(self):
        store = ShieldStore(shield_opt(num_buckets=2, num_mac_hashes=2))
        for i in range(20):
            store.set(f"key-{i}".encode(), b"old")
        store.set(b"key-10", b"new")
        assert store.get(b"key-10") == b"new"
        assert store.get(b"key-0") == b"old"

    def test_hint_skips_counted(self):
        store = make_store()
        for i in range(50):
            store.set(f"key-{i}".encode(), b"v")
        store.stats.hint_skips = 0
        for i in range(50):
            store.get(f"key-{i}".encode())
        # With 64 buckets and 50 keys some chains collide; most collisions
        # should be skipped by hint, not decrypted.
        assert store.stats.hint_skips > 0


class TestConfigValidation:
    def test_more_hashes_than_buckets_rejected(self):
        with pytest.raises(ValueError):
            StoreConfig(num_buckets=4, num_mac_hashes=8)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            StoreConfig(num_buckets=0, num_mac_hashes=0)
        with pytest.raises(ValueError):
            StoreConfig(num_buckets=4, num_mac_hashes=2, mac_bucket_capacity=0)
        with pytest.raises(ValueError):
            StoreConfig(num_buckets=4, num_mac_hashes=2, heap_chunk_bytes=128)

    def test_with_updates(self):
        config = shield_opt(64, 32)
        assert config.with_(cache_bytes=1024).cache_bytes == 1024
        assert config.cache_bytes == 0  # original untouched

    def test_variant_factories(self):
        base = shield_base(64, 32)
        assert not base.key_hint_enabled
        assert not base.mac_bucketing
        assert not base.use_extra_heap
        opt = shield_opt(64, 32)
        assert opt.key_hint_enabled and opt.mac_bucketing and opt.use_extra_heap


class TestDeterminism:
    def test_same_seed_same_simulated_time(self):
        def run():
            store = make_store()
            for i in range(30):
                store.set(f"k{i}".encode(), f"v{i}".encode())
            for i in range(30):
                store.get(f"k{i}".encode())
            return store.machine.clock.elapsed_cycles()

        assert run() == run()
