"""Regression tests for the real violations shieldlint surfaced.

Three classes of fix are locked in here:

* **error redaction** — exception messages built inside the enclave
  carry :meth:`KeyRing.redact` tags, never raw client keys (messages
  cross the worker pipe and may reach host logs);
* **verified iteration** — ``iter_items`` MAC-verifies every bucket
  chain against the authenticated set hashes before yielding plaintext
  (it used to decrypt unverified);
* **sealed worker pipes** — parent↔worker IPC frames are sealed with a
  per-worker channel, so client keys and values never cross the host
  kernel in the clear, and per-worker mutation counters are maintained
  under the worker lock.
"""

import pytest

from repro.core import ShieldStore, process_mode_supported, shield_opt
from repro.core.procpool import ProcessPartitionPool
from repro.crypto.keys import KeyRing
from repro.errors import IntegrityError, ReplayError, StoreError
from repro.net.message import STATUS_OK, Request
from repro.sim import Attacker

SECRET = bytes(range(32))

needs_processes = pytest.mark.skipif(
    not process_mode_supported(),
    reason="platform cannot run the multiprocess engine",
)


def _entry_addr(store: ShieldStore, key: bytes) -> int:
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    return int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
        "little",
    )


class TestKeyRedaction:
    def test_redact_is_deterministic(self):
        ring = KeyRing(SECRET)
        assert ring.redact(b"user:alice") == ring.redact(b"user:alice")

    def test_redact_never_contains_key_bytes(self):
        ring = KeyRing(SECRET)
        key = b"super-secret-client-key"
        tag = ring.redact(key)
        assert key.decode() not in tag
        assert key.hex() not in tag
        assert tag.startswith("<key:") and tag.endswith(">")

    def test_redact_distinguishes_keys(self):
        ring = KeyRing(SECRET)
        assert ring.redact(b"key-a") != ring.redact(b"key-b")

    def test_redact_is_deployment_specific(self):
        """Tags are keyed (hint key), so logs from different deployments
        cannot be joined on redacted key identity."""
        a = KeyRing(SECRET)
        b = KeyRing(bytes(range(1, 33)))
        assert a.redact(b"key") != b.redact(b"key")


class TestErrorMessageRedaction:
    def test_increment_error_redacts_the_key(self):
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        store.set(b"visit-counter", b"not-a-number")
        with pytest.raises(StoreError) as exc_info:
            store.increment(b"visit-counter")
        message = str(exc_info.value)
        assert "visit-counter" not in message
        assert store.keyring.redact(b"visit-counter") in message

    def test_integrity_error_redacts_the_key(self):
        import re

        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        for i in range(40):
            store.set(f"key-{i:02d}".encode(), f"value-{i}".encode())
        # Flip a ciphertext bit just past the 25-byte entry header.
        Attacker(store.machine.memory).flip_bit(
            _entry_addr(store, b"key-33") + 26, 1
        )
        with pytest.raises((IntegrityError, ReplayError)) as exc_info:
            for i in range(40):
                store.get(f"key-{i:02d}".encode())
        assert not re.search(r"key-\d", str(exc_info.value))


@pytest.fixture(params=["macbucket", "chained"])
def iter_store(request):
    config = shield_opt(num_buckets=16, num_mac_hashes=8)
    if request.param == "chained":
        config = config.with_(mac_bucketing=False)
    store = ShieldStore(config)
    for i in range(80):
        store.set(f"key-{i:02d}".encode(), f"value-{i}".encode())
    return store


class TestIterItemsVerification:
    def test_clean_store_yields_everything(self, iter_store):
        items = dict(iter_store.iter_items())
        assert len(items) == 80
        assert items[b"key-07"] == b"value-7"

    def test_tampered_entry_stops_iteration(self, iter_store):
        Attacker(iter_store.machine.memory).flip_bit(
            _entry_addr(iter_store, b"key-33") + 40, 3
        )
        with pytest.raises((IntegrityError, ReplayError)):
            list(iter_store.iter_items())

    def test_truncated_chain_detected(self, iter_store):
        import struct

        attacker = Attacker(iter_store.machine.memory)
        for bucket in range(iter_store.config.num_buckets):
            head = int.from_bytes(
                iter_store.machine.memory.raw_read(
                    iter_store.buckets.slot_addr(bucket), 8
                ),
                "little",
            )
            if head:
                attacker.write(head, struct.pack("<Q", 0))
                break
        with pytest.raises((IntegrityError, ReplayError)):
            list(iter_store.iter_items())


class _SpyConn:
    """Wraps one parent-side pipe end, recording every raw frame."""

    def __init__(self, inner, frames):
        self._inner = inner
        self._frames = frames

    def send_bytes(self, data):
        self._frames.append(bytes(data))
        return self._inner.send_bytes(data)

    def recv_bytes(self):
        data = self._inner.recv_bytes()
        self._frames.append(bytes(data))
        return data

    def __getattr__(self, name):
        return getattr(self._inner, name)


@needs_processes
class TestSealedWorkerPipes:
    MARKER_KEY = b"spy-target-key"
    MARKER_VALUE = b"PLAINTEXT-MARKER-7f3a9c"

    def test_no_plaintext_crosses_the_pipe(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET
        )
        frames = []
        try:
            for handle in pool.workers:
                handle.conn = _SpyConn(handle.conn, frames)
            assert (
                pool.execute(
                    0, Request("set", self.MARKER_KEY, self.MARKER_VALUE)
                ).status
                == STATUS_OK
            )
            response = pool.execute(0, Request("get", self.MARKER_KEY))
            assert response.status == STATUS_OK
            assert response.value == self.MARKER_VALUE
        finally:
            pool.close()
        assert frames, "spy saw no traffic"
        blob = b"".join(frames)
        assert self.MARKER_VALUE not in blob
        assert self.MARKER_KEY not in blob

    def test_mutation_counters_track_and_reset(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET
        )
        try:
            pool.execute(0, Request("set", b"a", b"1"))
            pool.execute(0, Request("set", b"b", b"2"))
            pool.execute(1, Request("get", b"a"))
            assert pool.workers[0].ops_since_snapshot == 2
            assert pool.workers[1].ops_since_snapshot == 0
            pool.snapshot_all(counter=1)
            assert all(
                handle.ops_since_snapshot == 0 for handle in pool.workers
            )
        finally:
            pool.close()
