"""Regression tests for the real violations shieldlint surfaced.

Three classes of fix are locked in here:

* **error redaction** — exception messages built inside the enclave
  carry :meth:`KeyRing.redact` tags, never raw client keys (messages
  cross the worker pipe and may reach host logs);
* **verified iteration** — ``iter_items`` MAC-verifies every bucket
  chain against the authenticated set hashes before yielding plaintext
  (it used to decrypt unverified);
* **sealed worker pipes** — parent↔worker IPC frames are sealed with a
  per-worker channel, so client keys and values never cross the host
  kernel in the clear, and per-worker mutation counters are maintained
  under the worker lock;
* **per-incarnation pipe keys** — every (re)spawn derives the pipe
  session keys from a fresh public nonce, so a host that kills a worker
  to force a respawn cannot replay records recorded from the previous
  incarnation into the new session (which restarts its sequence
  counters, i.e. would otherwise reuse (key, IV) pairs);
* **sealed shutdown** — ``close()`` sends ``OP_SHUTDOWN`` through the
  session channel like every other frame, so workers exit via the
  graceful acknowledged branch, not the tampered-frame break;
* **checkpoint/counter atomicity** — ``snapshot_all``/``restore_all``
  install the recovery checkpoint *inside* the scatter's locked region,
  before the per-worker mutation counters reset, so a crash right after
  a snapshot can never pair the old checkpoint with zeroed counters and
  undercount ``ops_lost``.
"""

import pytest

import repro.core.procpool as procpool
from repro.core import ShieldStore, process_mode_supported, shield_opt
from repro.core.procpool import (
    OP_SHUTDOWN,
    REPLY_OK,
    ProcessPartitionPool,
    _pipe_channel,
)
from repro.crypto.keys import KeyRing
from repro.errors import (
    IntegrityError,
    ProtocolError,
    ReplayError,
    StoreError,
    WorkerError,
)
from repro.net.message import STATUS_OK, Request
from repro.sim import Attacker

SECRET = bytes(range(32))

needs_processes = pytest.mark.skipif(
    not process_mode_supported(),
    reason="platform cannot run the multiprocess engine",
)


def _entry_addr(store: ShieldStore, key: bytes) -> int:
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    return int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
        "little",
    )


class TestKeyRedaction:
    def test_redact_is_deterministic(self):
        ring = KeyRing(SECRET)
        assert ring.redact(b"user:alice") == ring.redact(b"user:alice")

    def test_redact_never_contains_key_bytes(self):
        ring = KeyRing(SECRET)
        key = b"super-secret-client-key"
        tag = ring.redact(key)
        assert key.decode() not in tag
        assert key.hex() not in tag
        assert tag.startswith("<key:") and tag.endswith(">")

    def test_redact_distinguishes_keys(self):
        ring = KeyRing(SECRET)
        assert ring.redact(b"key-a") != ring.redact(b"key-b")

    def test_redact_is_deployment_specific(self):
        """Tags are keyed (hint key), so logs from different deployments
        cannot be joined on redacted key identity."""
        a = KeyRing(SECRET)
        b = KeyRing(bytes(range(1, 33)))
        assert a.redact(b"key") != b.redact(b"key")


class TestErrorMessageRedaction:
    def test_increment_error_redacts_the_key(self):
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        store.set(b"visit-counter", b"not-a-number")
        with pytest.raises(StoreError) as exc_info:
            store.increment(b"visit-counter")
        message = str(exc_info.value)
        assert "visit-counter" not in message
        assert store.keyring.redact(b"visit-counter") in message

    def test_integrity_error_redacts_the_key(self):
        import re

        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        for i in range(40):
            store.set(f"key-{i:02d}".encode(), f"value-{i}".encode())
        # Flip a ciphertext bit just past the 25-byte entry header.
        Attacker(store.machine.memory).flip_bit(
            _entry_addr(store, b"key-33") + 26, 1
        )
        with pytest.raises((IntegrityError, ReplayError)) as exc_info:
            for i in range(40):
                store.get(f"key-{i:02d}".encode())
        assert not re.search(r"key-\d", str(exc_info.value))


@pytest.fixture(params=["macbucket", "chained"])
def iter_store(request):
    config = shield_opt(num_buckets=16, num_mac_hashes=8)
    if request.param == "chained":
        config = config.with_(mac_bucketing=False)
    store = ShieldStore(config)
    for i in range(80):
        store.set(f"key-{i:02d}".encode(), f"value-{i}".encode())
    return store


class TestIterItemsVerification:
    def test_clean_store_yields_everything(self, iter_store):
        items = dict(iter_store.iter_items())
        assert len(items) == 80
        assert items[b"key-07"] == b"value-7"

    def test_tampered_entry_stops_iteration(self, iter_store):
        Attacker(iter_store.machine.memory).flip_bit(
            _entry_addr(iter_store, b"key-33") + 40, 3
        )
        with pytest.raises((IntegrityError, ReplayError)):
            list(iter_store.iter_items())

    def test_truncated_chain_detected(self, iter_store):
        import struct

        attacker = Attacker(iter_store.machine.memory)
        for bucket in range(iter_store.config.num_buckets):
            head = int.from_bytes(
                iter_store.machine.memory.raw_read(
                    iter_store.buckets.slot_addr(bucket), 8
                ),
                "little",
            )
            if head:
                attacker.write(head, struct.pack("<Q", 0))
                break
        with pytest.raises((IntegrityError, ReplayError)):
            list(iter_store.iter_items())


class _SpyConn:
    """Wraps one parent-side pipe end, recording every raw frame."""

    def __init__(self, inner, frames):
        self._inner = inner
        self._frames = frames

    def send_bytes(self, data):
        self._frames.append(bytes(data))
        return self._inner.send_bytes(data)

    def recv_bytes(self):
        data = self._inner.recv_bytes()
        self._frames.append(bytes(data))
        return data

    def __getattr__(self, name):
        return getattr(self._inner, name)


@needs_processes
class TestSealedWorkerPipes:
    MARKER_KEY = b"spy-target-key"
    MARKER_VALUE = b"PLAINTEXT-MARKER-7f3a9c"

    def test_no_plaintext_crosses_the_pipe(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET,
            data_plane="pipe",
        )
        frames = []
        try:
            for handle in pool.workers:
                handle.conn = _SpyConn(handle.conn, frames)
            assert (
                pool.execute(
                    0, Request("set", self.MARKER_KEY, self.MARKER_VALUE)
                ).status
                == STATUS_OK
            )
            response = pool.execute(0, Request("get", self.MARKER_KEY))
            assert response.status == STATUS_OK
            assert response.value == self.MARKER_VALUE
        finally:
            pool.close()
        assert frames, "spy saw no traffic"
        blob = b"".join(frames)
        assert self.MARKER_VALUE not in blob
        assert self.MARKER_KEY not in blob

    def test_mutation_counters_track_and_reset(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET
        )
        try:
            pool.execute(0, Request("set", b"a", b"1"))
            pool.execute(0, Request("set", b"b", b"2"))
            pool.execute(1, Request("get", b"a"))
            assert pool.workers[0].ops_since_snapshot == 2
            assert pool.workers[1].ops_since_snapshot == 0
            pool.snapshot_all(counter=1)
            assert all(
                handle.ops_since_snapshot == 0 for handle in pool.workers
            )
        finally:
            pool.close()


class TestPerIncarnationPipeKeys:
    """A respawned worker's pipe session must not share keys with its
    dead predecessor: the host can kill a worker to force a respawn
    (which restarts the sequence counters at zero), so static keys
    would let it replay the previous incarnation's recorded records —
    and reuse (key, IV) pairs across different plaintexts."""

    def test_channels_from_different_nonces_reject_each_other(self):
        suite = shield_opt(num_buckets=32, num_mac_hashes=8).suite_name
        nonce_a, nonce_b = b"A" * 16, b"B" * 16
        sealed = _pipe_channel(SECRET, 0, nonce_a, "client", suite).seal(
            b"recorded-from-incarnation-a"
        )
        with pytest.raises(ProtocolError):
            _pipe_channel(SECRET, 0, nonce_b, "server", suite).open(sealed)
        # Sanity: the same nonce still yields a working channel pair.
        assert _pipe_channel(SECRET, 0, nonce_a, "server", suite).open(
            sealed
        ) == b"recorded-from-incarnation-a"

    @needs_processes
    def test_respawned_worker_rejects_old_incarnation_records(
        self, monkeypatch
    ):
        config = shield_opt(num_buckets=32, num_mac_hashes=8)
        nonces = []
        real_nonce = procpool._fresh_nonce

        def recording_nonce():
            nonces.append(real_nonce())
            return nonces[-1]

        monkeypatch.setattr(procpool, "_fresh_nonce", recording_nonce)
        pool = ProcessPartitionPool(config, 1, SECRET, data_plane="pipe")
        try:
            # The attacker's tape: every record incarnation A's parent
            # could have produced, regenerated from a replica channel
            # (same master secret, same spawn nonce → same key stream).
            replica = _pipe_channel(
                SECRET, 0, nonces[0], "client", config.suite_name
            )
            tape = [
                replica.seal(bytes([procpool.OP_PING])) for _ in range(4)
            ]
            # Host kills the worker; the pool respawns it in place.
            pool.workers[0].process.terminate()
            with pytest.raises(WorkerError):
                pool.execute(0, Request("get", b"x"))
            assert len(nonces) == 2 and nonces[0] != nonces[1]
            # Replay A's seq-1 record — the sequence number the new
            # session expects next (its own seq 0 was the recovery
            # PING).  With static per-index keys this would
            # authenticate; with per-incarnation keys the worker must
            # drop the stream without replying.
            handle = pool.workers[0]
            with handle.lock:
                handle.conn.send_bytes(tape[1])
                handle.process.join(timeout=10)
                assert not handle.process.is_alive()
                with pytest.raises(EOFError):
                    handle.conn.recv_bytes()
        finally:
            pool.close()


@needs_processes
class TestSealedShutdown:
    def test_worker_acks_sealed_shutdown_and_exits_cleanly(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 1, SECRET,
            data_plane="pipe",
        )
        try:
            handle = pool.workers[0]
            with handle.lock:
                handle.conn.send_bytes(
                    handle.channel.seal(bytes([OP_SHUTDOWN]))
                )
                ack = handle.channel.open(handle.conn.recv_bytes())
            assert ack == bytes([REPLY_OK])
            handle.process.join(timeout=10)
            assert handle.process.exitcode == 0
        finally:
            pool.close()

    def test_close_sends_sealed_shutdown_frames(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET,
            data_plane="pipe",
        )
        frames = []
        processes = [handle.process for handle in pool.workers]
        for handle in pool.workers:
            handle.conn = _SpyConn(handle.conn, frames)
        pool.close()
        assert [p.exitcode for p in processes] == [0, 0]
        shutdown_frames = frames[-2:]
        assert len(shutdown_frames) == 2
        for frame in shutdown_frames:
            # Sealed records, never the raw opcode byte the worker
            # would reject as a tampered frame.
            assert frame != bytes([OP_SHUTDOWN])
            assert len(frame) > 1


@needs_processes
class TestCheckpointCounterAtomicity:
    def test_checkpoint_installed_before_counters_reset(self):
        """The recovery checkpoint and the mutation counters must change
        as one atom: installing the new sections after the counters were
        already zeroed (or vice versa) lets a crash in the window pair
        the old checkpoint with zeroed counters, undercounting the
        documented ``ops_lost`` bound."""
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET
        )
        try:
            pool.execute(0, Request("set", b"a", b"1"))
            pool.execute(1, Request("set", b"b", b"2"))
            observed = {}
            real_install = pool._install_checkpoint

            def spying_install(sections, counter):
                observed["counters_at_install"] = [
                    handle.ops_since_snapshot for handle in pool.workers
                ]
                observed["counter"] = counter
                real_install(sections, counter)

            pool._install_checkpoint = spying_install
            pool.snapshot_all(counter=7)
            # Install ran with the pre-reset counters still in place
            # (i.e. before the loss-bound was zeroed)...
            assert observed["counter"] == 7
            assert observed["counters_at_install"] == [1, 1]
            # ...and by the time snapshot_all returned, checkpoint and
            # counters had moved together.
            assert pool._snapshot_counter == 7
            assert set(pool._snapshot_sections) == {0, 1}
            assert all(
                handle.ops_since_snapshot == 0 for handle in pool.workers
            )
        finally:
            pool.close()

    def test_failed_snapshot_keeps_old_checkpoint_and_counters(self):
        """A scatter that fails must leave both halves untouched: the
        previous checkpoint stays installed and the loss-bound counters
        keep counting from it."""
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8), 2, SECRET
        )
        try:
            pool.execute(0, Request("set", b"a", b"1"))
            pool.snapshot_all(counter=1)
            pool.execute(0, Request("set", b"c", b"3"))
            pool.workers[1].process.terminate()
            with pytest.raises(WorkerError):
                pool.snapshot_all(counter=2)
            assert pool._snapshot_counter == 1
            assert pool.workers[0].ops_since_snapshot == 1
        finally:
            pool.close()
