"""Enclave-resident verified-MAC cache: speed without losing detection.

The cache (repro.core.maccache) replaces the §4.3 gather + keyed-hash
recompute with an O(1) comparison against an enclave copy.  These tests
prove the three properties that make that sound:

* every attack the full verification catches is still caught, on both
  the cache-hit and the cache-miss path;
* every mutation path write-throughs the cached lists (coherence), and
  snapshot restore flushes them;
* the byte budget is enforced by LRU eviction without hurting
  correctness.
"""

import pytest

from repro.core import (
    MacSetCache,
    PartitionedShieldStore,
    ShieldStore,
    Snapshotter,
    shield_opt,
)
from repro.core.entry import HEADER_SIZE, MAC_SIZE, unpack_header
from repro.errors import IntegrityError, KeyNotFoundError, ReplayError
from repro.sim import (
    Attacker,
    Enclave,
    Machine,
    MonotonicCounterService,
    SealingService,
)

# A replay against a cache hit is caught by the cached-MAC comparison
# (IntegrityError); against a miss, by the set hash (ReplayError).
DETECTED = (IntegrityError, ReplayError)

CACHE_KB = 64 * 1024


def cached_store(**overrides):
    params = dict(num_buckets=16, num_mac_hashes=8, mac_cache_bytes=CACHE_KB)
    params.update(overrides)
    return ShieldStore(shield_opt(**params))


def entry_addr(store, key: bytes) -> int:
    """Locate a key's entry record by walking raw chains."""
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    mem = store.machine.memory
    addr = int.from_bytes(mem.raw_read(store.buckets.slot_addr(bucket), 8), "little")
    while addr:
        header = unpack_header(mem.raw_read(addr, HEADER_SIZE))
        enc_kv = mem.raw_read(addr + HEADER_SIZE, header.kv_size)
        plain = store.suite.decrypt(header.iv_ctr, enc_kv)
        if plain[: header.key_size] == key:
            return addr
        addr = header.next_ptr
    raise AssertionError(f"{key!r} not found in raw chains")


def replay_stale_version(store, attacker, key=b"victim"):
    """§3.3 replay: record entry (and MAC-bucket) state, mutate, restore."""
    store.set(key, b"version-ONE")
    addr = entry_addr(store, key)
    size = HEADER_SIZE + len(key) + 11 + MAC_SIZE
    recorded_entry = attacker.snapshot(addr, size)
    recorded_macb = None
    if store.macbuckets is not None:
        bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
        mac_ptr = int.from_bytes(
            store.machine.memory.raw_read(store.buckets.slot_addr(bucket) + 8, 8),
            "little",
        )
        recorded_macb = attacker.snapshot(mac_ptr, store.macbuckets.node_size)
    store.set(key, b"version-TWO")
    attacker.replay(recorded_entry)
    if recorded_macb is not None:
        attacker.replay(recorded_macb)


@pytest.fixture
def enclave():
    return Enclave(Machine(), bytes(32))


@pytest.fixture
def ctx(enclave):
    return enclave.context()


def mac_lists(buckets=2, per_bucket=3, tag=0):
    return {
        b: [bytes([tag, b, i]) + bytes(13) for i in range(per_bucket)]
        for b in range(buckets)
    }


class TestMacSetCacheSemantics:
    def test_rejects_nonpositive_capacity(self, enclave):
        with pytest.raises(ValueError):
            MacSetCache(enclave, 0)

    def test_miss_then_hit_same_object(self, enclave, ctx):
        cache = MacSetCache(enclave, 4096)
        assert cache.lookup(ctx, 7) is None
        lists = mac_lists()
        cache.store(ctx, 7, lists)
        # The *same object* comes back: in-place mutation by the store's
        # write-through keeps the cached copy coherent.
        assert cache.lookup(ctx, 7) is lists

    def test_restore_reaccounts_cost(self, enclave, ctx):
        cache = MacSetCache(enclave, 4096)
        lists = mac_lists(per_bucket=2)
        cache.store(ctx, 1, lists)
        before = cache.bytes_used
        lists[0].append(bytes(16))  # set grew by one MAC
        cache.store(ctx, 1, lists)
        assert cache.bytes_used == before + MAC_SIZE
        assert len(cache) == 1

    def test_budget_evicts_lru_and_counts(self, enclave, ctx):
        cost = MacSetCache._set_cost_bytes(mac_lists())
        cache = MacSetCache(enclave, capacity_bytes=3 * cost)
        for set_id in range(5):
            cache.store(ctx, set_id, mac_lists(tag=set_id))
        assert cache.bytes_used <= cache.capacity_bytes
        assert cache.evictions == 2
        assert cache.lookup(ctx, 0) is None  # oldest gone
        assert cache.lookup(ctx, 4) is not None

    def test_oversized_set_drops_stale_copy(self, enclave, ctx):
        small = mac_lists(per_bucket=1)
        cache = MacSetCache(
            enclave, capacity_bytes=MacSetCache._set_cost_bytes(small) + 8
        )
        cache.store(ctx, 3, small)
        assert cache.lookup(ctx, 3) is small
        grown = mac_lists(per_bucket=40)
        cache.store(ctx, 3, grown)
        # Too large to cache — but the stale small copy must be gone,
        # or a later hit would verify against pre-growth state.
        assert cache.lookup(ctx, 3) is None
        assert cache.bytes_used == 0

    def test_invalidate_and_clear(self, enclave, ctx):
        cache = MacSetCache(enclave, 4096)
        cache.store(ctx, 1, mac_lists())
        cache.store(ctx, 2, mac_lists(tag=1))
        cache.invalidate(1)
        assert cache.lookup(ctx, 1) is None
        assert cache.lookup(ctx, 2) is not None
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_used == 0

    def test_charges_cycles(self, enclave, ctx):
        cache = MacSetCache(enclave, 4096)
        before = ctx.clock.cycles
        cache.store(ctx, 1, mac_lists())
        cache.lookup(ctx, 1)
        assert ctx.clock.cycles > before


@pytest.fixture(params=["macbucket", "chained"])
def store(request):
    config = shield_opt(num_buckets=16, num_mac_hashes=8, mac_cache_bytes=CACHE_KB)
    if request.param == "chained":
        config = config.with_(mac_bucketing=False)
    return ShieldStore(config)


@pytest.fixture
def attacker(store):
    return Attacker(store.machine.memory)


class TestDetectionWithCacheOn:
    """The full §3.3 attack matrix must be caught on hit AND miss paths."""

    def test_replay_detected_on_hit_path(self, store, attacker):
        replay_stale_version(store, attacker)
        assert len(store.maccache) > 0  # the covering set is cached
        with pytest.raises(DETECTED):
            store.get(b"victim")

    def test_replay_detected_on_miss_path(self, store, attacker):
        replay_stale_version(store, attacker)
        store.maccache.clear()  # force the full §4.3 fallback
        misses = store.stats.mac_cache_misses
        with pytest.raises(DETECTED):
            store.get(b"victim")
        assert store.stats.mac_cache_misses == misses + 1

    def test_tamper_detected_on_hit_path(self, store, attacker):
        store.set(b"victim", b"original-value")
        store.get(b"victim")  # ensure the set is cached and hot
        attacker.flip_bit(entry_addr(store, b"victim") + HEADER_SIZE + 3, 5)
        hits = store.stats.mac_cache_hits
        with pytest.raises(DETECTED):
            store.get(b"victim")
        assert store.stats.mac_cache_hits == hits + 1

    def test_tamper_detected_on_miss_path(self, store, attacker):
        store.set(b"victim", b"original-value")
        attacker.flip_bit(entry_addr(store, b"victim") + HEADER_SIZE + 3, 5)
        store.maccache.clear()
        with pytest.raises(DETECTED):
            store.get(b"victim")

    def test_mac_tamper_detected_on_hit_path(self, store, attacker):
        """Corrupting the untrusted stored MAC cannot fool a cache hit:
        the enclave copy, not the stored copy, is what's compared."""
        store.set(b"victim", b"original-value")
        addr = entry_addr(store, b"victim")
        attacker.flip_bit(addr + HEADER_SIZE + 6 + 14 + 2, 1)
        if store.macbuckets is not None:
            bucket = store.keyring.keyed_bucket_hash(
                b"victim", store.config.num_buckets
            )
            mac_ptr = int.from_bytes(
                store.machine.memory.raw_read(
                    store.buckets.slot_addr(bucket) + 8, 8
                ),
                "little",
            )
            from repro.core.macbucket import NODE_HEADER

            attacker.flip_bit(mac_ptr + NODE_HEADER + 2, 1)
        # Entry ciphertext is intact and its recomputed MAC matches the
        # *cached* trusted MAC, so the read legitimately succeeds — the
        # stored MACs are untrusted transport, not ground truth.
        assert store.get(b"victim") == b"original-value"
        # The corruption surfaces the moment trust must be re-derived
        # from untrusted memory (miss path).
        store.maccache.clear()
        with pytest.raises(DETECTED):
            store.get(b"victim")


class TestCoherence:
    """Every mutation path write-throughs the cache; reads after any
    mutation verify (hit path) and return the fresh value."""

    def test_update_then_hot_read(self, store):
        store.set(b"k", b"v1")
        store.set(b"k", b"v2")
        hits = store.stats.mac_cache_hits
        assert store.get(b"k") == b"v2"
        assert store.stats.mac_cache_hits == hits + 1

    def test_insert_neighbors_then_read_all(self, store):
        keys = [f"key-{i:03d}".encode() for i in range(48)]
        for key in keys:
            store.set(key, b"val-" + key)
        for key in keys:
            assert store.get(key) == b"val-" + key

    def test_delete_then_neighbors_still_verify(self, store):
        keys = [f"key-{i:03d}".encode() for i in range(32)]
        for key in keys:
            store.set(key, b"v")
        for key in keys[::2]:
            store.delete(key)
        for key in keys[::2]:
            with pytest.raises(KeyNotFoundError):
                store.get(key)
        for key in keys[1::2]:
            assert store.get(key) == b"v"

    def test_append_cas_increment_then_hot_read(self, store):
        store.set(b"a", b"head")
        store.append(b"a", b"+tail")
        assert store.get(b"a") == b"head+tail"
        store.set(b"n", b"5")
        store.increment(b"n", 3)
        assert store.get(b"n") == b"8"
        store.set(b"c", b"old")
        assert store.compare_and_swap(b"c", b"old", b"new")
        assert store.get(b"c") == b"new"
        assert store.stats.mac_cache_hits > 0

    def test_batched_ops_coherent_and_hit(self, store):
        keys = [f"key-{i:03d}".encode() for i in range(64)]
        store.multi_set([(k, b"v0-" + k) for k in keys])
        reads = store.multi_get(keys)
        assert reads == {k: b"v0-" + k for k in keys}
        # Batched point reads run against the cache: every op verifies
        # via the enclave copy.
        assert store.stats.mac_cache_hits >= len(keys)
        store.multi_set([(k, b"v1-" + k) for k in keys])
        assert store.multi_get(keys) == {k: b"v1-" + k for k in keys}
        store.multi_delete(keys[:10])
        assert store.multi_get(keys[:10]) == {k: None for k in keys[:10]}

    def test_snapshot_restore_flushes_cache(self):
        sealing = SealingService(b"platform-secret-1")
        snapshotter = Snapshotter(sealing, MonotonicCounterService())
        source = cached_store(num_buckets=32, num_mac_hashes=16)
        for i in range(40):
            source.set(f"key-{i}".encode(), f"value-{i}".encode())
        blob = snapshotter.snapshot_bytes(source.enclave.context(), source)
        restored = cached_store(num_buckets=32, num_mac_hashes=16)
        restored.set(b"pre-restore", b"x")
        restored.delete(b"pre-restore")
        assert len(restored.maccache) > 0  # holds soon-stale sets
        snapshotter.restore(restored.enclave.context(), blob, restored)
        # Restore replaced untrusted memory wholesale: both enclave
        # caches must have been flushed, or hits would compare against
        # pre-restore MACs.
        assert len(restored.maccache) == 0
        assert len(restored.cache) == 0 if restored.cache else True
        for i in range(40):
            assert restored.get(f"key-{i}".encode()) == f"value-{i}".encode()


class TestBudgetAndStats:
    def test_eviction_at_budget_preserves_correctness(self):
        store = cached_store(
            num_buckets=64, num_mac_hashes=64, mac_cache_bytes=512
        )
        keys = [f"key-{i:04d}".encode() for i in range(128)]
        for key in keys:
            store.set(key, b"val-" + key)
        assert store.stats.mac_cache_evictions > 0
        assert store.maccache.bytes_used <= store.maccache.capacity_bytes
        for key in keys:
            assert store.get(key) == b"val-" + key
        assert store.stats.mac_cache_misses > 0  # evicted sets re-verify

    def test_hit_skips_set_verification_work(self):
        def hot_get_cycles(mac_cache_bytes):
            store = cached_store(
                num_buckets=128, num_mac_hashes=1, mac_cache_bytes=mac_cache_bytes
            )
            for i in range(256):  # one deep set: 128 buckets per set hash
                store.set(f"key-{i:03d}".encode(), b"v" * 24)
            store.get(b"key-007")  # warm LLC/EPC either way
            store.machine.reset_measurement()
            store.get(b"key-007")
            return store.machine.clock.elapsed_cycles()

        assert hot_get_cycles(CACHE_KB) < hot_get_cycles(0) / 2

    def test_stage_timers_accumulate(self):
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        for i in range(32):
            store.set(f"key-{i}".encode(), b"v")
        for i in range(32):
            store.get(f"key-{i}".encode())
        assert store.stats.stage_walk_s > 0
        assert store.stats.stage_crypto_s > 0
        assert store.stats.stage_verify_s > 0

    def test_cache_off_reports_no_counters(self):
        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        assert store.maccache is None
        store.set(b"k", b"v")
        store.get(b"k")
        assert store.stats.mac_cache_hits == 0
        assert store.stats.mac_cache_misses == 0


class TestPartitionedPlumbing:
    def test_budgets_split_across_partitions(self):
        config = shield_opt(
            num_buckets=64,
            num_mac_hashes=32,
            mac_cache_bytes=CACHE_KB,
            cache_bytes=CACHE_KB,
        )
        store = PartitionedShieldStore(config, machine=Machine(num_threads=4))
        for part in store.partitions:
            assert part.maccache is not None
            assert part.maccache.capacity_bytes == CACHE_KB // 4
            assert part.cache is not None
            assert part.cache.capacity_bytes == CACHE_KB // 4
        keys = [f"key-{i:03d}".encode() for i in range(64)]
        store.multi_set([(k, b"v-" + k) for k in keys])
        assert store.multi_get(keys) == {k: b"v-" + k for k in keys}
        # The §6.3 plaintext cache answers hot reads before any MAC
        # verification runs, so reads split between the two caches.
        stats = store.stats()
        assert stats.mac_cache_hits > 0
        assert stats.mac_cache_hits + stats.cache_hits >= len(keys)
        store.close()

    def test_process_workers_use_the_cache(self):
        from repro.core import process_mode_supported

        if not process_mode_supported():
            pytest.skip("platform lacks process workers")
        config = shield_opt(
            num_buckets=64, num_mac_hashes=32, mac_cache_bytes=CACHE_KB
        )
        store = PartitionedShieldStore(
            config, num_partitions=2, mode="processes"
        )
        try:
            keys = [f"key-{i:03d}".encode() for i in range(64)]
            store.multi_set([(k, b"v-" + k) for k in keys])
            assert store.multi_get(keys) == {k: b"v-" + k for k in keys}
            stats = store.stats()
            # Counters ship back over the worker pipe and merge.
            assert stats.mac_cache_hits >= len(keys)
        finally:
            store.close()
