"""The experiment suite runner itself."""


from repro.experiments.suite import average_kops, run_suite
from repro.workloads import RD50_Z, RD95_Z, SMALL

_SCALE = 0.0015


class TestRunSuite:
    def test_grid_shape(self):
        results = run_suite(
            ["baseline", "shieldopt"], [SMALL], [1, 2], [RD50_Z, RD95_Z],
            scale=_SCALE, ops=150,
        )
        assert len(results) == 2 * 1 * 2 * 2
        for key, result in results.items():
            system, data, threads, workload = key
            assert result.system == system
            assert result.threads == threads
            assert result.ops == 150
            assert result.kops > 0

    def test_unsupported_system_yields_none_cells(self):
        # Eleos with a pool limit too small for the preload.
        results = run_suite(
            ["eleos"], [SMALL], [1], [RD50_Z],
            scale=_SCALE, ops=50,
            system_kwargs={"eleos": {"pool_limit_bytes": 1024}},
        )
        assert results[("eleos", "small", 1, "RD50_Z")] is None

    def test_average_skips_missing(self):
        results = {
            ("s", "small", 1, "RD50_Z"): None,
        }
        assert average_kops(results, "s", "small", 1, [RD50_Z]) == 0.0

    def test_deterministic(self):
        def once():
            results = run_suite(
                ["shieldopt"], [SMALL], [1], [RD50_Z], scale=_SCALE, ops=120
            )
            return results[("shieldopt", "small", 1, "RD50_Z")].elapsed_us

        assert once() == once()
