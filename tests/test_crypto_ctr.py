"""AES-CTR mode: NIST SP 800-38A vectors, counter handling, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128
from repro.crypto.ctr import ctr_transform, increment_iv_ctr, keystream
from repro.errors import CryptoError

# NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt)
_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_CTR = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
_CT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)


class TestNistVectors:
    def test_encrypt(self):
        assert ctr_transform(AES128(_KEY), _CTR, _PT) == _CT

    def test_decrypt_is_encrypt(self):
        assert ctr_transform(AES128(_KEY), _CTR, _CT) == _PT

    def test_partial_block(self):
        assert ctr_transform(AES128(_KEY), _CTR, _PT[:20]) == _CT[:20]


class TestCounterHandling:
    def test_increment(self):
        assert increment_iv_ctr(bytes(16)) == bytes(15) + b"\x01"

    def test_increment_carry(self):
        start = bytes(15) + b"\xff"
        assert increment_iv_ctr(start) == bytes(14) + b"\x01\x00"

    def test_increment_wraps(self):
        assert increment_iv_ctr(b"\xff" * 16) == bytes(16)

    def test_increment_amount(self):
        assert increment_iv_ctr(bytes(16), 256) == bytes(14) + b"\x01\x00"

    def test_increment_rejects_bad_size(self):
        with pytest.raises(CryptoError):
            increment_iv_ctr(bytes(8))

    def test_contiguity(self):
        """Encrypting two halves with the counter advanced by the first
        half's block count must equal encrypting the whole."""
        cipher = AES128(_KEY)
        whole = ctr_transform(cipher, _CTR, _PT)
        first = ctr_transform(cipher, _CTR, _PT[:32])
        second = ctr_transform(cipher, increment_iv_ctr(_CTR, 2), _PT[32:])
        assert first + second == whole


class TestKeystream:
    def test_length(self):
        cipher = AES128(_KEY)
        for n in (0, 1, 15, 16, 17, 100):
            assert len(keystream(cipher, _CTR, n)) == n

    def test_negative_length_rejected(self):
        with pytest.raises(CryptoError):
            keystream(AES128(_KEY), _CTR, -1)

    def test_bad_iv_rejected(self):
        with pytest.raises(CryptoError):
            keystream(AES128(_KEY), bytes(8), 16)


class TestProperties:
    @given(
        key=st.binary(min_size=16, max_size=16),
        iv=st.binary(min_size=16, max_size=16),
        data=st.binary(max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, key, iv, data):
        cipher = AES128(key)
        assert ctr_transform(cipher, iv, ctr_transform(cipher, iv, data)) == data

    @given(
        key=st.binary(min_size=16, max_size=16),
        iv=st.binary(min_size=16, max_size=16),
        data=st.binary(min_size=16, max_size=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_distinct_ivs_give_distinct_ciphertexts(self, key, iv, data):
        cipher = AES128(key)
        other_iv = increment_iv_ctr(iv, 1 << 64)
        assert ctr_transform(cipher, iv, data) != ctr_transform(cipher, other_iv, data)
