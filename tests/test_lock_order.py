"""Runtime lock-order verification on the multiprocess partition pool.

shieldlint's lock-order pass pins the acquisition order statically
(worker locks ascending by partition index, health lock only after
worker locks).  This module checks the same invariant *dynamically*:
every pool lock is wrapped in a recording proxy and a concurrent
scatter/request/snapshot/close stress run must never observe

* a worker lock acquired while a worker lock of an equal or higher
  partition index is already held by the same thread, or
* a worker lock acquired while the health lock is held (health is
  ordered strictly after the worker family).
"""

import threading

import pytest

from repro.core import process_mode_supported, shield_opt
from repro.core.procpool import OP_PING, ProcessPartitionPool

SECRET = bytes(range(32))
WORKERS = 3

needs_processes = pytest.mark.skipif(
    not process_mode_supported(),
    reason="platform cannot run the multiprocess engine",
)


class _LockTracker:
    """Per-thread held-lock stacks plus a shared violation log."""

    def __init__(self):
        self._local = threading.local()
        self.violations = []
        self.acquisitions = 0
        self._stats_lock = threading.Lock()

    def held(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def on_acquire(self, family: str, index: int) -> None:
        for held_family, held_index in self.held():
            if held_family == "health":
                self._record(
                    f"{family}:{index} acquired while holding the health "
                    "lock (health must come after every worker lock)"
                )
            elif (
                held_family == "worker"
                and family == "worker"
                and held_index >= index
            ):
                self._record(
                    f"worker:{index} acquired while already holding "
                    f"worker:{held_index} (must be ascending)"
                )
        self.held().append((family, index))
        with self._stats_lock:
            self.acquisitions += 1

    def on_release(self, family: str, index: int) -> None:
        stack = self.held()
        for pos in range(len(stack) - 1, -1, -1):
            if stack[pos] == (family, index):
                del stack[pos]
                return

    def _record(self, message: str) -> None:
        with self._stats_lock:
            self.violations.append(message)


class _TrackingLock:
    """Duck-types threading.Lock for ``with`` and ExitStack use."""

    def __init__(self, inner, family, index, tracker):
        self._inner = inner
        self._family = family
        self._index = index
        self._tracker = tracker

    def acquire(self, *args, **kwargs):
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._tracker.on_acquire(self._family, self._index)
        return acquired

    def release(self):
        self._tracker.on_release(self._family, self._index)
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


def _instrument(pool: ProcessPartitionPool) -> _LockTracker:
    tracker = _LockTracker()
    for handle in pool.workers:
        handle.lock = _TrackingLock(
            handle.lock, "worker", handle.index, tracker
        )
    pool._health_lock = _TrackingLock(
        pool._health_lock, "health", -1, tracker
    )
    return tracker


@needs_processes
class TestRuntimeLockOrder:
    def test_concurrent_stress_keeps_ascending_order(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=128, num_mac_hashes=32),
            WORKERS,
            master_secret=SECRET,
        )
        tracker = _instrument(pool)
        errors = []
        start = threading.Barrier(4)

        def hammer(seed: int) -> None:
            try:
                start.wait()
                for step in range(12):
                    action = (seed + step) % 4
                    if action == 0:
                        pool.scatter(
                            {i: b"" for i in range(WORKERS)}, OP_PING
                        )
                    elif action == 1:
                        pool.request(step % WORKERS, OP_PING)
                    elif action == 2:
                        pool.snapshot_all(seed * 100 + step)
                    else:
                        pool.gather_stats()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,), daemon=True)
            for seed in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            pool.close()

        assert not errors, errors
        assert tracker.violations == [], "\n".join(tracker.violations)
        # The stress must actually have exercised multi-lock paths.
        assert tracker.acquisitions > 4 * 12

    def test_close_acquires_every_worker_ascending(self):
        pool = ProcessPartitionPool(
            shield_opt(num_buckets=32, num_mac_hashes=8),
            WORKERS,
            master_secret=SECRET,
        )
        tracker = _instrument(pool)
        pool.close()
        assert tracker.violations == [], "\n".join(tracker.violations)
        assert tracker.acquisitions >= WORKERS
