"""shieldfault chaos drills: the resilient transport under scripted faults.

The centerpiece is the acceptance scenario: a 4-partition YCSB-B run
through :class:`TCPShieldClient` while a seeded plan SIGKILLs a worker,
drops frames, tampers sealed records and stalls a checkpoint write —
and the run must complete with **zero client-visible errors** and
**every retried write observed exactly once** in the store.
"""

import os
import socket
import threading

import pytest

from repro.analysis import sanitizer
from repro.core import PartitionedShieldStore, PartitionSnapshotter, shield_opt
from repro.core.procpool import process_mode_supported
from repro.errors import ProtocolError, StoreError
from repro.net import SnapshotDaemon, TCPShieldClient, TCPShieldServer
from repro.net.tcp import _IdempotencyCache, _recv_exact, _recv_frame, _send_frame
from repro.sim import (
    AttestationService,
    FaultPlan,
    FaultRule,
    MonotonicCounterService,
    faults,
)
from repro.workloads.datasets import SMALL
from repro.workloads.ycsb import OP_GET, OP_SET, RD95_Z, OperationStream

needs_processes = pytest.mark.skipif(
    not process_mode_supported(), reason="no multiprocess engine here"
)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with no ambient fault plan."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def service():
    return AttestationService(b"ias-secret-for-resilience")


def resilient_client(server, service, entropy=bytes(range(32)), **kw):
    kw.setdefault("request_deadline_s", 2.0)
    kw.setdefault("max_retries", 12)
    kw.setdefault("backoff_base_s", 0.01)
    kw.setdefault("backoff_max_s", 0.05)
    return TCPShieldClient(
        server.address,
        service,
        server.store.enclave.measurement,
        entropy,
        **kw,
    )


# ---------------------------------------------------------------------------
# frame codec: truncation vs clean EOF
# ---------------------------------------------------------------------------
class TestTruncatedFrames:
    def test_clean_eof_at_boundary_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert _recv_frame(b) is None

    def test_eof_inside_header_raises(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(b"\x10\x00")  # 2 of the 4 header bytes
            a.close()
            with pytest.raises(ProtocolError, match="truncated frame"):
                _recv_frame(b)

    def test_eof_inside_body_raises(self):
        a, b = socket.socketpair()
        with b:
            _send_frame(a, b"full-frame")
            a.sendall(b"\x40\x00\x00\x00partial")  # 64-byte body, 7 sent
            a.close()
            assert _recv_frame(b) == b"full-frame"
            with pytest.raises(ProtocolError, match="truncated frame"):
                _recv_frame(b)

    def test_recv_exact_reports_progress(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(b"abc")
            a.close()
            with pytest.raises(ProtocolError, match="3 of 8"):
                _recv_exact(b, 8)

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError, match="too large"):
                _recv_frame(b)


# ---------------------------------------------------------------------------
# idempotency: cache unit behavior + end-to-end replay after a lost reply
# ---------------------------------------------------------------------------
class TestIdempotencyCache:
    def test_lookup_roundtrip(self):
        cache = _IdempotencyCache()
        cache.store(b"c1", b"t" * 16, b"reply")
        assert cache.lookup(b"c1", b"t" * 16) == b"reply"
        assert cache.lookup(b"c1", b"u" * 16) is None
        assert cache.lookup(b"c2", b"t" * 16) is None

    def test_token_bound_evicts_oldest(self):
        cache = _IdempotencyCache(max_tokens=3)
        tokens = [bytes([i]) * 16 for i in range(5)]
        for i, token in enumerate(tokens):
            cache.store(b"c", token, b"r%d" % i)
        assert cache.lookup(b"c", tokens[0]) is None
        assert cache.lookup(b"c", tokens[1]) is None
        assert cache.lookup(b"c", tokens[4]) == b"r4"
        assert len(cache) == 3

    def test_client_bound_evicts_oldest_client(self):
        cache = _IdempotencyCache(max_clients=2)
        cache.store(b"c1", b"t" * 16, b"r1")
        cache.store(b"c2", b"t" * 16, b"r2")
        cache.store(b"c3", b"t" * 16, b"r3")
        assert cache.lookup(b"c1", b"t" * 16) is None
        assert cache.lookup(b"c3", b"t" * 16) == b"r3"


class TestIdempotentReplay:
    def test_lost_reply_replays_instead_of_reapplying(self, service):
        """An increment whose reply is dropped must not apply twice."""
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        server = TCPShieldServer(store, service)
        server.start()
        client = resilient_client(server, service)
        try:
            plan = FaultPlan(
                [FaultRule(point="tcp.client.recv", kind="drop", hits=[0])],
                seed=1,
            )
            with faults.injected(plan):
                # Attempt 1 executes server-side and caches the reply;
                # the reply frame is dropped; the retry (same token over
                # a fresh session) is answered from the cache.
                assert client.increment(b"ctr") == 1
            assert store.get(b"ctr") == b"1"  # applied exactly once
            assert client.stats.net_retries >= 1
            assert client.stats.net_reconnects >= 1
            merged = server.stats_snapshot()
            assert merged.idempotent_replays == 1
        finally:
            client.close()
            server.close()

    def test_reads_carry_no_token(self, service):
        """Dropped read replies re-execute; nothing is cached for them."""
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        server = TCPShieldServer(store, service)
        server.start()
        client = resilient_client(server, service)
        try:
            client.set(b"k", b"v")
            plan = FaultPlan(
                [FaultRule(point="tcp.client.recv", kind="drop", hits=[0])],
                seed=1,
            )
            with faults.injected(plan):
                assert client.get(b"k") == b"v"
            assert server.stats_snapshot().idempotent_replays == 0
        finally:
            client.close()
            server.close()


# ---------------------------------------------------------------------------
# server limits: connection cap, thread reaping, drain on close
# ---------------------------------------------------------------------------
class TestServerLimits:
    def test_connection_cap_sheds_with_sealed_busy(self, service):
        # Over-cap connections are not silently refused: they complete
        # the attested handshake and every request is answered with a
        # *sealed* STATUS_BUSY until a slot frees up.  A client with no
        # retry budget surfaces that as a StoreError.
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        server = TCPShieldServer(store, service, max_connections=1)
        server.start()
        first = resilient_client(server, service)
        try:
            first.set(b"k", b"v")  # the one admitted session works
            second = resilient_client(
                server,
                service,
                entropy=bytes(range(32, 64)),
                max_retries=1,
                backoff_base_s=0.01,
            )
            try:
                with pytest.raises(StoreError, match="shedding"):
                    second.get(b"k")
                assert second.transport.busy_retries >= 1
                # Shed was load-shedding, never a transport fault.
                assert second.stats.net_retries == 0
            finally:
                second.close()
            assert server.stats_snapshot().rejected_connections >= 1
            assert server.transport_snapshot().busy_sheds >= 1
            assert first.get(b"k") == b"v"  # cap never hurt the admitted one
        finally:
            first.close()
            server.close()

    def test_shed_connection_is_promoted_when_slot_frees(self, service):
        # The oldest shed connection becomes a first-class session as
        # soon as an admitted connection leaves — the client's backoff
        # retry then succeeds on the *same* session, no reconnect.
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        server = TCPShieldServer(store, service, max_connections=1)
        server.start()
        first = resilient_client(server, service)
        first.set(b"k", b"v")
        second = resilient_client(
            server,
            service,
            entropy=bytes(range(32, 64)),
            max_retries=8,
            backoff_base_s=0.05,
        )
        try:
            releaser = threading.Timer(0.2, first.close)
            releaser.start()
            try:
                assert second.get(b"k") == b"v"
            finally:
                releaser.cancel()
            assert second.transport.busy_retries >= 1
            assert second.stats.net_reconnects == 0, (
                "promotion must reuse the shed session, not re-handshake"
            )
        finally:
            second.close()
            server.close()

    def test_close_drains_and_joins_the_loop(self, service):
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        server = TCPShieldServer(store, service, drain_timeout_s=5.0)
        server.start()
        client = resilient_client(server, service)
        client.set(b"k", b"v")
        server.close()  # client still connected and idle
        assert not server._loop_thread.is_alive()
        assert server.live_connections == 0
        client.close()

    def test_pipelined_requests_on_one_connection(self, service):
        # The event loop parses back-to-back frames from one socket
        # buffer and answers them in FIFO order under the channel's
        # sequence discipline.
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        server = TCPShieldServer(store, service)
        server.start()
        client = resilient_client(server, service)
        try:
            for i in range(8):
                client.set(b"pipe%d" % i, b"v%d" % i)
            values = client.multi_get([b"pipe%d" % i for i in range(8)])
            assert values == {b"pipe%d" % i: b"v%d" % i for i in range(8)}
        finally:
            client.close()
            server.close()


# ---------------------------------------------------------------------------
# snapshot retention
# ---------------------------------------------------------------------------
class TestSnapshotRetention:
    def _daemon(self, tmp_path, keep):
        from repro.core import ShieldStore, Snapshotter, default_platform_secret
        from repro.sim import SealingService

        store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
        counters = MonotonicCounterService(
            os.path.join(tmp_path, "counters.json")
        )
        sealing = SealingService(default_platform_secret(store.keyring.master))
        snapshotter = Snapshotter(sealing, counters)
        daemon = SnapshotDaemon(
            lambda: snapshotter.snapshot_bytes(store.enclave.context(), store),
            tmp_path,
            3600.0,
            keep=keep,
        )
        return store, daemon

    def test_keeps_newest_n_and_counter_file(self, tmp_path):
        store, daemon = self._daemon(tmp_path, keep=3)
        paths = []
        for i in range(6):
            store.set(b"k%d" % i, b"v")
            paths.append(daemon.run_once())
        blobs = sorted(p for p in os.listdir(tmp_path) if p.endswith(".bin"))
        assert len(blobs) == 3
        assert [os.path.join(tmp_path, b) for b in blobs] == paths[-3:]
        assert daemon.snapshots_pruned == 3
        # The monotonic-counter state must survive every prune: it is
        # the rollback defense for whichever snapshot remains.
        assert os.path.exists(os.path.join(tmp_path, "counters.json"))
        assert SnapshotDaemon.latest_snapshot(tmp_path) == paths[-1]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(StoreError, match="keep"):
            SnapshotDaemon(lambda: b"", tmp_path, 3600.0, keep=0)

    def test_injected_write_crash_leaves_previous_checkpoint(self, tmp_path):
        store, daemon = self._daemon(tmp_path, keep=3)
        store.set(b"k", b"v1")
        first = daemon.run_once()
        plan = FaultPlan(
            [FaultRule(point="snapshot.write", kind="crash", hits=[0])], seed=2
        )
        store.set(b"k", b"v2")
        with faults.injected(plan):
            with pytest.raises(OSError, match="injected crash"):
                daemon.run_once()
        # The atomic temp-file protocol kept the previous checkpoint as
        # the newest complete one; the wreckage is only a .tmp file.
        assert SnapshotDaemon.latest_snapshot(tmp_path) == first
        assert daemon.run_once() != first  # and the next write recovers

    def test_load_latest_reads_newest_blob(self, tmp_path):
        store, daemon = self._daemon(tmp_path, keep=3)
        store.set(b"k", b"v")
        path = daemon.run_once()
        loaded = SnapshotDaemon.load_latest(tmp_path)
        assert loaded is not None
        with open(path, "rb") as fh:
            assert loaded == (path, fh.read())
        assert SnapshotDaemon.load_latest(os.path.join(tmp_path, "empty")) is None


# ---------------------------------------------------------------------------
# the acceptance scenario
# ---------------------------------------------------------------------------
@needs_processes
class TestChaosYCSB:
    """4-partition YCSB-B through the TCP front under a scripted plan."""

    NUM_PAIRS = 48
    NUM_OPS = 150

    def _chaos_plan(self, seed):
        return FaultPlan(
            [
                # SIGKILL one partition worker: first data-plane ring
                # write after the checkpoint (the checkpoint itself is 4
                # OP_SNAPSHOT sends, hence after=4).
                FaultRule(point="shmring.write", kind="crash",
                          after=4, hits=[0]),
                # Stall one snapshot write.
                FaultRule(point="snapshot.write", kind="delay",
                          delay_s=0.2, hits=[0]),
                # Tamper ~1% of sealed records entering the server.
                FaultRule(point="channel.server.open", kind="tamper",
                          every=60),
                # Drop ~5% of wire frames, plus one guaranteed early
                # drop each way so the counters are nonzero under every
                # seed.
                FaultRule(point="tcp.client.recv", kind="drop", hits=[2]),
                FaultRule(point="tcp.client.recv", kind="drop",
                          probability=0.05),
                FaultRule(point="tcp.server.recv", kind="drop",
                          probability=0.05),
            ],
            seed=seed,
        )

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_ycsb_b_exactly_once_under_faults(self, seed, tmp_path, service):
        # The crypto sanitizer rides along: every (key, IV) pair the
        # storm consumes — across worker respawns too — must be unique.
        journal_dir = str(tmp_path / "crypto-sanitizer")
        sanitizer.enable(journal_dir)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            num_partitions=4,
            mode="processes",
        )
        server = TCPShieldServer(store, service, request_deadline_s=10.0)
        server.start()
        counters = MonotonicCounterService()
        snapshotter = PartitionSnapshotter.for_store(store, counters)
        daemon = SnapshotDaemon(
            lambda: snapshotter.snapshot_bytes(store),
            tmp_path,
            3600.0,
            lock=server.store_lock,
        )
        client = resilient_client(server, service)
        model = {}
        counts = {}
        try:
            # Phase 1 (clean): YCSB preload through the wire.
            stream = OperationStream(RD95_Z, SMALL, self.NUM_PAIRS, seed=seed)
            for op in stream.load_operations():
                client.set(op.key, op.value)
                model[op.key] = op.value

            # Phase 2: checkpoint, then YCSB-B under the scripted plan.
            plan = faults.install(self._chaos_plan(seed))
            daemon.run_once()  # hits the snapshot.write stall
            for i, op in enumerate(stream.operations(self.NUM_OPS)):
                if i % 10 == 0:
                    # Non-idempotent writes are the sharp probe: a retry
                    # that applied twice (or a lost apply) shows up as a
                    # wrong final count, not just a stale value.
                    ctr = b"ctr-%d" % (i % 3)
                    client.increment(ctr)
                    counts[ctr] = counts.get(ctr, 0) + 1
                elif op.op == OP_GET:
                    expected = model[op.key]
                    assert client.get(op.key) == expected
                elif op.op == OP_SET:
                    client.set(op.key, op.value)
                    model[op.key] = op.value

            # Counters while the plan is still active (faults_injected
            # reads the live plan), served over the wire like any op.
            live = client.server_stats()

            # Phase 3: every write observed exactly once.
            for key, value in sorted(model.items()):
                assert client.get(key) == value
            for ctr, count in sorted(counts.items()):
                assert client.get(ctr) == str(count).encode()

            assert client.stats.net_retries >= 1
            assert client.stats.net_reconnects >= 1
            assert live["tamper_drops"] >= 1
            assert live["worker_recoveries"] >= 1
            assert live["degraded_replies"] >= 1
            assert live["faults_injected"] >= 4
            assert plan.fires("shmring.write", "crash") == 1
            assert plan.fires("snapshot.write", "delay") == 1
            assert plan.fires(kind="drop") >= 1
            assert plan.fires(kind="tamper") >= 1
            # The deployment still checkpoints cleanly after the storm.
            faults.uninstall()
            daemon.run_once()
            assert store.partition_state == "ok"
        finally:
            faults.uninstall()
            client.close()
            server.close()
            store.close()
            sanitizer.disable()
        # All journals (parent + spawned workers) merged: no overlap.
        crypto = sanitizer.global_check(journal_dir)
        assert crypto.records > 0
