"""TTL/expiration wrapper (memcached semantics)."""

import pytest

from repro.core import ShieldStore, shield_opt
from repro.errors import KeyNotFoundError, StoreError
from repro.ext.expiry import ExpiringStore
from repro.sim import Attacker


@pytest.fixture
def store():
    return ExpiringStore(ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16)))


def advance(store, us):
    store.machine.clock.threads[0].charge(store.machine.cost.us_to_cycles(us))


class TestTtl:
    def test_immortal_by_default(self, store):
        store.set(b"k", b"v")
        advance(store, 10_000_000)
        assert store.get(b"k") == b"v"
        assert store.ttl_remaining_us(b"k") is None

    def test_expires(self, store):
        store.set(b"k", b"v", ttl_us=1_000.0)
        assert store.get(b"k") == b"v"
        advance(store, 2_000)
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")
        assert store.lazy_reclaims == 1
        assert len(store) == 0  # lazily reclaimed

    def test_ttl_remaining_shrinks(self, store):
        store.set(b"k", b"v", ttl_us=10_000.0)
        first = store.ttl_remaining_us(b"k")
        advance(store, 3_000)
        second = store.ttl_remaining_us(b"k")
        assert second < first

    def test_touch_extends(self, store):
        store.set(b"k", b"v", ttl_us=1_000.0)
        advance(store, 800)
        store.touch(b"k", ttl_us=10_000.0)
        advance(store, 2_000)
        assert store.get(b"k") == b"v"

    def test_append_preserves_deadline(self, store):
        store.set(b"k", b"a", ttl_us=5_000.0)
        assert store.append(b"k", b"b") == b"ab"
        advance(store, 6_000)
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")

    def test_overwrite_resets_ttl(self, store):
        store.set(b"k", b"v1", ttl_us=1_000.0)
        store.set(b"k", b"v2")  # immortal now
        advance(store, 5_000)
        assert store.get(b"k") == b"v2"

    def test_purge_expired(self, store):
        for i in range(10):
            store.set(f"short-{i}".encode(), b"v", ttl_us=100.0)
        for i in range(5):
            store.set(f"long-{i}".encode(), b"v", ttl_us=1e9)
        advance(store, 1_000)
        assert store.purge_expired() == 10
        assert len(store) == 5

    def test_bad_ttl(self, store):
        with pytest.raises(StoreError):
            store.set(b"k", b"v", ttl_us=-1.0)

    def test_contains(self, store):
        store.set(b"k", b"v", ttl_us=500.0)
        assert store.contains(b"k")
        advance(store, 600)
        assert not store.contains(b"k")


class TestSecurityOfDeadlines:
    def test_deadline_is_confidential(self, store):
        """The host cannot read when items expire — the deadline lives
        inside the encrypted value."""
        store.set(b"session", b"data", ttl_us=123_456.0)
        attacker = Attacker(store.machine.memory)
        import struct

        deadline_bytes = struct.pack("<d", store.machine.elapsed_us())
        for base, size in attacker.untrusted_allocations():
            dump = attacker.read(base, size)
            assert b"data" not in dump  # value hidden, envelope included

    def test_host_cannot_extend_lifetime(self, store):
        """Flipping bytes where the deadline sits breaks the MAC instead
        of extending the session."""
        from repro.errors import IntegrityError, ReplayError

        store.set(b"session", b"data", ttl_us=1_000.0)
        attacker = Attacker(store.machine.memory)
        inner = store.store
        bucket = inner.keyring.keyed_bucket_hash(b"session", inner.config.num_buckets)
        addr = int.from_bytes(
            inner.machine.memory.raw_read(inner.buckets.slot_addr(bucket), 8),
            "little",
        )
        # The expiry header is the first 12 plaintext bytes of the value,
        # i.e. right after the encrypted key in the ciphertext region.
        attacker.flip_bit(addr + 33 + len(b"session") + 2, 6)
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"session")
