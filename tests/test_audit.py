"""Full-table integrity audit."""

import struct

import pytest

from repro.core import ShieldStore, shield_opt
from repro.errors import IntegrityError, ReplayError
from repro.sim import Attacker


@pytest.fixture(params=["macbucket", "chained"])
def store(request):
    config = shield_opt(num_buckets=16, num_mac_hashes=8)
    if request.param == "chained":
        config = config.with_(mac_bucketing=False)
    s = ShieldStore(config)
    for i in range(80):
        s.set(f"key-{i:02d}".encode(), f"value-{i}".encode())
    return s


class TestAudit:
    def test_clean_store_passes(self, store):
        assert store.audit() == 80

    def test_empty_store_passes(self):
        s = ShieldStore(shield_opt(num_buckets=8, num_mac_hashes=4))
        assert s.audit() == 0

    def test_detects_any_entry_tamper(self, store):
        attacker = Attacker(store.machine.memory)
        bucket = store.keyring.keyed_bucket_hash(b"key-33", store.config.num_buckets)
        addr = int.from_bytes(
            store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
            "little",
        )
        attacker.flip_bit(addr + 40, 3)
        with pytest.raises((IntegrityError, ReplayError)):
            store.audit()

    def test_detects_chain_truncation(self, store):
        attacker = Attacker(store.machine.memory)
        for bucket in range(store.config.num_buckets):
            head = int.from_bytes(
                store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
                "little",
            )
            if head:
                attacker.write(head, struct.pack("<Q", 0))
                break
        with pytest.raises((IntegrityError, ReplayError)):
            store.audit()

    def test_audit_after_restore(self):
        from repro.core import Snapshotter
        from repro.sim import MonotonicCounterService, SealingService

        source = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        for i in range(30):
            source.set(f"k{i}".encode(), b"v")
        snapshotter = Snapshotter(
            SealingService(b"platform-secret-z"), MonotonicCounterService()
        )
        blob = snapshotter.snapshot_bytes(source.enclave.context(), source)
        target = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        snapshotter.restore(target.enclave.context(), blob, target, verify=False)
        assert target.audit() == 30

    def test_audit_charges_cycles(self, store):
        store.machine.reset_measurement()
        store.audit()
        assert store.machine.clock.elapsed_cycles() > 0
