"""Replication: LWW records, partition faults, quorum I/O, anti-entropy.

The convergence and chaos classes assert the headline robustness
property end to end over real TCP nodes: acked QUORUM writes survive a
single node kill plus a healed partition plus random frame drops, and
post-heal anti-entropy converges every replica to byte-identical
MAC-verified state.
"""

import random

import pytest

from repro.errors import KeyNotFoundError, ProtocolError, StoreError
from repro.ext.replication import (
    CONSISTENCY_ONE,
    FLAG_TOMBSTONE,
    RECORD_OVERHEAD,
    HintedHandoff,
    LamportClock,
    ReplicationGroup,
    is_tombstone,
    node_origin,
    pack_record,
    record_version,
    unpack_record,
)
from repro.sim import faults
from repro.sim.faults import FaultPlan, FaultPlanError, FaultRule


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def pair():
    group = ReplicationGroup(num_nodes=2)
    yield group
    group.close()


@pytest.fixture
def trio():
    group = ReplicationGroup(num_nodes=3)
    yield group
    group.close()


class TestRecords:
    def test_roundtrip(self):
        raw = pack_record(0, 7, node_origin("a"), b"payload")
        assert len(raw) == RECORD_OVERHEAD + len(b"payload")
        flags, clock, origin, payload = unpack_record(raw)
        assert (flags, clock, origin, payload) == (
            0, 7, node_origin("a"), b"payload"
        )

    def test_tombstone_flag(self):
        live = pack_record(0, 1, 1, b"v")
        dead = pack_record(FLAG_TOMBSTONE, 2, 1, b"")
        assert not is_tombstone(live)
        assert is_tombstone(dead)

    def test_version_orders_by_clock_then_origin(self):
        assert record_version(pack_record(0, 2, 1, b"")) > record_version(
            pack_record(0, 1, 9, b"")
        )
        assert record_version(pack_record(0, 2, 5, b"")) > record_version(
            pack_record(0, 2, 3, b"")
        )

    def test_short_record_is_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_record(b"\x00" * (RECORD_OVERHEAD - 1))

    def test_origin_is_stable_and_distinct(self):
        assert node_origin("node-0") == node_origin("node-0")
        assert node_origin("node-0") != node_origin("node-1")
        assert 0 <= node_origin("node-0") < 2 ** 64


class TestLamportClock:
    def test_tick_is_monotonic(self):
        clock = LamportClock()
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]

    def test_witness_jumps_past_remote(self):
        clock = LamportClock()
        clock.witness(41)
        assert clock.tick() == 42
        clock.witness(10)  # stale remote never rewinds
        assert clock.tick() == 43

    def test_peek_does_not_advance(self):
        clock = LamportClock()
        clock.tick()
        assert clock.peek() == 1
        assert clock.peek() == 1


class TestHintedHandoff:
    def test_fifo_per_peer(self):
        hints = HintedHandoff()
        hints.push("p", b"k1", b"r1")
        hints.push("p", b"k2", b"r2")
        hints.push("q", b"k3", b"r3")
        assert hints.pending("p") == 2
        assert hints.pop("p") == (b"k1", b"r1")
        assert hints.pop("p") == (b"k2", b"r2")
        assert hints.pop("p") is None
        assert hints.pending("q") == 1

    def test_unpop_preserves_order(self):
        hints = HintedHandoff()
        hints.push("p", b"k1", b"r1")
        hints.push("p", b"k2", b"r2")
        first = hints.pop("p")
        hints.unpop("p", first)
        assert hints.pop("p") == (b"k1", b"r1")

    def test_cap_drops_oldest(self):
        hints = HintedHandoff(max_hints_per_peer=2)
        for i in range(4):
            hints.push("p", b"k%d" % i, b"r")
        assert hints.dropped == 2
        assert hints.pop("p") == (b"k2", b"r")


class TestPartitionRules:
    def test_requires_two_nonempty_groups(self):
        with pytest.raises(FaultPlanError, match="group"):
            FaultPlan([FaultRule(point="tcp.client.*", kind="partition",
                                 groups=[["a"]])])
        with pytest.raises(FaultPlanError, match="group"):
            FaultPlan([FaultRule(point="tcp.client.*", kind="partition",
                                 groups=[["a"], []])])

    def test_rejects_non_tcp_points(self):
        with pytest.raises(FaultPlanError, match="tcp"):
            FaultPlan([FaultRule(point="persistence.*", kind="partition",
                                 groups=[["a"], ["b"]])])

    def test_rejects_negative_heal(self):
        with pytest.raises(FaultPlanError, match="heal"):
            FaultPlan([FaultRule(point="tcp.client.*", kind="partition",
                                 groups=[["a"], ["b"]], heal_after_s=-1)])

    def test_groups_reserved_for_partition_rules(self):
        with pytest.raises(FaultPlanError, match="partition"):
            FaultPlan([FaultRule(point="tcp.client.send", kind="drop",
                                 groups=[["a"], ["b"]])])

    def test_cuts_only_cross_group_links(self):
        plan = FaultPlan([FaultRule(point="tcp.client.*", kind="partition",
                                    groups=[["a", "b"], ["c"]])])
        plan.activate()
        cut = plan.decide("tcp.client.send", link=("a", "c"))
        assert cut is not None and cut[0].kind == "partition"
        assert plan.decide("tcp.client.send", link=("a", "b")) is None
        assert plan.decide("tcp.client.send", link=("a", "x")) is None
        assert plan.decide("tcp.client.send", link=None) is None

    def test_heal_restores_the_link(self):
        plan = FaultPlan([FaultRule(point="tcp.client.*", kind="partition",
                                    groups=[["a"], ["b"]])])
        plan.activate()
        assert plan.decide("tcp.client.send", link=("a", "b")) is not None
        plan.heal()
        assert plan.decide("tcp.client.send", link=("a", "b")) is None
        snap = plan.snapshot()
        assert snap["partitions"] == {"rules": 1, "healed": True}


class TestGroupBasics:
    def test_write_through_fanout(self, pair):
        store0 = pair.nodes["node-0"].store
        store1 = pair.nodes["node-1"].store
        store0.set(b"k", b"v")
        pair.flush_all()
        assert store1.get(b"k") == b"v"
        assert record_version(store0.get_versioned(b"k")) == record_version(
            store1.get_versioned(b"k")
        )

    def test_delete_replicates_as_tombstone(self, pair):
        store0 = pair.nodes["node-0"].store
        store1 = pair.nodes["node-1"].store
        store0.set(b"k", b"v")
        store0.delete(b"k")
        pair.flush_all()
        with pytest.raises(KeyNotFoundError):
            store1.get(b"k")
        assert is_tombstone(store1.get_versioned(b"k"))
        assert pair.converged()

    def test_concurrent_writes_converge_to_one_winner(self, pair):
        store0 = pair.nodes["node-0"].store
        store1 = pair.nodes["node-1"].store
        store0.set(b"k", b"from-0")
        store1.set(b"k", b"from-1")
        pair.flush_all()
        assert pair.sync_all() >= 0
        assert pair.converged()
        assert store0.get(b"k") == store1.get(b"k")

    def test_replication_counters_flow(self, pair):
        store0 = pair.nodes["node-0"].store
        for i in range(5):
            store0.set(b"c%d" % i, b"v")
        pair.flush_all()
        assert store0.stats().replicated_out >= 5
        assert pair.nodes["node-1"].store.stats().replicated_in >= 5
        snap = store0.stats().snapshot_dict()
        assert "replicated_out" in snap and "sync_rounds" in snap


class TestQuorumClient:
    def test_quorum_set_get_delete(self, trio):
        client = trio.client("qc")
        client.set(b"k", b"v")
        assert client.get(b"k") == b"v"
        assert client.contains(b"k")
        client.delete(b"k")
        with pytest.raises(KeyNotFoundError):
            client.get(b"k")
        assert not client.contains(b"k")
        assert client.stats.quorum_writes >= 2
        assert client.stats.quorum_reads >= 2
        client.close()

    def test_unknown_consistency_rejected(self, trio):
        client = trio.client("qc")
        with pytest.raises(StoreError, match="consistency"):
            client.get(b"k", consistency="linearizable")
        client.close()

    def test_quorum_reads_survive_one_kill(self, trio):
        client = trio.client("qc")
        acked = {}
        for i in range(30):
            key, value = b"rk%02d" % i, b"rv%02d" % i
            client.set(key, value)
            acked[key] = value
        trio.kill("node-1")
        for key, value in acked.items():
            assert client.get(key) == value
        # Writes keep working too: 2 of 3 replicas is still a majority.
        client.set(b"after-kill", b"ok")
        assert client.get(b"after-kill") == b"ok"
        client.close()

    def test_quorum_fails_below_majority_but_one_succeeds(self, trio):
        client = trio.client("qc")
        trio.kill("node-1")
        trio.kill("node-2")
        with pytest.raises(StoreError):
            client.set(b"k", b"v")
        assert client.stats.quorum_failures >= 1
        client.set(b"k", b"v", consistency=CONSISTENCY_ONE)
        assert client.get(b"k", consistency=CONSISTENCY_ONE) == b"v"
        client.close()

    def test_restarted_node_refills_from_peers(self, trio):
        client = trio.client("qc")
        trio.kill("node-2")
        acked = {}
        for i in range(20):
            key, value = b"hk%02d" % i, b"hv%02d" % i
            client.set(key, value)
            acked[key] = value
        trio.restart("node-2")
        trio.sync_all(rounds=3)
        assert trio.converged()
        revived = trio.nodes["node-2"].store
        for key, value in acked.items():
            assert revived.get(key) == value
        client.close()


class TestConvergenceProperty:
    """Satellite property: divergent interleavings (drops + partition +
    concurrent writers) converge to byte-identical verified state."""

    def test_partitioned_concurrent_writers_converge(self, pair):
        plan = FaultPlan([
            FaultRule(point="tcp.client.*", kind="partition",
                      groups=[["wa", "node-0"], ["wb", "node-1"]]),
            FaultRule(point="tcp.client.send", kind="drop",
                      probability=0.05),
        ], seed=2019)
        # Writers at ONE: each can only reach its side of the cut, so
        # the replicas genuinely diverge while the partition holds.
        ca = pair.client("wa", consistency=CONSISTENCY_ONE, max_retries=4)
        cb = pair.client("wb", consistency=CONSISTENCY_ONE, max_retries=4)
        rng = random.Random(7)
        written = set()
        faults.install(plan)
        try:
            for step in range(40):
                key = b"pk%02d" % rng.randrange(16)  # overlapping keyset
                written.add(key)
                writer, tag = ((ca, b"a") if rng.random() < 0.5
                               else (cb, b"b"))
                try:
                    writer.set(key, b"%s-%03d" % (tag, step))
                except StoreError:
                    pass  # dropped frames may starve even ONE; unacked
        finally:
            plan.heal()
            faults.uninstall()
        assert pair.sync_all(rounds=3) >= 0
        assert pair.converged()
        store0 = pair.nodes["node-0"].store
        store1 = pair.nodes["node-1"].store
        for key in written:
            # Byte-identical records on both sides (clock, origin and
            # payload), each read back through MAC verification.
            assert store0.get_versioned(key) == store1.get_versioned(key)
        ca.close()
        cb.close()


class TestChaosAcceptance:
    """The acceptance scenario: 3 nodes, one killed, a healed partition
    and 5% frame drops — zero acked QUORUM writes lost, replicas
    byte-identical after anti-entropy."""

    def test_no_acked_quorum_write_lost(self):
        group = ReplicationGroup(num_nodes=3, link_deadline_s=0.5)
        plan = FaultPlan([
            # Isolate node-0 from its peers (client traffic unaffected:
            # the writer is in neither group).
            FaultRule(point="tcp.client.*", kind="partition",
                      groups=[["node-0"], ["node-1", "node-2"]]),
            FaultRule(point="tcp.client.send", kind="drop",
                      probability=0.05),
        ], seed=11)
        client = group.client("chaos-client", max_retries=4)
        acked = {}

        def write(key, value):
            try:
                client.set(key, value)
            except StoreError:
                return  # never acked; allowed to be lost
            acked[key] = value

        try:
            for i in range(20):  # calm phase
                write(b"ck%03d" % i, b"calm-%03d" % i)
            faults.install(plan)
            try:
                for i in range(20, 50):  # partition + drops
                    write(b"ck%03d" % i, b"cut-%03d" % i)
                group.kill("node-2")  # SIGKILL stand-in mid-chaos
                for i in range(50, 70):
                    write(b"ck%03d" % i, b"kill-%03d" % i)
            finally:
                plan.heal()
                faults.uninstall()
            group.restart("node-2")
            group.sync_all(rounds=3)
            assert group.converged()
            assert len(acked) >= 30  # the scenario actually acked writes
            lost = [key for key, value in acked.items()
                    if client.get(key) != value]
            assert lost == []
            # Every live replica holds every acked write locally too.
            for node in group.live_nodes():
                for key, value in acked.items():
                    assert node.store.get(key) == value
        finally:
            client.close()
            group.close()
