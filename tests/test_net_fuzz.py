"""Adversarial input fuzzing of the wire protocol and secure channel."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.suite import make_suite
from repro.errors import ProtocolError
from repro.net.message import (
    ENVELOPE_MAGIC,
    TOKEN_SIZE,
    Request,
    SecureChannel,
    decode_envelope,
    decode_request,
    decode_response,
    encode_envelope,
    encode_request,
)

_FUZZ_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def channel_pair():
    a = make_suite("fast-hashlib", bytes(16), bytes(range(16)))
    b = make_suite("fast-hashlib", bytes(16), bytes(range(16)))
    return SecureChannel(a, "client"), SecureChannel(b, "server")


class TestCodecFuzz:
    @given(raw=st.binary(max_size=256))
    @_FUZZ_SETTINGS
    def test_decode_request_never_crashes_unexpectedly(self, raw):
        """Arbitrary bytes either parse or raise ProtocolError — never
        anything else."""
        try:
            request = decode_request(raw)
            # Whatever parsed must re-encode to the same bytes.
            assert encode_request(request) == raw
        except ProtocolError:
            pass

    @given(raw=st.binary(max_size=256))
    @_FUZZ_SETTINGS
    def test_decode_response_never_crashes_unexpectedly(self, raw):
        try:
            decode_response(raw)
        except ProtocolError:
            pass

    @given(
        op=st.sampled_from(["get", "set", "append", "delete", "increment"]),
        key=st.binary(max_size=64),
        value=st.binary(max_size=128),
    )
    @_FUZZ_SETTINGS
    def test_request_roundtrip_property(self, op, key, value):
        request = Request(op, key, value)
        assert decode_request(encode_request(request)) == request


class TestEnvelopeFuzz:
    """The idempotency-token envelope wrapping mutating requests."""

    @given(raw=st.binary(max_size=256))
    @_FUZZ_SETTINGS
    def test_decode_envelope_never_crashes_unexpectedly(self, raw):
        """Arbitrary bytes either split cleanly or raise ProtocolError."""
        try:
            token, record = decode_envelope(raw)
            if token is None:
                assert record == raw  # bare records pass through verbatim
            else:
                assert len(token) == TOKEN_SIZE
                assert bytes([ENVELOPE_MAGIC]) + token + record == raw
        except ProtocolError:
            pass

    @given(
        token=st.binary(min_size=TOKEN_SIZE, max_size=TOKEN_SIZE),
        op=st.sampled_from(["get", "set", "append", "delete", "increment"]),
        key=st.binary(max_size=64),
        value=st.binary(max_size=128),
    )
    @_FUZZ_SETTINGS
    def test_envelope_roundtrip_property(self, token, op, key, value):
        record = encode_request(Request(op, key, value))
        got_token, got_record = decode_envelope(encode_envelope(token, record))
        assert got_token == token
        assert got_record == record

    @given(
        token=st.binary(min_size=TOKEN_SIZE, max_size=TOKEN_SIZE),
        key=st.binary(max_size=32),
        position=st.integers(min_value=0, max_value=TOKEN_SIZE - 1),
        flip=st.integers(min_value=1, max_value=255),
    )
    @_FUZZ_SETTINGS
    def test_corrupted_token_is_a_different_token_or_rejected(
        self, token, key, position, flip
    ):
        """Flipping token bytes never bleeds into the request record.

        Server-side dedup keys on the token, so a corrupted token must
        either surface as a *different* token (a cache miss — the write
        re-executes, which is safe) or fail parsing — never as the same
        token paired with altered request bytes.
        """
        record = encode_request(Request("set", key, b"v"))
        wire = bytearray(encode_envelope(token, record))
        wire[1 + position] ^= flip
        try:
            got_token, got_record = decode_envelope(bytes(wire))
        except ProtocolError:
            return
        assert got_token != token
        assert got_record == record

    @given(record=st.binary(max_size=128))
    @_FUZZ_SETTINGS
    def test_bare_record_survives_unless_it_collides_with_magic(self, record):
        try:
            token, out = decode_envelope(encode_envelope(None, record))
        except ProtocolError:
            # Only reachable when the bare record itself starts with the
            # envelope magic; real request records never do (opcodes are
            # all < 0x40).
            assert record[:1] == bytes([ENVELOPE_MAGIC])
            return
        if record[:1] != bytes([ENVELOPE_MAGIC]):
            assert token is None and out == record


class TestChannelFuzz:
    @given(garbage=st.binary(max_size=200))
    @_FUZZ_SETTINGS
    def test_open_rejects_garbage(self, garbage):
        _client, server = channel_pair()
        with pytest.raises(ProtocolError):
            server.open(garbage)

    @given(
        payload=st.binary(min_size=1, max_size=64),
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    @_FUZZ_SETTINGS
    def test_any_single_byte_corruption_detected(self, payload, position, flip):
        client, server = channel_pair()
        sealed = bytearray(client.seal(payload))
        sealed[position % len(sealed)] ^= flip
        with pytest.raises(ProtocolError):
            server.open(bytes(sealed))

    @given(payloads=st.lists(st.binary(max_size=32), min_size=1, max_size=10))
    @_FUZZ_SETTINGS
    def test_in_order_stream_always_accepted(self, payloads):
        client, server = channel_pair()
        for payload in payloads:
            assert server.open(client.seal(payload)) == payload
