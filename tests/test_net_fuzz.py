"""Adversarial input fuzzing of the wire protocol and secure channel."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.suite import make_suite
from repro.errors import ProtocolError
from repro.net.message import (
    Request,
    SecureChannel,
    decode_request,
    decode_response,
    encode_request,
)

_FUZZ_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def channel_pair():
    a = make_suite("fast-hashlib", bytes(16), bytes(range(16)))
    b = make_suite("fast-hashlib", bytes(16), bytes(range(16)))
    return SecureChannel(a, "client"), SecureChannel(b, "server")


class TestCodecFuzz:
    @given(raw=st.binary(max_size=256))
    @_FUZZ_SETTINGS
    def test_decode_request_never_crashes_unexpectedly(self, raw):
        """Arbitrary bytes either parse or raise ProtocolError — never
        anything else."""
        try:
            request = decode_request(raw)
            # Whatever parsed must re-encode to the same bytes.
            assert encode_request(request) == raw
        except ProtocolError:
            pass

    @given(raw=st.binary(max_size=256))
    @_FUZZ_SETTINGS
    def test_decode_response_never_crashes_unexpectedly(self, raw):
        try:
            decode_response(raw)
        except ProtocolError:
            pass

    @given(
        op=st.sampled_from(["get", "set", "append", "delete", "increment"]),
        key=st.binary(max_size=64),
        value=st.binary(max_size=128),
    )
    @_FUZZ_SETTINGS
    def test_request_roundtrip_property(self, op, key, value):
        request = Request(op, key, value)
        assert decode_request(encode_request(request)) == request


class TestChannelFuzz:
    @given(garbage=st.binary(max_size=200))
    @_FUZZ_SETTINGS
    def test_open_rejects_garbage(self, garbage):
        _client, server = channel_pair()
        with pytest.raises(ProtocolError):
            server.open(garbage)

    @given(
        payload=st.binary(min_size=1, max_size=64),
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    @_FUZZ_SETTINGS
    def test_any_single_byte_corruption_detected(self, payload, position, flip):
        client, server = channel_pair()
        sealed = bytearray(client.seal(payload))
        sealed[position % len(sealed)] ^= flip
        with pytest.raises(ProtocolError):
            server.open(bytes(sealed))

    @given(payloads=st.lists(st.binary(max_size=32), min_size=1, max_size=10))
    @_FUZZ_SETTINGS
    def test_in_order_stream_always_accepted(self, payloads):
        client, server = channel_pair()
        for payload in payloads:
            assert server.open(client.seal(payload)) == payload
