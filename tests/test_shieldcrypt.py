"""shieldcrypt static rules: key-domain registry, nonce monotonicity,
constant-time comparisons — per-rule fixtures plus the real-tree gates.

Fixture trees follow the test_shieldlint convention: write a tiny module
at a repo-relative path the rule scopes to, lint the tree, and assert
the seeded violation fires (and the compliant twin does not).
"""

import ast
import fnmatch
import json
import random
import textwrap
from pathlib import Path

from repro.analysis import RULE_DOCS, run_analysis
from repro.analysis import cryptomap
from repro.cli import main


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _lint(tmp_path, rules=None):
    return run_analysis(root=str(tmp_path), rules=rules)


# ---------------------------------------------------------------------------
# key-domain: derive_key label registry
# ---------------------------------------------------------------------------
class TestKeyDomainRule:
    def test_unregistered_label_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def keys(master):
                return derive_key(master, "bogus/enc")
            """,
        )
        report = _lint(tmp_path, rules=["key-domain"])
        assert [f.rule for f in report.active] == ["key-domain"]
        assert "unregistered key domain" in report.active[0].message

    def test_registered_fstring_label_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/wal.py",
            """
            def segment_key(master, partition, counter):
                seg = derive_key(
                    master, f"shieldstore/wal/{partition}/{counter}"
                )
                return derive_key(seg, "wal/enc"), derive_key(seg, "wal/mac")
            """,
        )
        assert _lint(tmp_path, rules=["key-domain"]).active == []

    def test_unresolvable_label_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/wal.py",
            """
            def keys(master, label):
                return derive_key(master, "prefix-" + label)
            """,
        )
        report = _lint(tmp_path, rules=["key-domain"])
        assert len(report.active) == 1
        assert "not statically resolvable" in report.active[0].message

    def test_parent_mismatch_is_flagged(self, tmp_path):
        # wal/enc must chain off the per-segment secret, not the master.
        _write(
            tmp_path,
            "core/wal.py",
            """
            def keys(master):
                return derive_key(master, "wal/enc")
            """,
        )
        report = _lint(tmp_path, rules=["key-domain"])
        assert len(report.active) == 1
        assert "declares parent" in report.active[0].message

    def test_extra_site_beyond_max_sites_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "crypto/keys.py",
            """
            def one(master):
                return derive_key(master, "shieldstore/enc")

            def two(master):
                return derive_key(master, "shieldstore/enc")
            """,
        )
        report = _lint(tmp_path, rules=["key-domain"])
        assert len(report.active) == 1
        assert "distinct derivations need distinct labels" in (
            report.active[0].message
        )

    def test_wrong_module_is_unregistered(self, tmp_path):
        # The label exists but only crypto/keys.py may derive it.
        _write(
            tmp_path,
            "net/tcp.py",
            """
            def keys(master):
                return derive_key(master, "shieldstore/enc")
            """,
        )
        report = _lint(tmp_path, rules=["key-domain"])
        assert len(report.active) == 1
        assert "unregistered key domain" in report.active[0].message


class TestRegistrySelfChecks:
    """registry_findings proves the registry itself is collision-free."""

    def _spec(self, label, **kw):
        kw.setdefault("module", "core/store.py")
        kw.setdefault("lineage", "master")
        return cryptomap.DomainSpec(label, kw.pop("module"),
                                    kw.pop("lineage"), kw.pop("purpose"),
                                    **kw)

    def test_real_registry_is_clean(self):
        assert cryptomap.registry_findings() == []

    def test_unifiable_templates_collide(self):
        bad = (
            self._spec("a/{x}/c", purpose="p1"),
            self._spec("a/b/{y}", purpose="p2"),
        )
        messages = [f.message for f in cryptomap.registry_findings(bad)]
        assert any("can collide" in m for m in messages)

    def test_prefix_labels_are_flagged(self):
        bad = (
            self._spec("a/b", purpose="p1"),
            self._spec("a/b/c", purpose="p2"),
        )
        messages = [f.message for f in cryptomap.registry_findings(bad)]
        assert any("segment-prefix" in m for m in messages)

    def test_duplicate_purpose_in_lineage_is_flagged(self):
        bad = (
            self._spec("a/enc", purpose="same purpose"),
            self._spec("b/enc", purpose="same purpose"),
        )
        messages = [f.message for f in cryptomap.registry_findings(bad)]
        assert any("share a purpose" in m for m in messages)

    def test_persistent_domain_needs_incarnation_binding(self):
        bad = (
            self._spec("a/enc", purpose="p1", persists=True),
        )
        messages = [f.message for f in cryptomap.registry_findings(bad)]
        assert any("persists ciphertext" in m for m in messages)

    def test_persistent_domain_with_epoch_binding_is_clean(self):
        good = (
            self._spec("a/{epoch}/enc", purpose="p1", persists=True,
                       binding=("epoch",)),
        )
        assert cryptomap.registry_findings(good) == []

    def test_mac_domain_is_exempt_from_iv_regime(self):
        good = (
            self._spec("a/mac", purpose="p1", persists=True,
                       iv_regime="none"),
        )
        assert cryptomap.registry_findings(good) == []

    def test_distinct_lineages_do_not_interact(self):
        good = (
            self._spec("enc", purpose="p1", lineage="left"),
            self._spec("enc", purpose="p1", lineage="right"),
        )
        assert cryptomap.registry_findings(good) == []


class TestKeyDomainProperty:
    """1k random template instantiations stay collision-free across
    domains: no two registry specs can ever mint the same label."""

    def test_random_instantiations_unique_across_domains(self):
        rng = random.Random(0x5EED)
        templated = [
            spec for spec in cryptomap.REGISTRY
            if None in cryptomap.parse_template(spec.label)
        ]
        assert templated, "registry lost its templated domains"
        seen = {}
        for trial in range(1000):
            partition = rng.randrange(64)
            incarnation = rng.randrange(1 << 32)
            counter = rng.randrange(1 << 16)
            fillers = [str(partition), str(incarnation), str(counter),
                       f"ns{counter % 7}"]
            for spec in templated:
                template = cryptomap.parse_template(spec.label)
                label = "/".join(
                    seg if seg is not None else fillers[i % len(fillers)]
                    for i, seg in enumerate(template)
                )
                owner = seen.setdefault(label, spec.label)
                assert owner == spec.label, (
                    f"label {label!r} minted by both {owner!r} "
                    f"and {spec.label!r}"
                )

    def test_fixed_labels_never_match_templated_domains(self):
        fixed = [
            spec for spec in cryptomap.REGISTRY
            if None not in cryptomap.parse_template(spec.label)
        ]
        templated = [
            spec for spec in cryptomap.REGISTRY
            if None in cryptomap.parse_template(spec.label)
        ]
        for fspec in fixed:
            ftmpl = cryptomap.parse_template(fspec.label)
            for tspec in templated:
                if fspec.lineage != tspec.lineage:
                    continue
                assert not cryptomap.templates_unify(
                    ftmpl, cryptomap.parse_template(tspec.label)
                ), (fspec.label, tspec.label)


# ---------------------------------------------------------------------------
# nonce-reuse: counter monotonicity
# ---------------------------------------------------------------------------
class TestNonceReuseRule:
    def test_counter_reset_without_rotation_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "net/sessions.py",
            """
            class Channel:
                def rewind(self):
                    self._send_seq = 0
            """,
        )
        report = _lint(tmp_path, rules=["nonce-reuse"])
        assert [f.rule for f in report.active] == ["nonce-reuse"]
        assert "reset" in report.active[0].message

    def test_counter_reset_with_key_rotation_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "net/sessions.py",
            """
            class Channel:
                def rekey(self, root):
                    self.suite = make_suite("fast", root, root)
                    self._send_seq = 0
            """,
        )
        assert _lint(tmp_path, rules=["nonce-reuse"]).active == []

    def test_init_reset_is_construction_not_reuse(self, tmp_path):
        _write(
            tmp_path,
            "net/sessions.py",
            """
            class Channel:
                def __init__(self):
                    self._send_seq = 0
            """,
        )
        assert _lint(tmp_path, rules=["nonce-reuse"]).active == []

    def test_counter_decrement_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/wal.py",
            """
            class Log:
                def undo(self):
                    self._frame_seq -= 1
            """,
        )
        report = _lint(tmp_path, rules=["nonce-reuse"])
        assert len(report.active) == 1
        assert "decrement" in report.active[0].message.lower()

    def test_increment_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/wal.py",
            """
            class Log:
                def bump(self):
                    self._frame_seq += 1
            """,
        )
        assert _lint(tmp_path, rules=["nonce-reuse"]).active == []

    def test_modules_outside_scope_are_ignored(self, tmp_path):
        _write(
            tmp_path,
            "workloads/ycsb.py",
            """
            class Stream:
                def rewind(self):
                    self._op_seq = 0
            """,
        )
        assert _lint(tmp_path, rules=["nonce-reuse"]).active == []


# ---------------------------------------------------------------------------
# ct-compare: constant-time comparisons
# ---------------------------------------------------------------------------
class TestConstTimeRule:
    def test_mac_equality_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            def check(expected_mac, mac):
                if mac != expected_mac:
                    raise ValueError("bad")
            """,
        )
        report = _lint(tmp_path, rules=["ct-compare"])
        assert [f.rule for f in report.active] == ["ct-compare"]
        assert "compare_digest" in report.active[0].message

    def test_compare_digest_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/store.py",
            """
            from hmac import compare_digest

            def check(expected_mac, mac):
                if not compare_digest(mac, expected_mac):
                    raise ValueError("bad")
            """,
        )
        assert _lint(tmp_path, rules=["ct-compare"]).active == []

    def test_digest_call_result_is_flagged(self, tmp_path):
        _write(
            tmp_path,
            "net/tcp.py",
            """
            def check(suite, message, tag):
                return suite.mac(message) == tag
            """,
        )
        report = _lint(tmp_path, rules=["ct-compare"])
        assert len(report.active) == 1

    def test_tag_length_check_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "crypto/cmac.py",
            """
            def check(tag):
                if len(tag) != 16:
                    raise ValueError("bad size")
            """,
        )
        assert _lint(tmp_path, rules=["ct-compare"]).active == []

    def test_counting_identifiers_are_exempt(self, tmp_path):
        _write(
            tmp_path,
            "core/persistence.py",
            """
            def check(num_mac_hashes, expected):
                return num_mac_hashes != expected
            """,
        )
        assert _lint(tmp_path, rules=["ct-compare"]).active == []


# ---------------------------------------------------------------------------
# real-tree gates
# ---------------------------------------------------------------------------
class TestShieldcryptRealTree:
    def test_shieldcrypt_rules_clean_on_real_tree(self):
        report = run_analysis(
            rules=["key-domain", "nonce-reuse", "ct-compare"]
        )
        details = "\n".join(f.format() for f in report.active)
        assert report.active == [], f"shieldcrypt findings:\n{details}"

    def test_every_registered_domain_has_a_live_site(self):
        """The registry describes the tree, not a wish list: every spec
        must match at least one derive_key site in src/repro."""
        root = Path(cryptomap.__file__).resolve().parents[1]
        sites = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            tree = ast.parse(path.read_text(encoding="utf-8"))
            cryptomap.collect(rel, tree, sites)
        matched = set()
        for site in sites:
            for spec in cryptomap.REGISTRY:
                if site.template == cryptomap.parse_template(
                    spec.label
                ) and fnmatch.fnmatch(site.path, spec.module):
                    matched.add(spec.label)
        unmatched = [
            spec.label for spec in cryptomap.REGISTRY
            if spec.label not in matched
        ]
        assert unmatched == [], f"stale registry entries: {unmatched}"


# ---------------------------------------------------------------------------
# CLI: --stale-suppressions and JSON rule docs
# ---------------------------------------------------------------------------
class TestShieldcryptCLI:
    def test_stale_suppression_exits_one(self, tmp_path, capsys):
        _write(
            tmp_path,
            "core/store.py",
            """
            # shieldlint: ignore[ct-compare] -- was needed once
            def nothing_here():
                return 1
            """,
        )
        assert main(["lint", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--stale-suppressions"]) == 1
        out = capsys.readouterr().out
        assert "stale suppression" in out
        assert "core/store.py:2" in out

    def test_used_suppression_is_not_stale(self, tmp_path, capsys):
        _write(
            tmp_path,
            "core/store.py",
            """
            def check(expected_mac, mac):
                # shieldlint: ignore[ct-compare] -- fixture, not a secret
                return mac == expected_mac
            """,
        )
        assert main(["lint", str(tmp_path), "--stale-suppressions"]) == 0
        assert "stale" not in capsys.readouterr().out

    def test_unselected_rule_suppression_is_not_stale(self, tmp_path, capsys):
        # The named rule did not run, so staleness cannot be proven.
        _write(
            tmp_path,
            "core/store.py",
            """
            # shieldlint: ignore[ct-compare] -- covers the line below
            def nothing_here():
                return 1
            """,
        )
        code = main(["lint", str(tmp_path), "--stale-suppressions",
                     "--rule", "trust-boundary"])
        assert code == 0

    def test_json_carries_rule_docs(self, tmp_path, capsys):
        _write(tmp_path, "core/store.py", "x = 1\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        docs = payload["rule_docs"]
        for rule in ("trust-boundary", "verify-before-use", "lock-order",
                     "key-domain", "nonce-reuse", "ct-compare"):
            assert docs[rule]["doc_url"].startswith("docs/INTERNALS.md#")
            assert docs[rule]["remediation"]
        assert payload["stale_suppressions"] == []

    def test_rule_docs_registry_covers_all_rules(self):
        report = run_analysis(rules=["ct-compare"])
        assert set(RULE_DOCS) >= set(report.rules)
