"""Hash-partitioned multi-threading (§5.3)."""

import pytest

from repro.core import PartitionedShieldStore, shield_opt
from repro.errors import KeyNotFoundError, StoreError
from repro.sim import Machine


@pytest.fixture
def store():
    machine = Machine(num_threads=4)
    return PartitionedShieldStore(
        shield_opt(num_buckets=256, num_mac_hashes=128), machine=machine
    )


class TestPartitioning:
    def test_basic_operations(self, store):
        for i in range(200):
            store.set(f"key-{i}".encode(), f"value-{i}".encode())
        for i in range(200):
            assert store.get(f"key-{i}".encode()) == f"value-{i}".encode()
        assert len(store) == 200
        store.delete(b"key-7")
        assert not store.contains(b"key-7")
        assert store.append(b"key-8", b"!") == b"value-8!"
        assert store.increment(b"ctr") == 1

    def test_routing_is_stable(self, store):
        for i in range(50):
            key = f"key-{i}".encode()
            assert store.partition_of(key) is store.partition_of(key)

    def test_keys_spread_across_partitions(self, store):
        owners = {
            store.partition_of(f"key-{i}".encode()).thread_id for i in range(200)
        }
        assert owners == {0, 1, 2, 3}

    def test_partitions_are_disjoint(self, store):
        for i in range(100):
            store.set(f"key-{i}".encode(), b"v")
        total = sum(len(p) for p in store.partitions)
        assert total == len(store) == 100
        # Each key is present in exactly its owner partition.
        for i in range(100):
            key = f"key-{i}".encode()
            owner = store.partition_of(key)
            for partition in store.partitions:
                if partition is owner:
                    assert partition.contains(key)
                else:
                    assert not partition.contains(key)

    def test_work_charged_to_owner_thread(self, store):
        key = b"single-key"
        owner = store.partition_of(key).thread_id
        store.machine.reset_measurement()
        store.set(key, b"value")
        for thread in store.machine.clock.threads:
            if thread.thread_id == owner:
                assert thread.cycles > 0
            else:
                assert thread.cycles == 0

    def test_parallel_speedup(self):
        """The same op mix finishes faster on 4 threads than on 1."""

        def elapsed(threads):
            machine = Machine(num_threads=threads)
            ps = PartitionedShieldStore(
                shield_opt(num_buckets=256, num_mac_hashes=128), machine=machine
            )
            for i in range(400):
                ps.set(f"key-{i}".encode(), b"value")
            machine.reset_measurement()
            for i in range(400):
                ps.get(f"key-{i}".encode())
            return machine.clock.elapsed_cycles()

        assert elapsed(4) < elapsed(1) / 2.0

    def test_stats_merge(self, store):
        for i in range(40):
            store.set(f"key-{i}".encode(), b"v")
        merged = store.stats()
        assert merged.sets == 40
        assert merged.inserts == 40

    def test_missing_key(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get(b"nope")

    def test_needs_buckets_per_thread(self):
        machine = Machine(num_threads=4)
        with pytest.raises(StoreError):
            PartitionedShieldStore(
                shield_opt(num_buckets=2, num_mac_hashes=1), machine=machine
            )

    def test_single_thread_machine(self):
        ps = PartitionedShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=32), machine=Machine()
        )
        assert ps.num_threads == 1
        ps.set(b"k", b"v")
        assert ps.get(b"k") == b"v"
