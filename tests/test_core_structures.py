"""Entry codec, allocators, bucket table, MAC buckets, MAC tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import ExtraHeapAllocator, OcallAllocator, make_allocator
from repro.core.entry import (
    HEADER_SIZE,
    EntryHeader,
    entry_total_size,
    mac_message,
    pack_header,
    unpack_header,
)
from repro.core.hashindex import BucketTable
from repro.core.macbucket import MacBucketStore
from repro.core.mactree import MacTree
from repro.crypto.suite import make_suite
from repro.errors import (
    AllocationError,
    PointerSafetyError,
    ReplayError,
    StoreError,
)
from repro.sim import Enclave, Machine
from repro.sim.memory import ENCLAVE_BASE


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def enclave(machine):
    return Enclave(machine, bytes(32))


@pytest.fixture
def ctx(enclave):
    return enclave.context()


@pytest.fixture
def suite():
    return make_suite("fast-hashlib", bytes(16), bytes(range(16)))


class TestEntryCodec:
    def test_roundtrip(self):
        header = EntryHeader(0x1234, 7, 16, 512, bytes(range(16)))
        assert unpack_header(pack_header(header)) == header

    def test_sizes(self):
        assert entry_total_size(16, 512) == HEADER_SIZE + 16 + 512 + 16
        header = EntryHeader(0, 0, 16, 512, bytes(16))
        assert header.kv_size == 528
        assert header.total_size == entry_total_size(16, 512)

    def test_mac_message_binds_fields(self):
        h1 = EntryHeader(0, 7, 4, 4, bytes(16))
        h2 = EntryHeader(0, 8, 4, 4, bytes(16))  # different hint
        assert mac_message(h1, b"12345678") != mac_message(h2, b"12345678")
        h3 = EntryHeader(0, 7, 4, 4, bytes(15) + b"\x01")  # different IV
        assert mac_message(h1, b"12345678") != mac_message(h3, b"12345678")

    def test_mac_message_excludes_next_ptr(self):
        """The chain pointer is untrusted metadata, deliberately unbound."""
        h1 = EntryHeader(0xAAAA, 7, 4, 4, bytes(16))
        h2 = EntryHeader(0xBBBB, 7, 4, 4, bytes(16))
        assert mac_message(h1, b"12345678") == mac_message(h2, b"12345678")

    def test_bad_header_rejected(self):
        with pytest.raises(StoreError):
            unpack_header(b"short")
        with pytest.raises(StoreError):
            pack_header(EntryHeader(0, 300, 4, 4, bytes(16)))
        with pytest.raises(StoreError):
            pack_header(EntryHeader(0, 0, 4, 4, bytes(8)))

    @given(
        next_ptr=st.integers(0, 2**64 - 1),
        hint=st.integers(0, 255),
        ksize=st.integers(0, 2**32 - 1),
        vsize=st.integers(0, 2**32 - 1),
        iv=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, next_ptr, hint, ksize, vsize, iv):
        header = EntryHeader(next_ptr, hint, ksize, vsize, iv)
        assert unpack_header(pack_header(header)) == header


class TestAllocators:
    def test_ocall_allocator_exits_every_time(self, enclave, ctx):
        alloc = OcallAllocator(enclave)
        before = enclave.machine.counters.ocalls
        a = alloc.alloc(ctx, 100)
        b = alloc.alloc(ctx, 100)
        assert a != b
        assert enclave.machine.counters.ocalls == before + 2
        assert alloc.ocalls == 2

    def test_extra_heap_batches_ocalls(self, enclave, ctx):
        alloc = ExtraHeapAllocator(enclave, chunk_bytes=64 * 1024)
        for _ in range(100):
            alloc.alloc(ctx, 256)
        assert alloc.ocalls == 1  # one chunk covers all
        assert alloc.requests == 100

    def test_extra_heap_fetches_more_chunks(self, enclave, ctx):
        alloc = ExtraHeapAllocator(enclave, chunk_bytes=4096)
        for _ in range(100):
            alloc.alloc(ctx, 256)
        assert alloc.ocalls >= 7

    def test_free_list_reuse(self, enclave, ctx):
        alloc = ExtraHeapAllocator(enclave, chunk_bytes=64 * 1024)
        a = alloc.alloc(ctx, 100)
        alloc.free(ctx, a, 100)
        b = alloc.alloc(ctx, 100)
        assert a == b

    def test_oversized_request_gets_own_chunk(self, enclave, ctx):
        alloc = ExtraHeapAllocator(enclave, chunk_bytes=4096)
        addr = alloc.alloc(ctx, 100_000)
        enclave.machine.memory.write(ctx, addr + 99_000, b"end")

    def test_fragmentation_metric(self, enclave, ctx):
        alloc = ExtraHeapAllocator(enclave, chunk_bytes=64 * 1024)
        alloc.alloc(ctx, 100)
        assert 0.0 < alloc.internal_fragmentation < 1.0

    def test_bad_sizes(self, enclave, ctx):
        with pytest.raises(AllocationError):
            ExtraHeapAllocator(enclave, chunk_bytes=100)
        alloc = make_allocator(enclave, True, 4096)
        with pytest.raises(AllocationError):
            alloc.alloc(ctx, 0)

    def test_factory(self, enclave):
        assert isinstance(make_allocator(enclave, True, 4096), ExtraHeapAllocator)
        assert isinstance(make_allocator(enclave, False, 4096), OcallAllocator)


class TestBucketTable:
    def test_slots_roundtrip(self, enclave, ctx):
        table = BucketTable(enclave, 16)
        assert table.read_head(ctx, 3) == 0
        table.write_head(ctx, 3, 0xABCD)
        table.write_mac_ptr(ctx, 3, 0x1234)
        assert table.read_head(ctx, 3) == 0xABCD
        assert table.read_mac_ptr(ctx, 3) == 0x1234
        # Neighbours unaffected.
        assert table.read_head(ctx, 2) == 0
        assert table.read_head(ctx, 4) == 0

    def test_range_check(self, enclave, ctx):
        table = BucketTable(enclave, 4)
        with pytest.raises(IndexError):
            table.slot_addr(4)

    def test_pointer_check(self, enclave, ctx):
        table = BucketTable(enclave, 4)
        table.write_head(ctx, 0, ENCLAVE_BASE + 64)
        with pytest.raises(PointerSafetyError):
            table.read_head(ctx, 0, check=True)
        # Disabled check lets it through (availability-vs-safety knob).
        assert table.read_head(ctx, 0, check=False) == ENCLAVE_BASE + 64


class TestMacBuckets:
    @pytest.fixture
    def macstore(self, enclave):
        alloc = ExtraHeapAllocator(enclave, chunk_bytes=64 * 1024)
        return MacBucketStore(enclave, alloc, capacity=4)

    def _mac(self, i):
        return bytes([i]) * 16

    def test_insert_front_order(self, machine, enclave, ctx, macstore):
        head = 0
        for i in range(3):
            head = macstore.insert_front(ctx, head, self._mac(i))
        assert macstore.read_all(ctx, head) == [self._mac(2), self._mac(1), self._mac(0)]

    def test_overflow_chains(self, machine, ctx, macstore):
        head = 0
        for i in range(10):
            head = macstore.insert_front(ctx, head, self._mac(i))
        macs = macstore.read_all(ctx, head)
        assert macs == [self._mac(i) for i in reversed(range(10))]

    def test_replace(self, machine, ctx, macstore):
        head = 0
        for i in range(6):
            head = macstore.insert_front(ctx, head, self._mac(i))
        macstore.replace(ctx, head, 5, self._mac(99))
        assert macstore.read_all(ctx, head)[5] == self._mac(99)
        with pytest.raises(StoreError):
            macstore.replace(ctx, head, 6, self._mac(1))

    def test_remove_shrinks_chain(self, machine, ctx, macstore):
        head = 0
        for i in range(6):
            head = macstore.insert_front(ctx, head, self._mac(i))
        head = macstore.remove(ctx, head, 0)
        assert macstore.read_all(ctx, head) == [self._mac(i) for i in (4, 3, 2, 1, 0)]

    def test_remove_last_frees(self, machine, ctx, macstore):
        head = macstore.insert_front(ctx, 0, self._mac(1))
        assert macstore.remove(ctx, head, 0) == 0

    def test_corrupted_count_clamped(self, machine, ctx, macstore):
        """A lying count in untrusted metadata cannot cause over-reads."""
        head = macstore.insert_front(ctx, 0, self._mac(1))
        machine.memory.raw_write(head, (2**31).to_bytes(4, "little"))
        macs = macstore.read_all(ctx, head)
        assert len(macs) <= macstore.capacity


class TestMacTree:
    def test_geometry(self, enclave):
        tree = MacTree(enclave, num_hashes=4, num_buckets=10)
        assert tree.set_of(7) == 3
        assert list(tree.buckets_of(1)) == [1, 5, 9]
        assert tree.buckets_per_set == 3

    def test_verify_update_cycle(self, enclave, ctx, suite):
        tree = MacTree(enclave, num_hashes=2, num_buckets=4)
        macs = [bytes([7]) * 16, bytes([9]) * 16]
        tree.update_set(ctx, suite, 0, macs)
        tree.verify_set(ctx, suite, 0, macs)
        with pytest.raises(ReplayError):
            tree.verify_set(ctx, suite, 0, list(reversed(macs)))
        with pytest.raises(ReplayError):
            tree.verify_set(ctx, suite, 0, macs[:1])

    def test_empty_set_verifies(self, enclave, ctx, suite):
        tree = MacTree(enclave, num_hashes=2, num_buckets=4)
        tree.verify_set(ctx, suite, 0, [])

    def test_dump_load(self, enclave, ctx, suite):
        tree = MacTree(enclave, num_hashes=2, num_buckets=4)
        tree.update_set(ctx, suite, 1, [bytes([1]) * 16])
        blob = tree.dump()
        tree2 = MacTree(enclave, num_hashes=2, num_buckets=4)
        tree2.load(blob)
        tree2.verify_set(ctx, suite, 1, [bytes([1]) * 16])
        with pytest.raises(ValueError):
            tree2.load(b"wrong-size")

    def test_invalid_geometry(self, enclave):
        with pytest.raises(ValueError):
            MacTree(enclave, num_hashes=0, num_buckets=4)
        with pytest.raises(ValueError):
            MacTree(enclave, num_hashes=8, num_buckets=4)
