"""Consistent-hash ring: ownership stability and preference lists."""

import pytest

from repro.errors import StoreError
from repro.ext.ring import DEFAULT_VNODES, HashRing, ring_position


def keys(count=400):
    return [f"ring-key-{i:05d}".encode() for i in range(count)]


def ring_of(*members, vnodes=DEFAULT_VNODES):
    ring = HashRing(vnodes=vnodes)
    for member in members:
        ring.add(member)
    return ring


NAMES = [f"node-{i}" for i in range(5)]


class TestBasics:
    def test_position_is_deterministic(self):
        assert ring_position(b"x") == ring_position(b"x")
        assert ring_position(b"x") != ring_position(b"y")

    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        with pytest.raises(StoreError):
            ring.owner(b"k")
        with pytest.raises(StoreError):
            ring.preference_list(b"k", 3)

    def test_membership_protocol(self):
        ring = ring_of(*NAMES)
        assert len(ring) == 5
        assert "node-0" in ring
        assert "ghost" not in ring
        assert ring.members == sorted(NAMES)
        ring.remove("node-0")
        assert "node-0" not in ring
        assert len(ring) == 4

    def test_duplicate_add_and_missing_remove_raise(self):
        ring = ring_of("a")
        with pytest.raises(StoreError, match="duplicate"):
            ring.add("a")
        with pytest.raises(StoreError, match="unknown"):
            ring.remove("b")

    def test_owner_is_deterministic_and_a_member(self):
        ring = ring_of(*NAMES)
        for key in keys(50):
            owner = ring.owner(key)
            assert owner in NAMES
            assert ring.owner(key) == owner

    def test_all_members_own_something(self):
        ring = ring_of(*NAMES)
        owners = {ring.owner(key) for key in keys()}
        assert owners == set(NAMES)


class TestPreferenceList:
    def test_starts_at_owner_and_is_distinct(self):
        ring = ring_of(*NAMES)
        for key in keys(50):
            prefs = ring.preference_list(key, 3)
            assert prefs[0] == ring.owner(key)
            assert len(prefs) == 3
            assert len(set(prefs)) == 3

    def test_n_capped_by_membership(self):
        ring = ring_of("a", "b")
        prefs = ring.preference_list(b"k", 5)
        assert sorted(prefs) == ["a", "b"]

    def test_replica_walk_is_successor_order(self):
        # The full preference list is a permutation of the membership:
        # the successor walk visits every member exactly once.
        ring = ring_of(*NAMES)
        assert sorted(ring.preference_list(b"any", len(NAMES))) == sorted(NAMES)


class TestStability:
    """The consistent-hashing contract: membership changes move only
    the minimal key ranges (satellite: ring-ownership stability)."""

    def test_add_moves_only_a_small_fraction(self):
        ring = ring_of(*NAMES)
        before = {key: ring.owner(key) for key in keys()}
        ring.add("node-5")
        moved = [key for key, owner in before.items()
                 if ring.owner(key) != owner]
        # Ideal share for the 6th node is 1/6 of keys; vnode variance
        # stays well under 2x on this deterministic keyset.
        assert 0 < len(moved) < len(before) / 3
        # Every moved key moved *to* the new node, never between
        # incumbents.
        assert {ring.owner(key) for key in moved} == {"node-5"}

    def test_remove_moves_only_the_drained_nodes_keys(self):
        ring = ring_of(*NAMES)
        before = {key: ring.owner(key) for key in keys()}
        ring.remove("node-2")
        for key, owner in before.items():
            if owner == "node-2":
                assert ring.owner(key) != "node-2"
            else:
                assert ring.owner(key) == owner

    def test_add_then_remove_restores_ownership(self):
        ring = ring_of(*NAMES)
        before = {key: ring.owner(key) for key in keys()}
        ring.add("transient")
        ring.remove("transient")
        assert {key: ring.owner(key) for key in keys()} == before

    def test_preference_lists_shift_minimally_on_add(self):
        ring = ring_of(*NAMES)
        before = {key: ring.preference_list(key, 2) for key in keys()}
        ring.add("node-5")
        changed = sum(
            1 for key, prefs in before.items()
            if ring.preference_list(key, 2) != prefs
        )
        # A new member may enter (or reorder) a 2-replica list only
        # where one of its vnode arcs landed; most lists are untouched.
        assert changed < len(before) / 2
