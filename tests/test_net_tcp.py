"""Real TCP deployment: attestation handshake, secure session, attacks."""

import struct

import pytest

from repro.core import ShieldStore, shield_opt
from repro.errors import AttestationError, KeyNotFoundError
from repro.net import TCPShieldClient, TCPShieldServer
from repro.sim import AttestationService


@pytest.fixture
def service():
    return AttestationService(b"ias-secret-for-tests")


@pytest.fixture
def server(service):
    store = ShieldStore(shield_opt(num_buckets=64, num_mac_hashes=32))
    srv = TCPShieldServer(store, service)
    srv.start()
    yield srv
    srv.close()


def connect(server, service, entropy=bytes(range(32))):
    return TCPShieldClient(
        server.address, service, server.store.enclave.measurement, entropy
    )


class TestEndToEnd:
    def test_operations(self, server, service):
        client = connect(server, service)
        try:
            client.set(b"k", b"v")
            assert client.get(b"k") == b"v"
            assert client.append(b"k", b"!") == b"v!"
            assert client.increment(b"ctr", 3) == 3
            client.delete(b"k")
            with pytest.raises(KeyNotFoundError):
                client.get(b"k")
        finally:
            client.close()

    def test_two_clients(self, server, service):
        a = connect(server, service, bytes(range(32)))
        b = connect(server, service, bytes(range(32, 64)))
        try:
            a.set(b"shared", b"from-a")
            assert b.get(b"shared") == b"from-a"
        finally:
            a.close()
            b.close()


class TestAttestationGate:
    def test_wrong_measurement_rejected(self, server, service):
        with pytest.raises(AttestationError):
            TCPShieldClient(
                server.address, service, bytes(32), bytes(range(32))
            )

    def test_wrong_service_secret_rejected(self, server):
        rogue = AttestationService(b"not-the-real-service")
        with pytest.raises(AttestationError):
            TCPShieldClient(
                server.address,
                rogue,
                server.store.enclave.measurement,
                bytes(range(32)),
            )


class TestWireTamper:
    def test_tampered_frame_drops_session_then_recovers(self, server, service):
        """A corrupted frame kills the session, not the deployment.

        The server must drop the session on the unauthenticated record
        (without crashing), count the incident, and admit a fresh
        handshake — which the resilient client performs transparently,
        so the next operation succeeds instead of erroring.
        """
        client = connect(server, service)
        try:
            client.set(b"k", b"v")
            # Hand-craft a corrupted frame on the raw socket.
            from repro.net.message import Request, encode_request

            frame = bytearray(
                client._channel.seal(encode_request(Request("get", b"k")))
            )
            frame[12] ^= 0xFF
            client._sock.sendall(struct.pack("<I", len(frame)) + bytes(frame))
            # The server drops the poisoned session; the client notices,
            # re-attests on a fresh connection, and the read succeeds.
            assert client.get(b"k") == b"v"
            assert client.stats.net_retries >= 1
            assert client.stats.net_reconnects >= 1
            assert server.stats_snapshot().tamper_drops >= 1
        finally:
            client.close()

    def test_tampering_never_yields_wrong_data(self, server, service):
        """Whatever tampering does, it never surfaces as silent corruption."""
        client = connect(server, service)
        try:
            client.set(b"k", b"v")
            from repro.net.message import Request, encode_request

            frame = bytearray(
                client._channel.seal(encode_request(Request("get", b"k")))
            )
            frame[12] ^= 0xFF
            client._sock.sendall(struct.pack("<I", len(frame)) + bytes(frame))
            for _ in range(3):
                assert client.get(b"k") == b"v"
        finally:
            client.close()
