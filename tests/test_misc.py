"""Utilities, errors, stats — the small shared pieces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import errors
from repro.core.stats import StoreStats
from repro.util import fnv1a, stable_seed


class TestFnv:
    def test_known_value(self):
        # FNV-1a 64-bit of empty input is the offset basis.
        assert fnv1a(b"") == 0xCBF29CE484222325

    def test_deterministic_across_processes(self):
        assert fnv1a(b"hello") == fnv1a(b"hello")
        assert fnv1a(b"hello") != fnv1a(b"hellp")

    @given(data=st.binary(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_fits_64_bits(self, data):
        assert 0 <= fnv1a(data) < 2**64


class TestStableSeed:
    def test_order_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_mixed_types(self):
        assert stable_seed(1, "x") == stable_seed(1, "x")
        assert 0 <= stable_seed("anything", 42) < 2**31


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj in (
                    errors.ReproError,
                )

    def test_key_not_found_is_key_error(self):
        # Callers may catch either the library error or builtin KeyError.
        assert issubclass(errors.KeyNotFoundError, KeyError)

    def test_replay_is_integrity(self):
        assert issubclass(errors.ReplayError, errors.IntegrityError)

    def test_rollback_is_sealing(self):
        assert issubclass(errors.RollbackError, errors.SealingError)

    def test_pointer_safety_is_enclave(self):
        assert issubclass(errors.PointerSafetyError, errors.EnclaveError)


class TestStoreStats:
    def test_merge_sums_everything(self):
        a = StoreStats(gets=3, sets=1, hint_skips=10)
        b = StoreStats(gets=2, deletes=4, snapshot_stall_us=1.5)
        merged = a.merge(b)
        assert merged.gets == 5
        assert merged.sets == 1
        assert merged.deletes == 4
        assert merged.hint_skips == 10
        assert merged.snapshot_stall_us == 1.5
        # Inputs untouched.
        assert a.gets == 3 and b.gets == 2

    def test_operations_counts_client_visible(self):
        stats = StoreStats(gets=2, sets=3, deletes=1, appends=4, increments=5)
        assert stats.operations == 15

    def test_snapshot_dict(self):
        stats = StoreStats(gets=7)
        d = stats.snapshot_dict()
        assert d["gets"] == 7
        assert "chain_steps" in d
