"""Thread clocks, the capacity-bound serializer, machine clocks."""

import pytest

from repro.sim.clock import MachineClock, PagingSerializer, ThreadClock


class TestThreadClock:
    def test_charge_accumulates(self):
        clock = ThreadClock(0)
        clock.charge(100)
        clock.charge(50.5)
        assert clock.cycles == 150.5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ThreadClock(0).charge(-1)

    def test_advance_to_only_forward(self):
        clock = ThreadClock(0)
        clock.charge(100)
        clock.advance_to(50)
        assert clock.cycles == 100
        clock.advance_to(200)
        assert clock.cycles == 200


class TestPagingSerializer:
    def test_single_thread_pays_exactly_cost(self):
        """One thread's serialized sections never add waiting."""
        serializer = PagingSerializer()
        clock = ThreadClock(0)
        clock.charge(1000)
        serializer.service(clock, 500)
        assert clock.cycles == 1500
        serializer.service(clock, 500)
        assert clock.cycles == 2000

    def test_capacity_bound_delays_contending_threads(self):
        """Threads collectively cannot exceed the serialized rate."""
        serializer = PagingSerializer()
        clocks = [ThreadClock(i) for i in range(4)]
        # Each thread does only serialized work: after each round the
        # laggards must sit at the cumulative serialized work mark.
        for _round in range(10):
            for clock in clocks:
                serializer.service(clock, 100)
        # Total serialized work = 4000; every thread must be at >= its
        # own 1000 and the last-serviced at the full 4000.
        assert serializer.work_cycles == 4000
        assert max(c.cycles for c in clocks) == 4000

    def test_fast_thread_not_blocked_when_underutilized(self):
        serializer = PagingSerializer()
        fast = ThreadClock(0)
        fast.charge(10_000)  # plenty of parallel work
        serializer.service(fast, 10)
        assert fast.cycles == 10_010  # no extra wait

    def test_reset(self):
        serializer = PagingSerializer()
        serializer.service(ThreadClock(0), 100)
        serializer.reset()
        assert serializer.work_cycles == 0
        assert serializer.serviced_faults == 0


class TestMachineClock:
    def test_elapsed_is_max(self):
        mc = MachineClock(3)
        mc.threads[0].charge(10)
        mc.threads[2].charge(99)
        assert mc.elapsed_cycles() == 99
        assert mc.total_cpu_cycles() == 109

    def test_reset(self):
        mc = MachineClock(2)
        mc.threads[0].charge(10)
        mc.paging.service(mc.threads[1], 5)
        mc.reset()
        assert mc.elapsed_cycles() == 0
        assert mc.paging.work_cycles == 0

    def test_needs_one_thread(self):
        with pytest.raises(ValueError):
            MachineClock(0)
