"""Property-based testing: ShieldStore vs a reference dict model.

Hypothesis drives random operation sequences against a live store and a
plain dict; any divergence in results, membership, or final contents is
a bug.  Runs against both the optimized and the unoptimized (ShieldBase)
configurations so every search/integrity path is exercised.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ShieldStore, shield_base, shield_opt
from repro.errors import KeyNotFoundError

_KEYS = st.sampled_from([f"key-{i}".encode() for i in range(12)])
_VALUES = st.binary(min_size=0, max_size=48)

_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), _KEYS, _VALUES),
        st.tuples(st.just("get"), _KEYS, st.just(b"")),
        st.tuples(st.just("delete"), _KEYS, st.just(b"")),
        st.tuples(st.just("append"), _KEYS, st.binary(min_size=1, max_size=8)),
        st.tuples(st.just("contains"), _KEYS, st.just(b"")),
    ),
    max_size=40,
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _apply(store, model, op, key, value):
    if op == "set":
        store.set(key, value)
        model[key] = value
    elif op == "get":
        if key in model:
            assert store.get(key) == model[key]
        else:
            with pytest.raises(KeyNotFoundError):
                store.get(key)
    elif op == "delete":
        if key in model:
            store.delete(key)
            del model[key]
        else:
            with pytest.raises(KeyNotFoundError):
                store.delete(key)
    elif op == "append":
        new = store.append(key, value)
        model[key] = model.get(key, b"") + value
        assert new == model[key]
    elif op == "contains":
        assert store.contains(key) == (key in model)


class TestModelEquivalence:
    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_shield_opt_matches_dict(self, ops):
        # Tiny bucket count maximizes collisions and chain churn.
        store = ShieldStore(shield_opt(num_buckets=4, num_mac_hashes=2))
        model = {}
        for op, key, value in ops:
            _apply(store, model, op, key, value)
        assert len(store) == len(model)
        assert dict(store.iter_items()) == model

    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_shield_base_matches_dict(self, ops):
        store = ShieldStore(shield_base(num_buckets=4, num_mac_hashes=2))
        model = {}
        for op, key, value in ops:
            _apply(store, model, op, key, value)
        assert dict(store.iter_items()) == model

    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_cached_store_matches_dict(self, ops):
        store = ShieldStore(
            shield_opt(num_buckets=4, num_mac_hashes=2, cache_bytes=4096)
        )
        model = {}
        for op, key, value in ops:
            _apply(store, model, op, key, value)
        assert dict(store.iter_items()) == model


class TestInvariants:
    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_mac_tree_always_consistent(self, ops):
        """After any operation sequence, every bucket set verifies."""
        store = ShieldStore(shield_opt(num_buckets=4, num_mac_hashes=2))
        model = {}
        for op, key, value in ops:
            _apply(store, model, op, key, value)
        ctx = store.enclave.context()
        for set_id in range(store.config.num_mac_hashes):
            by_bucket = {
                b: store._collect_bucket_macs(ctx, b)
                for b in store.mactree.buckets_of(set_id)
            }
            store._verify_set(ctx, set_id, by_bucket)

    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_allocator_balance(self, ops):
        """Live allocator bytes never go negative and shrink on delete."""
        store = ShieldStore(shield_opt(num_buckets=4, num_mac_hashes=2))
        model = {}
        for op, key, value in ops:
            _apply(store, model, op, key, value)
            assert store.allocator.bytes_live >= 0
