"""Design-space extensions: client-side model, ROTE counters,
dynamic repartitioning, and the SPEICHER-style LSM store."""

import pytest

from repro.core import Snapshotter, shield_opt
from repro.errors import (
    IntegrityError,
    KeyNotFoundError,
    ReplayError,
    RollbackError,
    StoreError,
)
from repro.ext import (
    BloomFilter,
    ClientKeyDirectory,
    ClientSideClient,
    DynamicShieldStore,
    PassiveStore,
    RoteCounterService,
    ShieldLSM,
)
from repro.sim import Machine, SealingService


# ---------------------------------------------------------------------------
# client-side encryption (§3.2's rejected design)
# ---------------------------------------------------------------------------
class TestClientSide:
    @pytest.fixture
    def deployment(self):
        store = PassiveStore()
        directory = ClientKeyDirectory(b"shared-master-secret-32-bytes!!!")
        return store, directory

    def test_roundtrip_and_multi_client(self, deployment):
        store, directory = deployment
        alice = ClientSideClient(store, directory)
        bob = ClientSideClient(store, directory)
        alice.set(b"k", b"value")
        assert bob.get(b"k") == b"value"

    def test_server_never_sees_plaintext(self, deployment):
        store, directory = deployment
        client = ClientSideClient(store, directory)
        client.set(b"account", b"balance=12345")
        blob = store._blobs[b"account"]
        assert b"balance" not in blob and b"12345" not in blob

    def test_namespace_isolation(self, deployment):
        store, directory = deployment
        a = ClientSideClient(store, directory, namespace="tenant-a")
        b = ClientSideClient(store, directory, namespace="tenant-b")
        a.set(b"k", b"secret-a")
        with pytest.raises(IntegrityError):
            b.get(b"k")  # wrong namespace keys fail authentication

    def test_rollback_detected_only_with_watermark(self, deployment):
        store, directory = deployment
        writer = ClientSideClient(store, directory)
        reader = ClientSideClient(store, directory)
        writer.set(b"k", b"v1")
        reader.get(b"k")
        writer.set(b"k", b"v2")
        store.rollback(b"k")
        # The writer knows version 2 exists -> detects the replay.
        with pytest.raises(ReplayError):
            writer.get(b"k")
        # The reader only ever saw v1 -> silently accepts stale data:
        # the §3.2 coordination problem, demonstrated.
        assert reader.get(b"k") == b"v1"
        # After syncing watermarks the reader detects it too.
        reader.sync_watermarks_from(writer)
        with pytest.raises(ReplayError):
            reader.get(b"k")

    def test_append_needs_round_trips(self, deployment):
        """Client-side append costs a fetch + a store network round trip
        (vs the server-side model's single request)."""
        store, directory = deployment
        client = ClientSideClient(store, directory)
        client.set(b"log", b"a")
        store.machine.reset_measurement()
        client.append(b"log", b"b")
        two_round_trips = 2 * store.machine.cost.net_rtt_us
        assert store.machine.elapsed_us() >= two_round_trips
        assert client.get(b"log") == b"ab"

    def test_increment(self, deployment):
        store, directory = deployment
        client = ClientSideClient(store, directory)
        assert client.increment(b"n", 5) == 5
        assert client.increment(b"n", 1) == 6

    def test_tampered_blob_detected(self, deployment):
        store, directory = deployment
        client = ClientSideClient(store, directory)
        client.set(b"k", b"v")
        blob = bytearray(store._blobs[b"k"])
        blob[9] ^= 1
        store._blobs[b"k"] = bytes(blob)
        with pytest.raises(IntegrityError):
            client.get(b"k")


# ---------------------------------------------------------------------------
# ROTE-style distributed counters
# ---------------------------------------------------------------------------
class TestRoteCounters:
    def test_increments_and_reads(self):
        svc = RoteCounterService(num_replicas=4)
        assert svc.create("c") == 0
        assert svc.increment(None, "c") == 1
        assert svc.increment(None, "c") == 2
        assert svc.read("c") == 2

    def test_rollback_detection_via_quorum(self):
        svc = RoteCounterService(num_replicas=5)
        for _ in range(3):
            svc.increment(None, "c")
        svc.check_not_rolled_back("c", 3)
        with pytest.raises(RollbackError):
            svc.check_not_rolled_back("c", 2)

    def test_minority_replica_rollback_is_outvoted(self):
        svc = RoteCounterService(num_replicas=5)
        for _ in range(4):
            svc.increment(None, "c")
        # Two replicas (a minority) are rolled back by the adversary.
        svc.replicas[0].rollback("c", 1)
        svc.replicas[1].rollback("c", 1)
        svc.crash_local_state()
        assert svc.recover_from_quorum("c") == 4
        with pytest.raises(RollbackError):
            svc.check_not_rolled_back("c", 3)

    def test_much_cheaper_than_sgx_counter(self):
        machine = Machine()
        from repro.sim import Enclave

        ctx = Enclave(machine, bytes(32)).context()
        svc = RoteCounterService()
        svc.increment(ctx, "c")
        rote_us = machine.elapsed_us()
        assert rote_us < machine.cost.monotonic_counter_us / 100

    def test_works_as_snapshotter_backend(self):
        from repro.core import ShieldStore

        store = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16))
        snapshotter = Snapshotter(
            SealingService(b"platform-secret-7"), RoteCounterService()
        )
        store.set(b"k", b"v")
        ctx = store.enclave.context()
        old = snapshotter.snapshot_bytes(ctx, store)
        snapshotter.snapshot_bytes(ctx, store)
        target = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16))
        with pytest.raises(RollbackError):
            snapshotter.restore(target.enclave.context(), old, target)

    def test_needs_three_replicas(self):
        with pytest.raises(ValueError):
            RoteCounterService(num_replicas=2)


# ---------------------------------------------------------------------------
# dynamic repartitioning
# ---------------------------------------------------------------------------
class TestDynamicStore:
    def test_resize_preserves_data(self):
        store = DynamicShieldStore(shield_opt(256, 128), initial_threads=1)
        for i in range(120):
            store.set(f"key-{i:03d}".encode(), f"value-{i}".encode())
        migrated = store.resize(4)
        assert migrated == 120
        assert store.num_threads == 4
        for i in range(120):
            assert store.get(f"key-{i:03d}".encode()) == f"value-{i}".encode()

    def test_shrink(self):
        store = DynamicShieldStore(shield_opt(256, 128), initial_threads=4)
        for i in range(60):
            store.set(f"key-{i}".encode(), b"v")
        store.resize(2)
        assert store.num_threads == 2
        assert len(store) == 60

    def test_resize_is_charged(self):
        store = DynamicShieldStore(shield_opt(256, 128), initial_threads=1)
        for i in range(80):
            store.set(f"key-{i}".encode(), b"v" * 32)
        before = store.elapsed_us()
        store.resize(4)
        assert store.elapsed_us() > before  # migration is not free

    def test_noop_resize(self):
        store = DynamicShieldStore(shield_opt(64, 32), initial_threads=2)
        assert store.resize(2) == 0

    def test_bounds(self):
        store = DynamicShieldStore(shield_opt(64, 32), initial_threads=1)
        with pytest.raises(StoreError):
            store.resize(0)
        with pytest.raises(StoreError):
            store.resize(10_000)

    def test_post_resize_parallelism(self):
        store = DynamicShieldStore(shield_opt(256, 128), initial_threads=1)
        for i in range(100):
            store.set(f"key-{i}".encode(), b"v")
        store.resize(4)
        store.machine.reset_measurement()
        for i in range(100):
            store.get(f"key-{i}".encode())
        busy = [t.cycles for t in store.machine.clock.threads[:4]]
        assert sum(1 for c in busy if c > 0) == 4


# ---------------------------------------------------------------------------
# SPEICHER-style LSM
# ---------------------------------------------------------------------------
class TestShieldLSM:
    def test_basic_semantics(self):
        lsm = ShieldLSM(memtable_bytes=100_000)
        lsm.set(b"k", b"v1")
        assert lsm.get(b"k") == b"v1"
        lsm.set(b"k", b"v2")
        assert lsm.get(b"k") == b"v2"
        lsm.delete(b"k")
        with pytest.raises(KeyNotFoundError):
            lsm.get(b"k")
        with pytest.raises(KeyNotFoundError):
            lsm.delete(b"k")

    def test_survives_flushes_and_compactions(self):
        lsm = ShieldLSM(memtable_bytes=1500, fanout=3)
        for i in range(200):
            lsm.set(f"key-{i:04d}".encode(), f"value-{i}".encode())
        assert lsm.flushes > 0 and lsm.compactions > 0
        for i in range(200):
            assert lsm.get(f"key-{i:04d}".encode()) == f"value-{i}".encode()
        assert len(lsm) == 200

    def test_newest_version_wins_across_runs(self):
        lsm = ShieldLSM(memtable_bytes=800)
        for round_no in range(4):
            for i in range(30):
                lsm.set(f"key-{i:02d}".encode(), f"round-{round_no}".encode())
        assert lsm.get(b"key-07") == b"round-3"

    def test_deletes_survive_compaction(self):
        lsm = ShieldLSM(memtable_bytes=600, fanout=2)
        for i in range(60):
            lsm.set(f"key-{i:02d}".encode(), b"v")
        lsm.delete(b"key-30")
        for i in range(60, 120):
            lsm.set(f"key-{i:03d}".encode(), b"v")  # force more merges
        with pytest.raises(KeyNotFoundError):
            lsm.get(b"key-30")

    def test_range_scan_merged(self):
        lsm = ShieldLSM(memtable_bytes=900)
        for i in range(50):
            lsm.set(f"key-{i:02d}".encode(), str(i).encode())
        lsm.delete(b"key-12")
        results = dict(lsm.range(b"key-10", b"key-15"))
        assert set(results) == {b"key-10", b"key-11", b"key-13", b"key-14"}

    def test_sstables_hold_ciphertext_only(self):
        lsm = ShieldLSM(memtable_bytes=400)
        for i in range(40):
            lsm.set(f"key-{i:02d}".encode(), b"confidential-payload")
        assert lsm.num_tables > 0
        for tables in lsm._levels:
            for table in tables:
                for record in table.records.values():
                    assert b"confidential" not in record

    def test_tampered_record_detected(self):
        lsm = ShieldLSM(memtable_bytes=400)
        for i in range(40):
            lsm.set(f"key-{i:02d}".encode(), b"value")
        table = next(t for tables in lsm._levels for t in tables)
        victim = next(iter(table.records))
        record = bytearray(table.records[victim])
        record[len(record) // 2] ^= 1
        table.records[victim] = bytes(record)
        with pytest.raises(IntegrityError):
            lsm.get(victim)

    def test_swapped_run_detected_on_range(self):
        lsm = ShieldLSM(memtable_bytes=400)
        for i in range(40):
            lsm.set(f"key-{i:02d}".encode(), b"v1")
        table = next(t for tables in lsm._levels for t in tables)
        stale = dict(table.records)
        for i in range(40):
            lsm.set(f"key-{i:02d}".encode(), b"v2")
        table.records = stale  # the host swaps the run back... and forgot
        table.root_mac = bytes(16)  # ...the enclave-held root cannot match
        with pytest.raises(IntegrityError):
            list(lsm.range(b"key-00", b"key-99"))

    def test_wal_written_per_mutation(self):
        lsm = ShieldLSM()
        for i in range(25):
            lsm.set(f"key-{i}".encode(), b"v")
        lsm.delete(b"key-3")
        assert lsm.wal_records == 26


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected=200)
        keys = [f"key-{i}".encode() for i in range(200)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_low_false_positive_rate(self):
        bloom = BloomFilter(expected=500)
        for i in range(500):
            bloom.add(f"present-{i}".encode())
        false_positives = sum(
            1 for i in range(2000) if f"absent-{i}".encode() in bloom
        )
        assert false_positives / 2000 < 0.08
