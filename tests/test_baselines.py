"""Comparator systems: semantics and the cost relationships they model."""

import pytest

from repro.baselines import (
    EleosStore,
    GrapheneMemcachedStore,
    InsecureStore,
    NaiveSgxStore,
)
from repro.errors import KeyNotFoundError, UnsupportedConfigError
from repro.sim import Machine
from repro.sim.cycles import PAGE_SIZE


ALL_BASELINES = [
    lambda m: InsecureStore(m, num_buckets=256),
    lambda m: NaiveSgxStore(m, num_buckets=256),
    lambda m: GrapheneMemcachedStore(m, num_buckets=256),
    lambda m: GrapheneMemcachedStore(m, num_buckets=256, secure=False),
    lambda m: EleosStore(m, num_buckets=256),
]


@pytest.fixture(params=range(len(ALL_BASELINES)))
def system(request):
    return ALL_BASELINES[request.param](Machine(num_threads=2))


class TestSemantics:
    def test_set_get(self, system):
        system.set(b"key", b"value")
        assert system.get(b"key") == b"value"

    def test_missing(self, system):
        with pytest.raises(KeyNotFoundError):
            system.get(b"missing")

    def test_overwrite(self, system):
        system.set(b"key", b"v1")
        system.set(b"key", b"v2-longer")
        assert system.get(b"key") == b"v2-longer"
        assert len(system) == 1

    def test_append(self, system):
        system.set(b"log", b"a")
        assert system.append(b"log", b"b") == b"ab"
        assert system.append(b"new", b"x") == b"x"

    def test_many_keys(self, system):
        for i in range(150):
            system.set(f"key-{i}".encode(), f"val-{i}".encode())
        for i in range(150):
            assert system.get(f"key-{i}".encode()) == f"val-{i}".encode()


class TestCostRelationships:
    def _measure(self, factory, pairs=600, value=b"v" * 256):
        machine = Machine()
        system = factory(machine)
        for i in range(pairs):
            system.set(f"key-{i}".encode(), value)
        machine.reset_measurement()
        for i in range(pairs):
            system.get(f"key-{i}".encode())
        return machine.elapsed_us()

    def test_naive_sgx_slower_than_insecure_beyond_epc(self):
        """With the table past the (scaled) EPC, paging dominates."""
        from dataclasses import replace

        from repro.sim.cycles import CostModel

        tiny_epc = replace(
            CostModel(), epc_effective_bytes=16 * PAGE_SIZE, llc_bytes=PAGE_SIZE
        )

        def insecure(m):
            return InsecureStore(m, num_buckets=512)

        def naive(m):
            return NaiveSgxStore(m, num_buckets=512)

        insecure_us = self._run_with(tiny_epc, insecure)
        naive_us = self._run_with(tiny_epc, naive)
        assert naive_us > insecure_us * 10

    @staticmethod
    def _run_with(cost, factory, pairs=300):
        import random

        machine = Machine(cost)
        system = factory(machine)
        for i in range(pairs):
            system.set(f"key-{i}".encode(), b"v" * 256)
        machine.reset_measurement()
        order = list(range(pairs))
        random.Random(7).shuffle(order)  # random access defeats paging
        for i in order:
            system.get(f"key-{i}".encode())
        return machine.elapsed_us()

    def test_graphene_pays_libos_tax(self):
        plain = self._measure(lambda m: NaiveSgxStore(m, num_buckets=1024))
        graphene = self._measure(
            lambda m: GrapheneMemcachedStore(m, num_buckets=1024)
        )
        assert graphene > plain

    def test_graphene_maintainer_hurts_multithread(self):
        def run(threads):
            machine = Machine(num_threads=threads)
            system = GrapheneMemcachedStore(machine, num_buckets=1024)
            for i in range(400):
                system.set(f"key-{i}".encode(), b"v")
            machine.reset_measurement()
            for i in range(400):
                system.get(f"key-{i}".encode())
            return 400 / machine.elapsed_us()

    # throughput at 4 threads should not be ~4x the 1-thread one
        assert run(4) < 3.0 * run(1)


class TestEleos:
    def test_capacity_limit(self):
        machine = Machine()
        eleos = EleosStore(machine, max_data_bytes=4096, num_buckets=16)
        eleos.set(b"a", b"x" * 1000)
        with pytest.raises(UnsupportedConfigError):
            eleos.set(b"b", b"x" * 4000)

    def test_bad_page_size(self):
        with pytest.raises(UnsupportedConfigError):
            EleosStore(Machine(), page_bytes=2048)

    def test_software_faults_counted(self):
        machine = Machine()
        eleos = EleosStore(machine, cache_bytes=8 * 4096, num_buckets=64)
        for i in range(100):
            eleos.set(f"key-{i}".encode(), b"v" * 3000)
        assert eleos.software_faults > 0

    def test_small_cache_slower_than_big_cache(self):
        def run(cache_pages):
            machine = Machine()
            eleos = EleosStore(
                machine, cache_bytes=cache_pages * 4096, num_buckets=256
            )
            for i in range(200):
                eleos.set(f"key-{i}".encode(), b"v" * 2000)
            machine.reset_measurement()
            for i in range(200):
                eleos.get(f"key-{i}".encode())
            return machine.elapsed_us()

        assert run(4) > run(4096)

    def test_chain_walk_touches_pages(self):
        machine = Machine()
        eleos = EleosStore(machine, num_buckets=1, cache_bytes=4 * 4096)
        for i in range(50):
            eleos.set(f"key-{i}".encode(), b"v" * 500)
        faults_before = eleos.software_faults
        eleos.get(b"key-0")  # tail of a 50-long chain: many page touches
        assert eleos.software_faults > faults_before
