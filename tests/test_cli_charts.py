"""CLI surface and ASCII chart rendering."""


from repro.cli import main
from repro.experiments.charts import bar_chart, line_chart, render_bars, render_sweep
from repro.experiments.common import TableResult


class TestCharts:
    def test_bar_chart_renders_all_series(self):
        text = bar_chart(
            "title",
            ["a", "b"],
            {"sys1": [10.0, 20.0], "sys2": [5.0, None]},
            unit=" Kop/s",
        )
        assert "title" in text
        assert "(unsupported)" in text
        assert text.count("sys1") == 2

    def test_bar_chart_scales_to_peak(self):
        text = bar_chart("t", ["x"], {"s": [100.0]}, width=10)
        assert "█" * 10 in text

    def test_line_chart_log_scale(self):
        text = line_chart(
            "sweep",
            [16, 64, 256, 1024],
            {"fast": [100, 100, 100, 100], "slow": [100, 1000, 10000, 60000]},
        )
        assert "sweep" in text
        assert "o=fast" in text and "x=slow" in text

    def test_line_chart_empty(self):
        assert "(no data)" in line_chart("t", [1], {"s": [None]})

    def test_render_helpers(self):
        result = TableResult(
            "Fig X",
            "demo",
            ["wss", "a", "b"],
            [[16, 10.0, 100.0], [32, 11.0, 1000.0]],
        )
        assert "Fig X" in render_sweep(result, "wss", ["a", "b"])
        assert "Fig X" in render_bars(result, "wss", ["a", "b"])


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "EPC" in out and "ecall" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "tampering detected: IntegrityError" in out or (
            "tampering detected: ReplayError" in out
        )

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_tiny_fig03_with_chart(self, capsys):
        assert main(["run", "fig03", "--scale", "0.0015", "--ops", "200",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "NoSGX" in out  # chart legend rendered
