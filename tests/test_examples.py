"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    # No defense may report a miss.
    assert "bug!" not in result.stdout
    assert "MISSED!" not in result.stdout


def test_example_inventory():
    names = {p.stem for p in _EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the paper reproduction ships >= 3 examples"
