"""Snapshot persistence: functional roundtrips and the Fig. 19 model."""

import pytest

from repro.core import (
    MODE_NAIVE,
    MODE_NONE,
    MODE_OPTIMIZED,
    ShieldStore,
    SnapshotPolicy,
    SnapshotScheduler,
    Snapshotter,
    shield_opt,
)
from repro.errors import (
    IntegrityError,
    ReplayError,
    RollbackError,
    SealingError,
    SnapshotError,
)
from repro.sim import MonotonicCounterService, SealingService


@pytest.fixture
def sealing():
    return SealingService(b"platform-secret-1")


@pytest.fixture
def counters():
    return MonotonicCounterService()


@pytest.fixture
def snapshotter(sealing, counters):
    return Snapshotter(sealing, counters)


def fresh_store(**overrides):
    return ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16, **overrides))


def populate(store, count=60):
    for i in range(count):
        store.set(f"key-{i}".encode(), f"value-{i}".encode() * (1 + i % 3))


class TestFunctionalSnapshots:
    def test_roundtrip(self, snapshotter):
        store = fresh_store()
        populate(store)
        blob = snapshotter.snapshot_bytes(store.enclave.context(), store)
        restored = fresh_store()
        snapshotter.restore(restored.enclave.context(), blob, restored)
        assert len(restored) == len(store)
        for i in range(60):
            key = f"key-{i}".encode()
            assert restored.get(key) == store.get(key)

    def test_restored_store_is_writable(self, snapshotter):
        store = fresh_store()
        populate(store, 20)
        blob = snapshotter.snapshot_bytes(store.enclave.context(), store)
        restored = fresh_store()
        snapshotter.restore(restored.enclave.context(), blob, restored)
        restored.set(b"new-key", b"new-value")
        restored.delete(b"key-3")
        assert restored.get(b"new-key") == b"new-value"
        assert not restored.contains(b"key-3")

    def test_snapshot_keeps_values_encrypted(self, snapshotter):
        store = fresh_store()
        store.set(b"secret-key-material", b"super-secret-value")
        blob = snapshotter.snapshot_bytes(store.enclave.context(), store)
        assert b"secret-key-material" not in blob
        assert b"super-secret-value" not in blob

    def test_restore_requires_empty_store(self, snapshotter):
        store = fresh_store()
        populate(store, 5)
        blob = snapshotter.snapshot_bytes(store.enclave.context(), store)
        non_empty = fresh_store()
        non_empty.set(b"x", b"y")
        with pytest.raises(SnapshotError):
            snapshotter.restore(non_empty.enclave.context(), blob, non_empty)

    def test_bad_magic_rejected(self, snapshotter):
        store = fresh_store()
        with pytest.raises(SnapshotError):
            snapshotter.restore(store.enclave.context(), b"NOTASNAP" + bytes(64), store)

    def test_rollback_detected(self, snapshotter):
        store = fresh_store()
        populate(store, 10)
        ctx = store.enclave.context()
        old_blob = snapshotter.snapshot_bytes(ctx, store)
        store.set(b"newer", b"data")
        snapshotter.snapshot_bytes(ctx, store)  # bumps the counter
        target = fresh_store()
        with pytest.raises(RollbackError):
            snapshotter.restore(target.enclave.context(), old_blob, target)

    def test_sealed_metadata_bound_to_enclave(self, sealing, counters, snapshotter):
        store = fresh_store()
        populate(store, 5)
        blob = snapshotter.snapshot_bytes(store.enclave.context(), store)
        # A different platform cannot unseal the metadata.
        other = Snapshotter(SealingService(b"other-platform!!!"), counters)
        target = fresh_store()
        with pytest.raises(SealingError):
            other.restore(target.enclave.context(), blob, target)

    def test_tampered_entry_mac_detected_at_restore(self, snapshotter):
        store = fresh_store()
        populate(store, 20)
        blob = bytearray(snapshotter.snapshot_bytes(store.enclave.context(), store))
        blob[-3] ^= 0x10  # inside the last record's MAC
        target = fresh_store()
        with pytest.raises((ReplayError, IntegrityError, SnapshotError)):
            snapshotter.restore(target.enclave.context(), bytes(blob), target)

    def test_tampered_ciphertext_detected_at_get(self, snapshotter):
        store = fresh_store()
        populate(store, 20)
        blob = bytearray(snapshotter.snapshot_bytes(store.enclave.context(), store))
        blob[-25] ^= 0x10  # inside the last record's ciphertext
        target = fresh_store()
        snapshotter.restore(target.enclave.context(), bytes(blob), target)
        detected = 0
        for i in range(20):
            try:
                target.get(f"key-{i}".encode())
            except (IntegrityError, ReplayError):
                detected += 1
        assert detected == 1


class TestSnapshotScheduler:
    def _run(self, mode, writes=True, ops=4000, interval_us=3000.0):
        store = fresh_store()
        populate(store, 30)
        store.machine.reset_measurement()
        policy = SnapshotPolicy(mode=mode, interval_us=interval_us)
        scheduler = SnapshotScheduler(store, policy)
        for i in range(ops):
            if writes and i % 2 == 0:
                store.set(f"key-{i % 30}".encode(), b"x" * 10)
            else:
                store.get(f"key-{i % 30}".encode())
            scheduler.tick(is_write=writes and i % 2 == 0)
        return scheduler, store.machine.elapsed_us(), ops

    def test_modes_are_ordered(self):
        _s_none, t_none, n = self._run(MODE_NONE)
        sched_naive, t_naive, _ = self._run(MODE_NAIVE)
        sched_opt, t_opt, _ = self._run(MODE_OPTIMIZED)
        assert sched_naive.snapshots_taken > 0
        assert sched_opt.snapshots_taken > 0
        assert t_none < t_opt < t_naive

    def test_read_only_optimized_is_nearly_free(self):
        _sched, t_none, _ = self._run(MODE_NONE, writes=False)
        sched_opt, t_opt, _ = self._run(MODE_OPTIMIZED, writes=False)
        assert sched_opt.snapshots_taken > 0
        assert t_opt < t_none * 1.10

    def test_naive_stall_recorded(self):
        scheduler, _t, _n = self._run(MODE_NAIVE)
        assert scheduler.total_stall_us > 0

    def test_temp_table_used_during_window(self):
        store = fresh_store()
        populate(store, 30)
        store.machine.reset_measurement()
        policy = SnapshotPolicy(mode=MODE_OPTIMIZED, interval_us=500.0)
        scheduler = SnapshotScheduler(store, policy)
        temp_writes = 0
        for i in range(3000):
            store.set(f"key-{i % 30}".encode(), b"y" * 10)
            scheduler.tick(is_write=True)
            temp_writes = max(temp_writes, scheduler.temp_table_writes)
        assert temp_writes > 0

    def test_bad_mode_rejected(self):
        with pytest.raises(SnapshotError):
            SnapshotPolicy(mode="sometimes")

    def test_counters_mirrored_into_store_stats(self):
        """Snapshot activity must reach StoreStats, not just the
        scheduler's private counters — ``repro stats`` and experiment
        reports read the store's stats."""
        store = fresh_store()
        populate(store, 30)
        store.machine.reset_measurement()
        policy = SnapshotPolicy(mode=MODE_OPTIMIZED, interval_us=500.0)
        scheduler = SnapshotScheduler(store, policy)
        for i in range(3000):
            store.set(f"key-{i % 30}".encode(), b"z" * 10)
            scheduler.tick(is_write=True)
        assert scheduler.snapshots_taken > 0
        assert store.stats.snapshots == scheduler.snapshots_taken
        assert store.stats.snapshot_stall_us == pytest.approx(
            scheduler.total_stall_us
        )
        assert store.stats.snapshot_stall_us > 0
        assert store.stats.temp_table_merges > 0

    def test_overlapping_window_pays_pending_merge(self):
        """An interval shorter than the copy-on-write window must not
        reset ``temp_table_writes`` without charging the pending merge
        (Algorithm 1 line 11)."""

        def begin_snapshot_cycles(pending_writes):
            store = fresh_store()
            populate(store, 10)
            store.machine.reset_measurement()
            policy = SnapshotPolicy(mode=MODE_OPTIMIZED, interval_us=100.0)
            scheduler = SnapshotScheduler(store, policy)
            # A previous snapshot's window is still open when the next
            # interval fires, with writes mirrored to the temp table.
            scheduler.window_end_us = float("inf")
            scheduler.temp_table_writes = pending_writes
            clock = store.machine.clock.threads[0]
            before = clock.cycles
            scheduler._begin_snapshot()
            assert scheduler.temp_table_writes == 0
            # The open window was finished (merged), not discarded.
            assert store.stats.temp_table_merges == 1
            return clock.cycles - before

        delta = begin_snapshot_cycles(7) - begin_snapshot_cycles(0)
        assert delta == pytest.approx(
            7 * SnapshotScheduler.MERGE_CYCLES_PER_ENTRY
        )


class TestMalformedSnapshots:
    """Untrusted snapshot bytes must fail cleanly (never struct.error)."""

    def _blob(self, snapshotter):
        store = fresh_store()
        populate(store, 12)
        return snapshotter.snapshot_bytes(store.enclave.context(), store)

    def test_every_truncation_raises_snapshot_error(self, snapshotter):
        blob = self._blob(snapshotter)
        for cut in range(0, len(blob), 13):
            target = fresh_store()
            with pytest.raises(SnapshotError):
                snapshotter.restore(target.enclave.context(), blob[:cut], target)

    def test_truncation_at_every_framing_boundary(self, snapshotter):
        blob = self._blob(snapshotter)
        # magic | counter | sealed_len | (sealed) | count | first record
        for cut in (0, 4, 8, 12, 16, 19, len(blob) - 1):
            target = fresh_store()
            with pytest.raises(SnapshotError):
                snapshotter.restore(target.enclave.context(), blob[:cut], target)

    def test_trailing_garbage_rejected(self, snapshotter):
        blob = self._blob(snapshotter)
        for extra in (b"\x00", b"junk-after-the-last-record"):
            target = fresh_store()
            with pytest.raises(SnapshotError, match="trailing"):
                snapshotter.restore(
                    target.enclave.context(), blob + extra, target
                )

    def test_oversized_length_field_rejected(self, snapshotter):
        blob = bytearray(self._blob(snapshotter))
        # Claim a sealed blob far larger than the file.
        blob[16:20] = (2**31).to_bytes(4, "little")
        target = fresh_store()
        with pytest.raises(SnapshotError):
            snapshotter.restore(target.enclave.context(), bytes(blob), target)
