"""Golden cost pins: canonical operations' simulated costs.

The calibration in DESIGN.md §5 took real effort to land inside the
paper's bands; these pins make *any* drift in the charging paths visible
immediately.  The bounds are deliberately loose (±35%) — they catch
accidental double-charging or dropped charges, not tuning.
"""

import pytest

from repro.core import ShieldStore, shield_opt
from repro.sim import Enclave, Machine
from repro.sim.memory import REGION_UNTRUSTED


def cycles_of(action, machine):
    machine.reset_measurement()
    action()
    return machine.clock.elapsed_cycles()


class TestPrimitiveCosts:
    def test_untrusted_dram_touch(self):
        machine = Machine()
        ctx = machine.context(0)
        base = machine.memory.alloc(4096, REGION_UNTRUSTED, materialize=False)
        cost = cycles_of(lambda: machine.memory.touch(ctx, base, 8, False), machine)
        assert cost == pytest.approx(360, rel=0.01)  # one DRAM miss

    def test_llc_hit(self):
        machine = Machine()
        ctx = machine.context(0)
        base = machine.memory.alloc(4096, REGION_UNTRUSTED, materialize=False)
        machine.memory.touch(ctx, base, 8, False)
        cost = cycles_of(lambda: machine.memory.touch(ctx, base, 8, False), machine)
        assert cost == pytest.approx(14, rel=0.01)

    def test_epc_fault(self):
        machine = Machine()
        enclave = Enclave(machine, bytes(32))
        ctx = enclave.context()
        base = enclave.alloc(8192, materialize=False)
        cost = cycles_of(lambda: machine.memory.touch(ctx, base, 8, False), machine)
        # fault (206k) + MEE read of the line.
        assert 206_000 <= cost <= 209_000

    def test_ecall(self):
        machine = Machine()
        enclave = Enclave(machine, bytes(32))
        cost = cycles_of(lambda: enclave.enter(0), machine)
        assert cost == 8_000

    def test_aes_512_bytes(self):
        machine = Machine()
        ctx = machine.context(0)
        cost = cycles_of(lambda: ctx.charge_aes(512), machine)
        assert cost == 160 + 32 * 36


class TestStoreOperationCosts:
    """Pinned at num_buckets=1024, 200 x 64B pairs, fast suite."""

    @pytest.fixture
    def store(self):
        s = ShieldStore(shield_opt(num_buckets=1024, num_mac_hashes=512))
        for i in range(200):
            s.set(f"key-{i:03d}".encode(), b"v" * 64)
        # Warm the LLC with one pass so pins measure steady state.
        for i in range(200):
            s.get(f"key-{i:03d}".encode())
        return s

    def test_get_cost_pin(self, store):
        cost = cycles_of(lambda: store.get(b"key-050"), store.machine)
        assert 3_000 < cost < 13_000, cost

    def test_set_update_cost_pin(self, store):
        cost = cycles_of(lambda: store.set(b"key-050", b"w" * 64), store.machine)
        assert 6_000 < cost < 22_000, cost

    def test_insert_cost_pin(self, store):
        cost = cycles_of(lambda: store.set(b"brand-new-key", b"w" * 64), store.machine)
        # Insert pays the two-step search + MAC-bucket prepend.
        assert 5_000 < cost < 30_000, cost

    def test_miss_cost_pin(self, store):
        from repro.errors import KeyNotFoundError

        def miss():
            with pytest.raises(KeyNotFoundError):
                store.get(b"definitely-absent")

        cost = cycles_of(miss, store.machine)
        assert 800 < cost < 15_000, cost

    def test_relative_order(self, store):
        get = cycles_of(lambda: store.get(b"key-060"), store.machine)
        update = cycles_of(lambda: store.set(b"key-060", b"x" * 64), store.machine)
        assert update > get  # writes re-encrypt + update integrity state
