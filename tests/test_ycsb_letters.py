"""YCSB lettered workloads, including E (scans) on the ordered stores."""

import pytest

from repro.ext import RangeShieldStore, ShieldLSM
from repro.workloads import SMALL
from repro.workloads.ycsb_letters import (
    ScanOperation,
    ScanStream,
    letter_stream,
    run_scan_stream,
)


class TestCatalog:
    def test_letters_map_to_table2(self):
        assert letter_stream("A", SMALL, 100).spec.name == "RD50_Z"
        assert letter_stream("b", SMALL, 100).spec.name == "RD95_Z"
        assert letter_stream("C", SMALL, 100).spec.name == "RD100_Z"
        assert letter_stream("D", SMALL, 100).spec.name == "RD95_L"
        assert letter_stream("F", SMALL, 100).spec.name == "RMW50_Z"

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            letter_stream("Z", SMALL, 100)

    def test_e_is_scan_stream(self):
        assert isinstance(letter_stream("E", SMALL, 100), ScanStream)


class TestWorkloadE:
    def test_mix(self):
        stream = ScanStream(SMALL, 200, seed=3)
        ops = list(stream.operations(400))
        scans = [op for op in ops if isinstance(op, ScanOperation)]
        inserts = [op for op in ops if not isinstance(op, ScanOperation)]
        assert 0.9 < len(scans) / len(ops) < 0.99
        assert all(1 <= s.count <= 100 for s in scans)
        # Inserts use fresh keys past the preload population.
        assert all(op.key not in {} for op in inserts)

    def test_runs_on_range_store(self):
        store = RangeShieldStore(segment_size=16)
        stream = ScanStream(SMALL, 60, seed=5, max_scan_length=10)
        for op in stream.load_operations():
            store.set(op.key, op.value)
        rows = run_scan_stream(store, stream, 40)
        assert rows > 0
        assert len(store) >= 60

    def test_runs_on_lsm(self):
        lsm = ShieldLSM(memtable_bytes=8 * 1024)
        stream = ScanStream(SMALL, 60, seed=6, max_scan_length=10)
        for op in stream.load_operations():
            lsm.set(op.key, op.value)
        rows = run_scan_stream(lsm, stream, 30)
        assert rows > 0

    def test_hash_store_cannot_serve_e(self):
        """The paper's §7 limitation, as an API fact."""
        from repro.core import ShieldStore, shield_opt

        store = ShieldStore(shield_opt(num_buckets=16, num_mac_hashes=8))
        assert not hasattr(store, "range")
