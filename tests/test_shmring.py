"""Edge cases of the sealed shared-memory ring data plane.

Ring-level tests drive one :class:`~repro.core.shmring.ShmRing` from
two threads (the SPSC discipline does not care whether the peer is a
thread or a process); pool-level tests exercise the real two-process
plane through :class:`~repro.core.procpool.ProcessPartitionPool` with
``data_plane="shm"``.
"""

import threading
import time

import pytest

import repro.core.procpool as procpool
import repro.core.shmring as shmring
from repro.core import process_mode_supported, shield_opt
from repro.core.procpool import ProcessPartitionPool, _pipe_channel
from repro.core.shmring import (
    HEADER_SIZE,
    Doorbell,
    RingTimeout,
    ShmRing,
    shm_supported,
)
from repro.errors import WorkerError
from repro.net.message import STATUS_OK, Request
from repro.sim.faults import FaultPlan, FaultRule, injected

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="platform has no multiprocessing.shared_memory"
)

SECRET = bytes(range(32))


def _ring_pair(num_slots=4, slot_size=64):
    """One segment, both roles — producer and consumer ends in-process."""
    prod = ShmRing.create("producer", num_slots, slot_size)
    cons = ShmRing.attach(prod.name, "consumer", num_slots, slot_size)
    return prod, cons


class TestRingFraming:
    def test_wrap_around_at_slot_boundaries(self):
        # 4 x 64B ring: frames pad to whole slots, so the 5th frame's
        # physical offset wraps past the end of the data region.
        prod, cons = _ring_pair(num_slots=4, slot_size=64)
        try:
            frames = [bytes([i]) * (50 + i) for i in range(16)]
            for i, frame in enumerate(frames):
                assert prod.write(frame, deadline=time.monotonic() + 5)
                assert cons.read() == frame, f"frame {i} corrupted at wrap"
            # Counters are monotonic (not reset at the wrap point).
            assert prod._local == cons._local > prod.capacity
        finally:
            cons.close()
            prod.close()

    def test_frame_split_across_physical_end(self):
        # Force a frame whose payload bytes physically straddle the end
        # of the buffer: 3 slots consumed, then a 2-slot frame.
        prod, cons = _ring_pair(num_slots=4, slot_size=64)
        try:
            assert prod.write(b"x" * 150)  # 3 slots
            assert cons.read() == b"x" * 150
            straddler = bytes(range(256))[: 2 * 64 - 10]
            assert prod.write(straddler)  # slots 3..0: wraps
            assert cons.read() == straddler
        finally:
            cons.close()
            prod.close()

    def test_larger_than_ring_frame_streams_through(self):
        prod, cons = _ring_pair(num_slots=4, slot_size=64)
        big = bytes(i % 251 for i in range(5000))  # ~20x ring capacity
        out = []

        def consume():
            out.append(cons.read(deadline=time.monotonic() + 30))

        reader = threading.Thread(target=consume)
        try:
            reader.start()
            assert prod.write(big, deadline=time.monotonic() + 30)
            reader.join(timeout=30)
            assert not reader.is_alive()
            assert out == [big]
            assert prod.frames == cons.frames == 1
        finally:
            reader.join(timeout=1)
            cons.close()
            prod.close()


class TestRingFullPolicy:
    def test_full_ring_blocks_until_consumer_drains(self):
        prod, cons = _ring_pair(num_slots=4, slot_size=64)
        try:
            for i in range(4):
                assert prod.write(bytes([i]) * 40)  # 1 slot each -> full
            started = threading.Event()
            done = threading.Event()

            def blocked_write():
                started.set()
                prod.write(b"\xAA" * 40, deadline=time.monotonic() + 30)
                done.set()

            writer = threading.Thread(target=blocked_write)
            writer.start()
            started.wait(timeout=5)
            time.sleep(0.05)
            assert not done.is_set(), "write admitted into a full ring"
            assert cons.read() == b"\x00" * 40  # free one slot
            writer.join(timeout=30)
            assert done.is_set()
            assert prod.full_waits >= 1
            for i in range(1, 4):
                assert cons.read() == bytes([i]) * 40
            assert cons.read() == b"\xAA" * 40
        finally:
            cons.close()
            prod.close()

    def test_full_ring_shed_refuses_with_zero_bytes_written(self):
        prod, cons = _ring_pair(num_slots=4, slot_size=64)
        try:
            for i in range(4):
                assert prod.write(bytes([i]) * 40)
            head_before = prod._local
            assert prod.write(b"\xBB" * 40, block=False) is False
            assert prod._local == head_before, "shed write left bytes behind"
            # Drain one slot and the same frame is admitted cleanly.
            assert cons.read() == b"\x00" * 40
            assert prod.write(b"\xBB" * 40, block=False) is True
            for i in range(1, 4):
                assert cons.read() == bytes([i]) * 40
            assert cons.read() == b"\xBB" * 40
        finally:
            cons.close()
            prod.close()

    def test_shed_refuses_larger_than_ring_frames(self):
        # A frame that can only stream cannot be admitted atomically,
        # so the non-blocking path must refuse it outright.
        prod, cons = _ring_pair(num_slots=4, slot_size=64)
        try:
            assert prod.write(b"\xCC" * 5000, block=False) is False
            assert prod.data_available() == 0
        finally:
            cons.close()
            prod.close()


class TestRingWaits:
    def test_read_deadline_expires_as_ring_timeout(self):
        prod, cons = _ring_pair()
        try:
            with pytest.raises(RingTimeout):
                cons.read(deadline=time.monotonic() + 0.05)
        finally:
            cons.close()
            prod.close()

    def test_poll_reports_readiness_without_consuming(self):
        prod, cons = _ring_pair()
        try:
            assert cons.poll(0) is False
            prod.write(b"ready")
            assert cons.poll(0) is True
            assert cons.read() == b"ready"
            assert cons.poll(0) is False
        finally:
            cons.close()
            prod.close()

    def test_attach_resumes_mid_stream_counters(self):
        prod, cons = _ring_pair()
        try:
            prod.write(b"first")
            assert cons.read() == b"first"
            prod.write(b"second")
            # A fresh attach picks the counters up from the header
            # instead of assuming an empty ring.
            cons2 = ShmRing.attach(
                prod.name, "consumer", prod.num_slots, prod.slot_size
            )
            try:
                assert cons2.read() == b"second"
            finally:
                cons2.close()
        finally:
            cons.close()
            prod.close()


@pytest.mark.skipif(
    not process_mode_supported(), reason="process mode unsupported here"
)
class TestShmPlanePool:
    def _pool(self, **kwargs):
        config = shield_opt(num_buckets=32, num_mac_hashes=8)
        return ProcessPartitionPool(
            config, 1, SECRET, data_plane="shm", **kwargs
        )

    def test_round_trip_and_transport_counters(self):
        pool = self._pool()
        try:
            response = pool.execute(
                0, Request("set", b"ring-key", b"ring-value")
            )
            assert response.status == STATUS_OK
            response = pool.execute(0, Request("get", b"ring-key"))
            assert response.status == STATUS_OK
            assert response.value == b"ring-value"
            stats = pool.transport_stats()
            assert stats.ring_frames >= 4  # two requests + two replies
            assert stats.ring_bytes > 0
            assert stats.ring_max_occupancy > 0
        finally:
            pool.close()

    def test_no_plaintext_in_ring_buffers(self):
        # The rings live in host-visible shared memory: only sealed
        # records may land there.  The marker bytes must never appear
        # in either ring's buffer, in-flight or as residue.
        marker_key = b"MARKER-KEY-7f3a9c"
        marker_val = b"MARKER-VALUE-plaintext-must-not-cross-1b8e"
        pool = self._pool()
        try:
            pool.execute(0, Request("set", marker_key, marker_val))
            response = pool.execute(0, Request("get", marker_key))
            assert response.value == marker_val
            plane = pool.workers[0].plane
            for ring in (plane.req, plane.rep):
                residue = bytes(ring.shm.buf[HEADER_SIZE:])
                assert marker_key not in residue
                assert marker_val not in residue
        finally:
            pool.close()

    def test_stale_incarnation_record_does_not_authenticate(
        self, monkeypatch
    ):
        # Respawn rotates both the channel nonce AND the rings: a
        # record sealed under incarnation A, replayed into incarnation
        # B's fresh request ring, must kill the stream unanswered.
        nonces = []
        real_nonce = procpool._fresh_nonce

        def recording_nonce():
            nonces.append(real_nonce())
            return nonces[-1]

        monkeypatch.setattr(procpool, "_fresh_nonce", recording_nonce)
        config = shield_opt(num_buckets=32, num_mac_hashes=8)
        pool = ProcessPartitionPool(config, 1, SECRET, data_plane="shm")
        try:
            replica = _pipe_channel(
                SECRET, 0, nonces[0], "client", config.suite_name
            )
            tape = [
                replica.seal(bytes([procpool.OP_PING])) for _ in range(4)
            ]
            old_ring_names = {
                pool.workers[0].plane.req.name,
                pool.workers[0].plane.rep.name,
            }
            pool.workers[0].process.terminate()
            with pytest.raises(WorkerError):
                pool.execute(0, Request("get", b"x"))
            assert len(nonces) == 2 and nonces[0] != nonces[1]
            handle = pool.workers[0]
            new_ring_names = {
                handle.plane.req.name,
                handle.plane.rep.name,
            }
            assert not (old_ring_names & new_ring_names), (
                "respawn must allocate fresh rings"
            )
            # Replay incarnation A's seq-1 record (the sequence the new
            # session expects next).  The stale nonce means a different
            # channel key: authentication fails and the worker drops
            # the stream without replying.
            with handle.lock:
                handle.plane.send_raw(tape[1])
                handle.process.join(timeout=10)
                assert not handle.process.is_alive()
                assert handle.plane.poll(0.2) is False, (
                    "stale-incarnation record must not be answered"
                )
        finally:
            pool.close()

    def test_doorbell_drop_degrades_to_latency_only(self):
        # Every parent->worker doorbell byte is dropped; the worker's
        # bounded naps must still observe ring progress, so requests
        # keep completing — slower, never deadlocked.
        plan = FaultPlan(
            [FaultRule(point="shmring.doorbell", kind="drop")], seed=7
        )
        pool = self._pool()
        try:
            with injected(plan):
                for i in range(3):
                    response = pool.execute(
                        0, Request("set", b"k%d" % i, b"v%d" % i)
                    )
                    assert response.status == STATUS_OK
                # Rings fire only when the peer is armed at publish time
                # (timing-dependent), so force one attempt: the drop
                # must swallow it without counting it as sent.
                pool.workers[0].plane._doorbell.ring()
            assert plan.fires(point="shmring.doorbell") >= 1
            stats = pool.transport_stats()
            assert stats.ring_doorbell_rings == 0, (
                "dropped doorbells must not be counted as sent"
            )
        finally:
            pool.close()

    def test_spin_budget_is_zero_on_single_core(self):
        # The switchless spin only pays when the peer can run
        # concurrently; a 1-CPU host must go straight to the doorbell.
        assert shmring.spin_budget(1) == 0
        assert shmring.spin_budget(8) > 0
        assert shmring.SPIN_CHECKS == shmring.spin_budget()
