"""Model-based testing of the shielded LSM across flush/compaction."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.ext import ShieldLSM

_KEYS = st.sampled_from([f"k{i:02d}".encode() for i in range(14)])
_VALUES = st.binary(min_size=0, max_size=32)

_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), _KEYS, _VALUES),
        st.tuples(st.just("get"), _KEYS, st.just(b"")),
        st.tuples(st.just("delete"), _KEYS, st.just(b"")),
        st.tuples(st.just("range"), _KEYS, st.just(b"")),
        st.tuples(st.just("flush"), _KEYS, st.just(b"")),
    ),
    max_size=40,
)

_SETTINGS = settings(
    max_examples=35,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestLsmModel:
    @given(ops=_OPERATIONS, memtable=st.sampled_from([256, 1024, 64 * 1024]))
    @_SETTINGS
    def test_matches_dict(self, ops, memtable):
        """Tiny memtables force flushes and compactions mid-sequence;
        the observable behaviour must stay identical to a dict."""
        lsm = ShieldLSM(memtable_bytes=memtable, fanout=2)
        model = {}
        for op, key, value in ops:
            if op == "set":
                lsm.set(key, value)
                model[key] = value
            elif op == "get":
                if key in model:
                    assert lsm.get(key) == model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        lsm.get(key)
            elif op == "delete":
                if key in model:
                    lsm.delete(key)
                    del model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        lsm.delete(key)
            elif op == "range":
                end = key + b"~"
                got = dict(lsm.range(key, end))
                expected = {k: v for k, v in model.items() if key <= k < end}
                assert got == expected
            elif op == "flush":
                lsm.flush()
        assert len(lsm) == len(model)
        assert dict(lsm.range(b"", b"\xff")) == model

    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_wal_covers_every_mutation(self, ops):
        lsm = ShieldLSM(memtable_bytes=512, fanout=2)
        mutations = 0
        for op, key, value in ops:
            try:
                if op == "set":
                    lsm.set(key, value)
                    mutations += 1
                elif op == "delete":
                    lsm.delete(key)
                    mutations += 1
                elif op == "flush":
                    lsm.flush()
            except KeyNotFoundError:
                pass
        assert lsm.wal_records == mutations
