"""Workload substrate: distributions, mixes, streams, data specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    APPEND_WORKLOADS,
    LARGE,
    MEDIUM,
    SMALL,
    LatestGenerator,
    OperationStream,
    UniformGenerator,
    WorkloadSpec,
    ZipfianGenerator,
    data_spec,
    make_distribution,
    workload,
    TABLE2_WORKLOADS,
)


class TestDistributions:
    def test_uniform_range_and_determinism(self):
        gen_a = UniformGenerator(1000, seed=1)
        gen_b = UniformGenerator(1000, seed=1)
        draws = [gen_a.next() for _ in range(500)]
        assert all(0 <= d < 1000 for d in draws)
        assert draws == [gen_b.next() for _ in range(500)]

    def test_zipfian_is_skewed(self):
        gen = ZipfianGenerator(10_000, theta=0.99, seed=2, scrambled=False)
        draws = [gen.next() for _ in range(5000)]
        top_decile = sum(1 for d in draws if d < 1000)
        assert top_decile > 0.6 * len(draws)  # heavy head

    def test_zipfian_scrambling_spreads_hot_keys(self):
        plain = ZipfianGenerator(10_000, seed=3, scrambled=False)
        scrambled = ZipfianGenerator(10_000, seed=3, scrambled=True)
        plain_top = max(set(plain.next() for _ in range(500)))
        scrambled_draws = [scrambled.next() for _ in range(500)]
        assert max(scrambled_draws) > plain_top  # spread over key space

    def test_zipfian_lower_theta_is_flatter(self):
        def head_mass(theta):
            gen = ZipfianGenerator(10_000, theta=theta, seed=4, scrambled=False)
            draws = [gen.next() for _ in range(4000)]
            return sum(1 for d in draws if d < 100)

        assert head_mass(0.99) > head_mass(0.5)

    def test_latest_prefers_recent(self):
        gen = LatestGenerator(1000, seed=5)
        draws = [gen.next() for _ in range(2000)]
        assert all(0 <= d < 1000 for d in draws)
        recent = sum(1 for d in draws if d >= 900)
        assert recent > 0.5 * len(draws)

    def test_latest_window_moves(self):
        gen = LatestGenerator(100, seed=6)
        gen.set_count(200)
        draws = [gen.next() for _ in range(500)]
        assert max(draws) >= 150

    def test_factory(self):
        for name in ("uniform", "zipfian", "latest"):
            assert make_distribution(name, 10).next() in range(10)
        with pytest.raises(ValueError):
            make_distribution("gaussian", 10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)

    @given(n=st.integers(min_value=1, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_zipfian_range_property(self, n):
        gen = ZipfianGenerator(n, seed=9)
        assert all(0 <= gen.next() < n for _ in range(20))


class TestWorkloadSpecs:
    def test_table2_catalog(self):
        names = {w.name for w in TABLE2_WORKLOADS}
        assert names == {
            "RD50_U", "RD95_U", "RD100_U", "RD50_Z", "RD95_Z", "RD100_Z",
            "RD95_L", "RMW50_Z",
        }

    def test_lookup(self):
        assert workload("RD95_Z").read_ratio == 0.95
        with pytest.raises(ValueError):
            workload("RD0_X")

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec("BAD", "broken", 0.5, 0.2)

    def test_append_mixes(self):
        assert len(APPEND_WORKLOADS) == 4
        for spec in APPEND_WORKLOADS:
            assert spec.append_ratio > 0


class TestOperationStream:
    def test_deterministic(self):
        a = OperationStream(workload("RD50_Z"), SMALL, 100, seed=1)
        b = OperationStream(workload("RD50_Z"), SMALL, 100, seed=1)
        assert list(a.operations(50)) == list(b.operations(50))

    def test_mix_ratios_roughly_hold(self):
        stream = OperationStream(workload("RD95_U"), SMALL, 1000, seed=2)
        ops = list(stream.operations(2000))
        gets = sum(1 for op in ops if op.op == "get")
        assert 0.9 < gets / len(ops) < 0.99

    def test_rmw_ops_generated(self):
        stream = OperationStream(workload("RMW50_Z"), SMALL, 100, seed=3)
        ops = list(stream.operations(500))
        assert any(op.op == "rmw" for op in ops)
        assert all(op.value is not None for op in ops if op.op == "rmw")

    def test_load_operations_cover_population(self):
        stream = OperationStream(workload("RD50_U"), SMALL, 25, seed=4)
        loads = list(stream.load_operations())
        assert len(loads) == 25
        assert len({op.key for op in loads}) == 25
        assert all(op.op == "set" for op in loads)

    def test_set_values_change_per_version(self):
        stream = OperationStream(workload("RD50_U"), SMALL, 4, seed=5)
        values = {}
        for op in stream.operations(300):
            if op.op == "set":
                assert op.value != values.get(op.key), "versions must differ"
                values[op.key] = op.value


class TestDataSpecs:
    def test_catalog(self):
        assert SMALL.val_size == 16
        assert MEDIUM.val_size == 128
        assert LARGE.val_size == 512
        assert data_spec("medium") is MEDIUM
        with pytest.raises(ValueError):
            data_spec("gigantic")

    def test_key_sizes_fixed(self):
        for i in (0, 7, 123456):
            assert len(SMALL.key_bytes(i)) == 16

    def test_keys_unique(self):
        keys = {SMALL.key_bytes(i) for i in range(1000)}
        assert len(keys) == 1000

    def test_values_sized_and_versioned(self):
        assert len(LARGE.value_bytes(5)) == 512
        assert LARGE.value_bytes(5, 0) != LARGE.value_bytes(5, 1)

    def test_working_set_estimate(self):
        assert SMALL.working_set_bytes(1000) == 1000 * (49 + 32)
