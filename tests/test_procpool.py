"""Process-parallel partition engine (shared-nothing workers + batched IPC).

Covers the three execution modes of
:class:`~repro.core.partition.PartitionedShieldStore` — the same seeded
workload must produce byte-identical contents and identical operation
counters whether partitions run inline, on worker threads, or in worker
processes — plus the failure semantics of the multiprocess pool:
integrity violations crossing the process boundary as the original
exception class, and dead workers surfacing as
:class:`~repro.errors.WorkerError` instead of hangs.
"""

import threading
import time

import pytest

from repro.core import (
    MODE_PROCESSES,
    MODE_SEQUENTIAL,
    MODE_THREADS,
    PartitionedShieldStore,
    process_mode_supported,
    shield_opt,
)
from repro.core.entry import TAMPER_PROBE_OFFSET
from repro.core.stats import StoreStats
from repro.errors import IntegrityError, KeyNotFoundError, StoreError, WorkerError
from repro.sim import Machine

SECRET = bytes(range(32))
PARTITIONS = 2

needs_processes = pytest.mark.skipif(
    not process_mode_supported(),
    reason="platform cannot run the multiprocess engine",
)


def _config():
    return shield_opt(num_buckets=128, num_mac_hashes=32)


def _build(mode: str) -> PartitionedShieldStore:
    if mode == MODE_PROCESSES:
        return PartitionedShieldStore(
            _config(),
            master_secret=SECRET,
            num_partitions=PARTITIONS,
            mode=MODE_PROCESSES,
        )
    return PartitionedShieldStore(
        _config(),
        machine=Machine(num_threads=PARTITIONS),
        master_secret=SECRET,
        parallel=mode == MODE_THREADS,
        mode=mode,
    )


def _run_workload(store: PartitionedShieldStore) -> None:
    """Deterministic mix of batched and single-key operations."""
    keys = [f"key-{i:03d}".encode() for i in range(120)]
    store.multi_set([(k, b"value-" + k) for k in keys])
    store.multi_set([(k, b"updated-" + k) for k in keys[::3]])
    store.multi_get(keys)
    store.multi_delete(keys[100:110])
    store.set(b"single", b"one")
    store.append(b"single", b"-two")
    store.increment(b"counter")
    store.increment(b"counter", 5)
    store.compare_and_swap(b"single", b"one-two", b"three")
    store.delete(keys[0])


@needs_processes
class TestModeEquivalence:
    def test_identical_contents_across_modes(self):
        """Same seeded workload -> byte-identical items in all 3 modes."""
        items, audits, lens = {}, {}, {}
        for mode in (MODE_SEQUENTIAL, MODE_THREADS, MODE_PROCESSES):
            with _build(mode) as store:
                assert store.mode == mode
                _run_workload(store)
                items[mode] = sorted(store.iter_items())
                audits[mode] = store.audit()
                lens[mode] = len(store)
        assert items[MODE_SEQUENTIAL] == items[MODE_THREADS]
        assert items[MODE_SEQUENTIAL] == items[MODE_PROCESSES]
        assert audits[MODE_SEQUENTIAL] == audits[MODE_PROCESSES] == lens[MODE_PROCESSES]
        assert lens[MODE_SEQUENTIAL] == lens[MODE_THREADS] == lens[MODE_PROCESSES]

    def test_identical_stats_across_modes(self):
        """Operation counters agree between in-process and worker modes.

        Wall-clock stage timers are excluded: they measure host time,
        which legitimately differs per engine; every semantic counter
        must still match exactly.
        """
        from repro.core import StoreStats

        snapshots = {}
        for mode in (MODE_THREADS, MODE_PROCESSES):
            with _build(mode) as store:
                _run_workload(store)
                snapshot = store.stats().snapshot_dict()
                for field in StoreStats.WALL_CLOCK_FIELDS:
                    timer = snapshot.pop(field)
                    assert timer >= 0
                snapshots[mode] = snapshot
        assert snapshots[MODE_THREADS] == snapshots[MODE_PROCESSES]

    def test_single_key_ops_route_through_workers(self):
        with _build(MODE_PROCESSES) as store:
            store.set(b"k", b"v")
            assert store.get(b"k") == b"v"
            assert store.contains(b"k")
            assert store.append(b"k", b"!") == b"v!"
            assert store.increment(b"n", 3) == 3
            assert store.compare_and_swap(b"k", b"v!", b"w")
            assert not store.compare_and_swap(b"k", b"stale", b"x")
            store.delete(b"k")
            assert not store.contains(b"k")
            with pytest.raises(KeyNotFoundError):
                store.get(b"missing")

    def test_concurrent_clients_get_their_own_replies(self):
        """Parallel parent threads (the TCP server runs one per
        connection) must never interleave pipe frames and receive each
        other's replies — per-worker locking keeps every send/recv
        round-trip paired."""
        with _build(MODE_PROCESSES) as store:
            keys = [f"key-{i:03d}".encode() for i in range(60)]
            store.multi_set([(k, b"value-" + k) for k in keys])
            errors = []

            def client(client_id: int) -> None:
                marker = f"client-{client_id}".encode()
                try:
                    for round_no in range(12):
                        values = store.multi_get(keys)
                        for k in keys:
                            assert values[k] == b"value-" + k, (client_id, k)
                        store.set(marker, marker + b"-%d" % round_no)
                        assert store.get(marker) == marker + b"-%d" % round_no
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            assert store.audit() == len(store)


@needs_processes
class TestStatsAggregation:
    def test_merged_stats_equal_sum_of_partitions(self):
        with _build(MODE_PROCESSES) as store:
            _run_workload(store)
            per_partition = store.per_partition_stats()
            assert len(per_partition) == PARTITIONS
            merged = store.stats().snapshot_dict()
            for name, value in merged.items():
                assert value == sum(
                    getattr(stats, name) for stats in per_partition
                ), name

    def test_batch_counters_survive_process_boundary(self):
        with _build(MODE_PROCESSES) as store:
            _run_workload(store)
            stats = store.stats()
            assert stats.batches > 0
            assert stats.batch_ops > 0
            assert stats.batch_verifications_saved > 0

    def test_from_dict_ignores_unknown_and_property_keys(self):
        """Snapshot dicts from newer workers may carry keys the parent
        does not know — including names that collide with read-only
        properties like ``operations`` — and must round-trip cleanly."""
        stats = StoreStats.from_dict(
            {"gets": 3, "hits": 2, "operations": 99, "not_a_counter": 1}
        )
        assert stats.gets == 3
        assert stats.hits == 2
        assert stats.operations == 3  # derived property, not the bogus 99


@needs_processes
class TestFailureSemantics:
    def test_integrity_error_crosses_process_boundary(self):
        """A tampered worker raises IntegrityError (not a generic wrapper)
        in the parent, annotated with the partition index."""
        with _build(MODE_PROCESSES) as store:
            keys = [f"key-{i:03d}".encode() for i in range(40)]
            store.multi_set([(k, b"v") for k in keys])
            victim = keys[7]
            index = store.partition_index_of(victim)
            store._pool.tamper(index, victim)
            with pytest.raises(IntegrityError, match=f"partition {index}"):
                store.multi_get(keys)

    def test_pool_survives_clean_errors(self):
        """A ReproError is a report, not a crash: the worker keeps serving."""
        with _build(MODE_PROCESSES) as store:
            store.set(b"poisoned", b"v")
            store.set(b"healthy", b"ok")
            index = store.partition_index_of(b"poisoned")
            store._pool.tamper(index, b"poisoned")
            with pytest.raises(IntegrityError):
                store.get(b"poisoned")
            assert store.get(b"healthy") == b"ok"

    def test_dead_worker_respawns_and_pool_stays_usable(self):
        """A dead worker no longer bricks the pool: it is respawned in
        place.  With no snapshot to restore from, the partition comes
        back empty and the pool reports ``degraded`` — but keeps
        serving, and the recovery shows up in the merged stats."""
        with _build(MODE_PROCESSES) as store:
            store.set(b"k", b"v")
            store._pool.workers[0].process.terminate()
            store._pool.workers[0].process.join(timeout=5)
            with pytest.raises(WorkerError, match="respawned"):
                store.multi_get([f"key-{i}".encode() for i in range(20)])
            assert store.partition_state == "degraded"
            # Still serving after the recovery.
            store.set(b"post-crash", b"ok")
            assert store.get(b"post-crash") == b"ok"
            stats = store.stats()
            assert stats.worker_recoveries == 1

    def test_integrity_error_in_threads_mode(self):
        """Thread-mode fan-out annotates the original exception class."""
        store = _build(MODE_THREADS)
        keys = [f"key-{i:03d}".encode() for i in range(40)]
        store.multi_set([(k, b"v") for k in keys])
        victim = keys[3]
        index = store.partition_index_of(victim)
        partition = store.partitions[index]
        bucket = partition.keyring.keyed_bucket_hash(
            victim, partition.config.num_buckets
        )
        addr = int.from_bytes(
            partition.machine.memory.raw_read(
                partition.buckets.slot_addr(bucket), 8
            ),
            "little",
        )
        byte = partition.machine.memory.raw_read(addr + TAMPER_PROBE_OFFSET, 1)[0]
        partition.machine.memory.raw_write(
            addr + TAMPER_PROBE_OFFSET, bytes([byte ^ 0x01])
        )
        with pytest.raises(IntegrityError, match=f"partition {index}"):
            store.multi_get(keys)
        store.close()


@needs_processes
class TestTimeoutsAndShutdown:
    def test_sub_interval_timeout_is_honored(self):
        """A request_timeout below the 0.1 s liveness poll interval must
        fire on schedule, not get rounded up to a whole poll."""
        from repro.core.procpool import ProcessPartitionPool

        pool = ProcessPartitionPool(
            _config(), 1, SECRET, request_timeout=0.03
        )
        try:
            handle = pool.workers[0]
            with handle.lock:
                # Nothing was sent, so no reply ever arrives: _recv must
                # give up after ~0.03 s.  The old code polled a full
                # 0.1 s interval first, so it could never raise sooner.
                start = time.monotonic()
                with pytest.raises(WorkerError, match="no reply"):
                    pool._recv(handle, recover=False)
                elapsed = time.monotonic() - start
            assert elapsed < 0.09, elapsed
        finally:
            pool.close()

    def test_close_never_steals_inflight_replies(self):
        """close() must take the worker locks before sending shutdown
        frames: a connection thread mid round-trip either completes its
        own send/recv pairing or observes the closed pool as a
        WorkerError — it never decodes a shutdown acknowledgement (or
        another request's reply) as its own."""
        store = _build(MODE_PROCESSES)
        keys = [f"key-{i:03d}".encode() for i in range(80)]
        store.multi_set([(k, b"value-" + k) for k in keys])
        failures = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    try:
                        values = store.multi_get(keys)
                    except WorkerError:
                        return  # pool closed under us: the allowed outcome
                    for k in keys:
                        assert values[k] == b"value-" + k, k
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.4)  # let the hammering reach steady state
        store.close()
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures


class TestModeResolution:
    def test_injected_machine_stays_in_process(self):
        store = PartitionedShieldStore(_config(), machine=Machine(num_threads=2))
        assert store.mode == MODE_SEQUENTIAL
        assert store._pool is None

    def test_parallel_flag_selects_threads(self):
        store = PartitionedShieldStore(
            _config(), machine=Machine(num_threads=2), parallel=True
        )
        assert store.mode == MODE_THREADS
        store.close()

    def test_single_partition_is_sequential(self):
        store = PartitionedShieldStore(_config(), num_partitions=1)
        assert store.mode == MODE_SEQUENTIAL

    @needs_processes
    def test_owned_machine_auto_selects_processes(self):
        with PartitionedShieldStore(_config(), num_partitions=2) as store:
            assert store.mode == MODE_PROCESSES
            store.set(b"k", b"v")
            assert store.get(b"k") == b"v"

    def test_num_partitions_conflict_rejected(self):
        with pytest.raises(StoreError):
            PartitionedShieldStore(
                _config(), machine=Machine(num_threads=4), num_partitions=2
            )

    def test_explicit_processes_with_machine_rejected(self):
        """An injected machine cannot be shared with worker processes;
        asking for both explicitly is an error, not silent idle clocks."""
        with pytest.raises(StoreError, match="injected machine"):
            PartitionedShieldStore(
                _config(), machine=Machine(num_threads=2), mode=MODE_PROCESSES
            )

    def test_partition_of_unavailable_in_process_mode(self):
        if not process_mode_supported():
            pytest.skip("platform cannot run the multiprocess engine")
        with _build(MODE_PROCESSES) as store:
            with pytest.raises(StoreError):
                store.partition_of(b"k")
            assert 0 <= store.partition_index_of(b"k") < PARTITIONS
