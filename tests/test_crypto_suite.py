"""Cipher suites, registry, key ring, and the fast backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import fast
from repro.crypto.keys import KeyRing, derive_key
from repro.crypto.suite import (
    FastSuite,
    ReferenceSuite,
    available_suites,
    make_suite,
    register_suite,
)
from repro.errors import CryptoError

_ENC = bytes(range(16))
_MAC = bytes(range(16, 32))
_IV = bytes(16)


@pytest.fixture(params=["aes-reference", "fast-hashlib"])
def suite(request):
    return make_suite(request.param, _ENC, _MAC)


class TestSuiteInterface:
    def test_roundtrip(self, suite):
        ct = suite.encrypt(_IV, b"attack at dawn")
        assert ct != b"attack at dawn"
        assert suite.decrypt(_IV, ct) == b"attack at dawn"

    def test_mac_verify(self, suite):
        tag = suite.mac(b"message")
        assert len(tag) == 16
        assert suite.verify(b"message", tag)
        assert not suite.verify(b"messagX", tag)
        assert not suite.verify(b"message", bytes(16))

    def test_iv_matters(self, suite):
        a = suite.encrypt(_IV, b"x" * 32)
        b = suite.encrypt(bytes(15) + b"\x01", b"x" * 32)
        assert a != b

    def test_key_size_enforced(self):
        with pytest.raises(CryptoError):
            ReferenceSuite(b"short", _MAC)
        with pytest.raises(CryptoError):
            FastSuite(_ENC, b"short")


class TestRegistry:
    def test_available(self):
        names = available_suites()
        assert "aes-reference" in names
        assert "fast-hashlib" in names

    def test_unknown_suite(self):
        with pytest.raises(CryptoError):
            make_suite("no-such-suite", _ENC, _MAC)

    def test_register_and_duplicate(self):
        name = "test-custom-suite"
        if name not in available_suites():
            register_suite(name, FastSuite)
        assert name in available_suites()
        with pytest.raises(CryptoError):
            register_suite(name, FastSuite)


class TestFastBackend:
    def test_keystream_deterministic(self):
        a = fast.prf_keystream(_ENC, _IV, 100)
        assert a == fast.prf_keystream(_ENC, _IV, 100)
        assert len(a) == 100

    def test_keystream_counter_contiguity(self):
        from repro.crypto.ctr import increment_iv_ctr

        whole = fast.prf_keystream(_ENC, _IV, 64)
        second = fast.prf_keystream(_ENC, increment_iv_ctr(_IV), 32)
        assert whole[32:] == second

    def test_hmac_tag_width(self):
        assert len(fast.hmac_tag(_MAC, b"data")) == 16

    def test_verify(self):
        tag = fast.hmac_tag(_MAC, b"data")
        assert fast.verify_hmac_tag(_MAC, b"data", tag)
        assert not fast.verify_hmac_tag(_MAC, b"dato", tag)

    def test_bad_iv_rejected(self):
        with pytest.raises(CryptoError):
            fast.prf_keystream(_ENC, bytes(4), 16)


class TestKeyRing:
    def test_derivation_is_deterministic(self):
        a = KeyRing(b"m" * 32)
        b = KeyRing(b"m" * 32)
        assert a.enc_key == b.enc_key
        assert a.mac_key == b.mac_key

    def test_keys_are_distinct(self):
        ring = KeyRing(b"m" * 32)
        keys = {ring.enc_key, ring.mac_key, ring.index_key, ring.hint_key}
        assert len(keys) == 4

    def test_master_too_short(self):
        with pytest.raises(CryptoError):
            KeyRing(b"short")

    def test_bucket_hash_in_range(self):
        ring = KeyRing(b"m" * 32)
        for i in range(100):
            assert 0 <= ring.keyed_bucket_hash(f"k{i}".encode(), 77) < 77

    def test_bucket_hash_keyed(self):
        a = KeyRing(b"a" * 32)
        b = KeyRing(b"b" * 32)
        hashes_a = [a.keyed_bucket_hash(f"k{i}".encode(), 1000) for i in range(50)]
        hashes_b = [b.keyed_bucket_hash(f"k{i}".encode(), 1000) for i in range(50)]
        assert hashes_a != hashes_b

    def test_hint_is_one_byte(self):
        ring = KeyRing(b"m" * 32)
        for i in range(100):
            assert 0 <= ring.key_hint(f"k{i}".encode()) <= 255

    def test_derive_key_bounds(self):
        with pytest.raises(CryptoError):
            derive_key(b"", "label")
        with pytest.raises(CryptoError):
            derive_key(b"master", "label", size=33)

    @given(num_buckets=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_bucket_hash_range_property(self, num_buckets):
        ring = KeyRing(b"m" * 32)
        assert 0 <= ring.keyed_bucket_hash(b"key", num_buckets) < num_buckets
