"""Runtime crypto sanitizer: (key, IV-block-span) uniqueness, in one
process and across worker respawns / snapshot+WAL recovery runs.

The direct-API tests drive :func:`sanitizer.record` and the journal
merge; the integration tests run real stores with the sanitizer enabled
and assert the hot paths never trip it — these are the regression tests
for the IV-allocator fixes (one-block update overlap, deterministic
machine-RNG IVs, cross-incarnation WAL/oplog IVs).
"""

import pytest

from repro.analysis import sanitizer
from repro.core import (
    PartitionSnapshotter,
    PartitionedShieldStore,
    ShieldStore,
    shield_opt,
)
from repro.core.procpool import process_mode_supported
from repro.crypto.suite import FastSuite, ReferenceSuite
from repro.errors import NonceReuseError
from repro.sim import MonotonicCounterService

needs_processes = pytest.mark.skipif(
    not process_mode_supported(), reason="no multiprocess engine here"
)

MASTER = bytes(range(32))
KEY = b"0123456789abcdef"
KEY2 = b"fedcba9876543210"


def _iv(block: int) -> bytes:
    return block.to_bytes(16, "big")


@pytest.fixture(autouse=True)
def sanitizer_off():
    """Every test starts and ends with the sanitizer disabled."""
    sanitizer.disable()
    yield
    sanitizer.disable()


class TestRecordAPI:
    def test_overlap_raises(self):
        sanitizer.enable()
        sanitizer.record(KEY, _iv(0), 32, 16)  # blocks [0, 2)
        with pytest.raises(NonceReuseError, match="overlap"):
            sanitizer.record(KEY, _iv(1), 16, 16)  # block 1 again

    def test_exact_reuse_raises(self):
        sanitizer.enable()
        sanitizer.record(KEY, _iv(5), 16, 16)
        with pytest.raises(NonceReuseError):
            sanitizer.record(KEY, _iv(5), 16, 16)

    def test_contiguous_spans_merge(self):
        sanitizer.enable()
        sanitizer.record(KEY, _iv(0), 32, 16)
        sanitizer.record(KEY, _iv(2), 32, 16)
        stats = sanitizer.stats()
        assert stats["recorded"] == 2
        assert stats["spans"] == 1  # [0, 4) merged

    def test_distinct_keys_are_independent(self):
        sanitizer.enable()
        sanitizer.record(KEY, _iv(0), 16, 16)
        sanitizer.record(KEY2, _iv(0), 16, 16)
        assert sanitizer.stats()["keys"] == 2

    def test_counter_wraparound_is_tracked(self):
        sanitizer.enable()
        top = (1 << 128) - 1
        sanitizer.record(KEY, _iv(top), 32, 16)  # wraps into block 0
        with pytest.raises(NonceReuseError):
            sanitizer.record(KEY, _iv(0), 16, 16)

    def test_empty_payload_consumes_no_keystream(self):
        sanitizer.enable()
        sanitizer.record(KEY, _iv(0), 0, 16)
        sanitizer.record(KEY, _iv(0), 0, 16)
        assert sanitizer.stats()["recorded"] == 0

    def test_disabled_records_nothing(self):
        sanitizer.record(KEY, _iv(0), 16, 16)
        sanitizer.record(KEY, _iv(0), 16, 16)  # would raise if active
        assert not sanitizer.enabled()

    def test_block_size_scales_the_span(self):
        # 33 bytes of 32-byte chunks is 2 blocks, not 3.
        sanitizer.enable()
        sanitizer.record(KEY, _iv(0), 33, 32)
        sanitizer.record(KEY, _iv(2), 16, 32)  # block 2 is free
        with pytest.raises(NonceReuseError):
            sanitizer.record(KEY, _iv(1), 16, 32)


class TestSuiteHooks:
    def test_fast_suite_encrypt_records(self):
        sanitizer.enable()
        suite = FastSuite(KEY, KEY2)
        suite.encrypt(_iv(0), b"x" * 40)
        assert sanitizer.stats()["recorded"] == 1
        with pytest.raises(NonceReuseError):
            suite.encrypt(_iv(0), b"y" * 40)

    def test_reference_suite_multi_block_span(self):
        sanitizer.enable()
        suite = ReferenceSuite(KEY, KEY2)
        suite.encrypt(_iv(0), b"x" * 33)  # blocks [0, 3)
        with pytest.raises(NonceReuseError):
            suite.encrypt(_iv(2), b"y")  # block 2 overlaps

    def test_encrypt_many_records_each_item(self):
        sanitizer.enable()
        suite = FastSuite(KEY, KEY2)
        suite.encrypt_many([(_iv(0), b"a" * 8), (_iv(10), b"b" * 8)])
        assert sanitizer.stats()["recorded"] == 2
        with pytest.raises(NonceReuseError):
            suite.encrypt_many([(_iv(10), b"c" * 8)])

    def test_decrypt_does_not_record(self):
        sanitizer.enable()
        suite = FastSuite(KEY, KEY2)
        blob = suite.encrypt(_iv(0), b"x" * 16)
        suite.decrypt(_iv(0), blob)
        suite.decrypt(_iv(0), blob)  # replay reads are legitimate
        assert sanitizer.stats()["recorded"] == 1


class TestStoreRegression:
    """The IV-allocator fixes, pinned: heavy mutation churn under the
    sanitizer must never reuse keystream."""

    def test_update_churn_is_unique(self):
        sanitizer.enable()
        store = ShieldStore(shield_opt(num_buckets=32, num_mac_hashes=16))
        for round_no in range(30):
            # growing values force multi-block records — the old
            # one-block IV advance would overlap from round 2 on.
            store.set(b"hot-key", b"v" * (8 + round_no * 7))
        store.delete(b"hot-key")
        store.set(b"hot-key", b"back again, same hash chain slot")
        assert sanitizer.stats()["recorded"] > 0

    def test_two_incarnations_same_master_are_disjoint(self, tmp_path):
        """Same master secret, same seeded machine, two processes'
        worth of stores: the old machine-RNG IVs collided here."""
        journal_dir = str(tmp_path / "journals")
        sanitizer.enable(journal_dir)
        for _ in range(2):
            store = ShieldStore(
                shield_opt(num_buckets=32, num_mac_hashes=16),
                master_secret=MASTER,
            )
            for i in range(10):
                store.set(b"key-%d" % i, b"value-%d" % i)
        report = sanitizer.global_check(journal_dir)
        assert report.records > 0

    def test_snapshot_restore_cycle_is_unique(self, tmp_path):
        journal_dir = str(tmp_path / "journals")
        sanitizer.enable(journal_dir)
        counters = MonotonicCounterService()
        store = PartitionedShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=16),
            num_partitions=2,
            master_secret=MASTER,
        )
        snapshotter = PartitionSnapshotter.for_store(store, counters)
        for i in range(12):
            store.set(b"key-%d" % i, b"value-%d" % i)
        blob = snapshotter.snapshot_bytes(store)
        store.close()
        # Restore into a fresh incarnation of the same master secret:
        # re-encrypted entries and the next snapshot must use fresh IVs.
        fresh = PartitionedShieldStore(
            shield_opt(num_buckets=64, num_mac_hashes=16),
            num_partitions=2,
            master_secret=MASTER,
        )
        snapshotter = PartitionSnapshotter.for_store(fresh, counters)
        snapshotter.restore(blob, fresh)
        for i in range(12):
            assert fresh.get(b"key-%d" % i) == b"value-%d" % i
        fresh.set(b"key-0", b"rewritten after restore")
        snapshotter.snapshot_bytes(fresh)
        fresh.close()
        report = sanitizer.global_check(journal_dir)
        assert report.records > 0


@needs_processes
class TestCrossProcess:
    def test_worker_respawn_and_wal_recovery(self, tmp_path):
        """SIGKILL every worker mid-stream: the respawned incarnations
        replay the WAL (decrypt only) and continue encrypting under the
        same master secret — journals must still be globally disjoint."""
        journal_dir = str(tmp_path / "journals")
        sanitizer.enable(journal_dir)
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            num_partitions=2,
            mode="processes",
            master_secret=MASTER,
            wal_dir=str(tmp_path / "wal"),
        )
        expected = {}
        for i in range(24):
            key, value = b"key-%03d" % i, b"val-%03d" % i
            store.set(key, value)
            expected[key] = value
        for handle in store._pool.workers:
            handle.process.kill()
            handle.process.join()
        recovered = {}
        for key in expected:
            try:
                recovered[key] = store.get(key)
            except Exception:
                recovered[key] = store.get(key)  # retry after respawn
        assert recovered == expected
        # Post-recovery writes keep consuming fresh keystream.
        for i in range(8):
            store.set(b"post-%d" % i, b"pv-%d" % i)
        store.close()
        sanitizer.disable()
        report = sanitizer.global_check(journal_dir)
        assert report.records > 0
        assert report.processes >= 2  # parent + at least one worker

    def test_global_check_flags_cross_process_overlap(self, tmp_path):
        """Seed two fake process journals that disagree: the merge must
        catch what no single process could see."""
        journal_dir = tmp_path / "journals"
        journal_dir.mkdir()
        (journal_dir / "crypto-1.journal").write_text(
            "aaaa 0 4\naaaa 100 2\n"
        )
        (journal_dir / "crypto-2.journal").write_text("aaaa 2 4\n")
        with pytest.raises(NonceReuseError, match="overlap"):
            sanitizer.global_check(str(journal_dir))

    def test_global_check_skips_torn_tail(self, tmp_path):
        journal_dir = tmp_path / "journals"
        journal_dir.mkdir()
        (journal_dir / "crypto-1.journal").write_text(
            "aaaa 0 4\naaaa 10"  # killed mid-write
        )
        report = sanitizer.global_check(str(journal_dir))
        assert report.records == 1
        assert report.processes == 1

    def test_global_check_requires_a_directory(self):
        with pytest.raises(NonceReuseError, match="journal directory"):
            sanitizer.global_check(None)
