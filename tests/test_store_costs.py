"""Cost-model behaviour of the store: each §5 optimization must actually
save simulated cycles in the regime the paper claims it helps."""


from repro.core import ShieldStore, shield_opt
from repro.sim import Machine
from repro.sim.cycles import DEFAULT_COST_MODEL


def _get_cost(config_overrides, pairs, value=b"v" * 16, gets=300):
    store = ShieldStore(
        shield_opt(**{"num_buckets": 16, "num_mac_hashes": 16, **config_overrides})
    )
    keys = [f"key-{i:04d}".encode() for i in range(pairs)]
    for key in keys:
        store.set(key, value)
    store.machine.reset_measurement()
    for i in range(gets):
        store.get(keys[i % pairs])
    return store.machine.elapsed_us() / gets, store


class TestOptimizationSavings:
    def test_key_hint_saves_on_long_chains(self):
        with_hint, s1 = _get_cost({"key_hint_enabled": True}, pairs=320)
        without, s2 = _get_cost(
            {"key_hint_enabled": False, "two_step_search": False}, pairs=320
        )
        assert with_hint < without * 0.7
        assert s1.machine.counters.decryptions < s2.machine.counters.decryptions / 3

    def test_mac_bucketing_saves_on_long_chains(self):
        bucketed, _ = _get_cost({"mac_bucketing": True}, pairs=320)
        chained, _ = _get_cost({"mac_bucketing": False}, pairs=320)
        assert bucketed < chained

    def test_optimizations_negligible_on_short_chains(self):
        opt, _ = _get_cost({}, pairs=12)
        plain, _ = _get_cost(
            {"key_hint_enabled": False, "two_step_search": False,
             "mac_bucketing": False},
            pairs=12,
        )
        assert opt < plain * 1.3 and plain < opt * 2.5

    def test_extra_heap_saves_on_inserts(self):
        def insert_cost(use_extra_heap):
            store = ShieldStore(
                shield_opt(
                    num_buckets=256, num_mac_hashes=128,
                    use_extra_heap=use_extra_heap,
                )
            )
            store.machine.reset_measurement()
            for i in range(300):
                store.set(f"key-{i}".encode(), b"v" * 16)
            return store.machine.elapsed_us()

        assert insert_cost(True) < insert_cost(False) * 0.7


class TestCostScaling:
    def test_get_cost_grows_with_value_size(self):
        small, _ = _get_cost({}, pairs=64, value=b"v" * 16)
        large, _ = _get_cost({}, pairs=64, value=b"v" * 2048)
        assert large > small * 1.5

    def test_bucket_set_size_increases_integrity_cost(self):
        few_hashes, _ = _get_cost({"num_mac_hashes": 2, "num_buckets": 16}, pairs=160)
        many_hashes, _ = _get_cost({"num_mac_hashes": 16, "num_buckets": 16}, pairs=160)
        assert many_hashes < few_hashes

    def test_mactree_epc_overflow_causes_faults(self):
        """A MAC array beyond the (tiny) EPC pages on every op — Fig. 15."""
        from dataclasses import replace

        tiny = replace(
            DEFAULT_COST_MODEL,
            epc_effective_bytes=8 * 4096,
            llc_bytes=4096,
        )

        def run(num_hashes):
            machine = Machine(tiny)
            store = ShieldStore(
                shield_opt(num_buckets=16384, num_mac_hashes=num_hashes),
                machine=machine,
            )
            for i in range(100):
                store.set(f"key-{i:03d}".encode(), b"v")
            machine.reset_measurement()
            for i in range(300):
                store.get(f"key-{i % 100:03d}".encode())
            return machine.counters.epc_faults

        fits = run(1024)        # 16 KB of hashes: fits 32 KB EPC
        overflows = run(16384)  # 256 KB of hashes: pages constantly
        assert overflows > fits * 3 + 10

    def test_simulated_time_independent_of_host_speed(self):
        """Charging is deterministic: two identical runs agree exactly."""
        a, _ = _get_cost({}, pairs=50)
        b, _ = _get_cost({}, pairs=50)
        assert a == b
