"""Capacity planner: the §4.3 sizing arithmetic."""

import pytest

from repro.core.planner import plan


class TestAutoSizing:
    def test_paper_defaults_reproduce(self):
        """10M pairs should land near the paper's 8M buckets / 4M hashes
        (the 4M cap comes from half the 93 MB EPC at 16 B per hash)."""
        result = plan(10_000_000, val_size=512)
        assert result.num_buckets == 8_000_000
        assert 2_500_000 <= result.num_mac_hashes <= 4_000_000
        assert result.fits_epc
        assert 1.0 < result.avg_chain_length < 1.5

    def test_small_population(self):
        result = plan(1000, val_size=16)
        assert result.num_mac_hashes <= result.num_buckets
        assert result.fits_epc

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            plan(0)


class TestPlacement:
    def test_enclave_holds_only_hashes(self):
        result = plan(1_000_000, num_mac_hashes=1_000_000, num_buckets=1_000_000)
        assert result.enclave_bytes == 16_000_000
        assert result.untrusted_entry_bytes > result.enclave_bytes

    def test_overflow_flagged(self):
        result = plan(
            10_000_000, num_buckets=8_000_000, num_mac_hashes=8_000_000
        )
        assert not result.fits_epc  # 128 MB of hashes vs 93 MB EPC
        assert result.epc_utilization > 1.0

    def test_overflow_inflates_get_estimate(self):
        fits = plan(10_000_000, num_buckets=8_000_000, num_mac_hashes=4_000_000)
        overflow = plan(10_000_000, num_buckets=8_000_000, num_mac_hashes=8_000_000)
        assert overflow.est_get_cycles > fits.est_get_cycles * 2


class TestWorkEstimates:
    def test_hints_cut_decryptions(self):
        with_hints = plan(10_000_000, num_buckets=1_000_000, key_hints=True)
        without = plan(10_000_000, num_buckets=1_000_000, key_hints=False)
        assert with_hints.expected_decryptions_per_get < 1.1
        assert without.expected_decryptions_per_get > 5

    def test_fewer_hashes_mean_more_macs_per_get(self):
        few = plan(10_000_000, num_buckets=8_000_000, num_mac_hashes=1_000_000)
        many = plan(10_000_000, num_buckets=8_000_000, num_mac_hashes=4_000_000)
        assert few.macs_read_per_get > many.macs_read_per_get

    def test_estimate_tracks_simulation(self):
        """The planner's get estimate should be the right order of
        magnitude vs an actual simulated run."""
        from repro.core import ShieldStore, shield_opt

        pairs, buckets, hashes = 2000, 1600, 800
        result = plan(pairs, val_size=64, num_buckets=buckets, num_mac_hashes=hashes)
        store = ShieldStore(shield_opt(num_buckets=buckets, num_mac_hashes=hashes))
        for i in range(pairs):
            store.set(f"key-{i:05d}".encode(), b"v" * 64)
        store.machine.reset_measurement()
        gets = 500
        for i in range(gets):
            store.get(f"key-{i * 3 % pairs:05d}".encode())
        measured = store.machine.clock.elapsed_cycles() / gets
        assert measured / 4 < result.est_get_cycles < measured * 4

    def test_summary_renders(self):
        text = plan(10_000_000).summary()
        assert "MAC hashes" in text and "EPC" in text
        overflow = plan(
            10_000_000, num_buckets=8_000_000, num_mac_hashes=8_000_000
        ).summary()
        assert "OVERFLOWS" in overflow
