"""Sealed write-ahead log: crash matrix + checkpoint durability fixes.

The matrix the issue demands: SIGKILL between append and fsync, a torn
final frame, a tampered middle frame, a stale-incarnation segment, and
the checkpoint+rotate race — each recovering byte-identical state for
every acknowledged write (``worker_ops_lost == 0``), with torn tails
and tampering reported distinctly.  Plus the SnapshotDaemon durability
fixes: stale ``.tmp`` sweep, directory fsync, failure counter, and
log retirement only after a durable checkpoint.
"""

import os
import time

import pytest

from repro.analysis import sanitizer
from repro.core import (
    PartitionSnapshotter,
    PartitionedShieldStore,
    ShieldStore,
    WriteAheadLog,
    apply_request,
    fsync_directory,
    shield_opt,
    snapshot_counter,
)
from repro.core.procpool import process_mode_supported
from repro.core.wal import segment_path
from repro.errors import SnapshotError
from repro.net import SnapshotDaemon, TCPShieldClient, TCPShieldServer
from repro.sim import (
    AttestationService,
    FaultPlan,
    FaultRule,
    MonotonicCounterService,
    faults,
)
from repro.workloads.datasets import SMALL
from repro.workloads.ycsb import OP_GET, OP_SET, RD95_Z, OperationStream

needs_processes = pytest.mark.skipif(
    not process_mode_supported(), reason="no multiprocess engine here"
)

MASTER = bytes(range(32))


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def small_config():
    return shield_opt(num_buckets=128, num_mac_hashes=32)


def build_store():
    return ShieldStore(small_config(), master_secret=MASTER)


def recover_into(directory, store, counter=0, sync_ms=0.0):
    """Replay partition 0's chain into ``store`` and attach the tail."""
    wal = WriteAheadLog.recover(
        str(directory),
        0,
        MASTER,
        store.config.suite_name,
        counter,
        apply=lambda req: apply_request(store, req),
        stats=store.stats,
        sync_ms=sync_ms,
    )
    store.wal = wal
    return wal


def run_mixed_workload(store):
    """Every mutating op kind once-or-more; returns nothing — the store
    itself is the expected state."""
    store.set(b"alpha", b"1")
    store.set(b"beta", b"2")
    store.append(b"alpha", b"-tail")
    store.increment(b"count", 5)
    store.increment(b"count", -2)
    store.compare_and_swap(b"beta", b"2", b"two")
    store.compare_and_swap(b"beta", b"stale", b"never")  # fails both runs
    store.multi_set([(b"m1", b"x"), (b"m2", b"y")])
    store.multi_delete([b"m2"])
    store.delete(b"alpha")


def contents(store):
    return dict(store.iter_items())


# ---------------------------------------------------------------------------
# replay correctness
# ---------------------------------------------------------------------------
class TestReplayRoundtrip:
    def test_every_op_kind_replays_byte_identical(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        run_mixed_workload(store)
        expected = contents(store)
        store.wal.close()

        replica = build_store()
        wal = recover_into(tmp_path, replica)
        assert wal.replayed == replica.stats.wal_replayed > 0
        assert contents(replica) == expected

    def test_replay_does_not_relog(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"k", b"v")
        store.wal.close()
        size = os.path.getsize(segment_path(str(tmp_path), 0, 0))

        replica = build_store()
        recover_into(tmp_path, replica)
        replica.wal.close()
        # Replay attaches the log only after re-applying, so the
        # segment must not have grown.
        assert os.path.getsize(segment_path(str(tmp_path), 0, 0)) == size
        assert replica.stats.wal_appends == 0

    def test_fresh_directory_starts_empty(self, tmp_path):
        store = build_store()
        wal = recover_into(tmp_path, store)
        assert wal.replayed == 0
        # Lazy creation: no segment until the first append.
        assert not os.path.exists(segment_path(str(tmp_path), 0, 0))


# ---------------------------------------------------------------------------
# torn tail vs tamper: the distinction the issue demands
# ---------------------------------------------------------------------------
class TestTornTail:
    def test_torn_final_frame_truncated_and_replay_continues(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        for i in range(4):
            store.set(b"k%d" % i, b"v%d" % i)
        store.wal.close()
        seg = segment_path(str(tmp_path), 0, 0)
        size = os.path.getsize(seg)
        with open(seg, "r+b") as fh:
            fh.truncate(size - 3)  # shear the last frame mid-body

        replica = build_store()
        wal = recover_into(tmp_path, replica)
        # Only the torn (never-acknowledged) final op is gone.
        assert wal.replayed == 3
        assert replica.stats.wal_torn_truncated == 1
        assert contents(replica) == {b"k%d" % i: b"v%d" % i for i in range(3)}
        # The file was given back a clean frame boundary: appends after
        # recovery extend a valid chain.
        replica.set(b"k3", b"v3-after")
        replica.wal.close()
        final = build_store()
        recover_into(tmp_path, final)
        assert final.get(b"k3") == b"v3-after"
        assert final.stats.wal_torn_truncated == 0

    def test_torn_length_prefix_truncated(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"k", b"v")
        store.wal.close()
        seg = segment_path(str(tmp_path), 0, 0)
        with open(seg, "ab") as fh:
            fh.write(b"\x10\x00")  # 2 of the next frame's 4 length bytes
        replica = build_store()
        wal = recover_into(tmp_path, replica)
        assert wal.replayed == 1
        assert replica.stats.wal_torn_truncated == 1


class TestTamper:
    def test_tampered_middle_frame_raises(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        for i in range(5):
            store.set(b"k%d" % i, b"v%d" % i)
        store.wal.close()
        seg = segment_path(str(tmp_path), 0, 0)
        data = bytearray(open(seg, "rb").read())
        data[len(data) // 2] ^= 0xFF  # a *complete* frame, corrupted
        open(seg, "wb").write(bytes(data))

        with pytest.raises(SnapshotError, match="failed authentication"):
            recover_into(tmp_path, build_store())

    def test_stale_incarnation_segment_rejected(self, tmp_path):
        # Frames sealed under incarnation 3 presented as incarnation 4:
        # wrong per-incarnation key, so authentication fails.
        store = build_store()
        recover_into(tmp_path, store, counter=3)
        store.set(b"a", b"b")
        store.wal.close()
        os.rename(
            segment_path(str(tmp_path), 0, 3),
            segment_path(str(tmp_path), 0, 4),
        )
        with pytest.raises(SnapshotError, match="failed authentication"):
            recover_into(tmp_path, build_store(), counter=4)

    def test_frames_after_truncation_record_rejected(self, tmp_path):
        # Splice: replay a pre-rotation frame after the truncation
        # record, as a host replaying stale writes would.
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"a", b"b")
        store.wal.rotate(1)
        store.wal.close()
        seg = segment_path(str(tmp_path), 0, 0)
        data = open(seg, "rb").read()
        first_len = 4 + int.from_bytes(data[:4], "little")
        with open(seg, "ab") as fh:
            fh.write(data[:first_len])
        with pytest.raises(SnapshotError, match="spliced"):
            recover_into(tmp_path, build_store())

    def test_implausible_length_prefix_rejected(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"a", b"b")
        store.wal.close()
        seg = segment_path(str(tmp_path), 0, 0)
        data = bytearray(open(seg, "rb").read())
        data[0:4] = (3).to_bytes(4, "little")  # < minimum sealed body
        open(seg, "wb").write(bytes(data))
        with pytest.raises(SnapshotError, match="implausible length"):
            recover_into(tmp_path, build_store())


# ---------------------------------------------------------------------------
# group commit + rotation chain
# ---------------------------------------------------------------------------
class TestGroupCommit:
    def test_zero_window_syncs_every_append(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store, sync_ms=0.0)
        for i in range(8):
            store.set(b"k%d" % i, b"v")
        assert store.stats.wal_fsyncs == store.stats.wal_appends == 8

    def test_wide_window_batches_fsyncs(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store, sync_ms=60_000.0)
        for i in range(32):
            store.set(b"k%d" % i, b"v")
        assert store.stats.wal_appends == 32
        assert store.stats.wal_fsyncs < 32  # batched behind the window
        store.wal.close()  # close() drains the window with a final sync
        assert store.stats.wal_fsyncs >= 1


class TestRotationChain:
    def test_truncation_record_chains_segments(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"pre", b"1")
        store.wal.rotate(5)
        store.set(b"mid", b"2")
        store.wal.rotate(9)
        store.set(b"post", b"3")
        expected = contents(store)
        store.wal.close()

        # Full-chain replay from 0 crosses both truncation records.
        replica = build_store()
        wal = recover_into(tmp_path, replica)
        assert wal.replayed == 3
        assert wal.counter == 9
        assert contents(replica) == expected

        # Tail replay from a snapshot counter sees only the tail.
        tail = build_store()
        wal = recover_into(tmp_path, tail, counter=9)
        assert wal.replayed == 1
        assert contents(tail) == {b"post": b"3"}

    def test_rotation_must_advance(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store, counter=4)
        with pytest.raises(SnapshotError, match="must advance"):
            store.wal.rotate(4)

    def test_retire_removes_only_older_segments(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"a", b"1")
        store.wal.rotate(3)
        store.set(b"b", b"2")
        store.wal.rotate(7)
        store.wal.close()
        assert WriteAheadLog.retire(str(tmp_path), 7) == 2
        assert not os.path.exists(segment_path(str(tmp_path), 0, 0))
        assert not os.path.exists(segment_path(str(tmp_path), 0, 3))
        assert os.path.exists(segment_path(str(tmp_path), 0, 7))
        # Replay from the retirement point still works.
        replica = build_store()
        recover_into(tmp_path, replica, counter=7)
        assert replica.wal.counter == 7


# ---------------------------------------------------------------------------
# shieldfault injection points
# ---------------------------------------------------------------------------
class TestWalFaultPoints:
    def test_append_crash_leaves_recoverable_torn_tail(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"ok", b"1")
        faults.install(FaultPlan(
            [FaultRule(point="wal.append", kind="crash", hits=[0])], seed=1
        ))
        with pytest.raises(OSError, match="injected crash"):
            store.set(b"doomed", b"2")
        faults.uninstall()
        store.wal.close()

        replica = build_store()
        wal = recover_into(tmp_path, replica)
        assert wal.replayed == 1
        assert replica.stats.wal_torn_truncated == 1
        assert contents(replica) == {b"ok": b"1"}

    def test_append_drop_loses_exactly_that_frame(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        faults.install(FaultPlan(
            [FaultRule(point="wal.append", kind="drop", hits=[1])], seed=1
        ))
        store.set(b"kept", b"1")
        store.set(b"dropped", b"2")  # host swallowed the write
        store.set(b"kept2", b"3")
        faults.uninstall()
        store.wal.close()
        replica = build_store()
        recover_into(tmp_path, replica)
        assert contents(replica) == {b"kept": b"1", b"kept2": b"3"}

    def test_replay_tamper_detected(self, tmp_path):
        store = build_store()
        recover_into(tmp_path, store)
        store.set(b"a", b"b")
        store.wal.close()
        faults.install(FaultPlan(
            [FaultRule(point="wal.replay", kind="tamper", hits=[0])], seed=1
        ))
        with pytest.raises(SnapshotError):
            recover_into(tmp_path, build_store())


# ---------------------------------------------------------------------------
# crash matrix against real worker processes
# ---------------------------------------------------------------------------
@needs_processes
class TestCrashMatrix:
    def _pool_store(self, tmp_path, **kw):
        return PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            num_partitions=2,
            mode="processes",
            master_secret=MASTER,
            wal_dir=str(tmp_path / "wal"),
            **kw,
        )

    def test_sigkill_between_append_and_fsync(self, tmp_path):
        # A huge commit window guarantees the kill lands before any
        # fsync: write() alone must be enough against process death.
        store = self._pool_store(tmp_path, wal_sync_ms=60_000.0)
        expected = {}
        for i in range(24):
            key, value = b"key-%03d" % i, b"val-%03d" % i
            store.set(key, value)
            expected[key] = value
        for handle in store._pool.workers:
            handle.process.kill()
            handle.process.join()
        recovered = {}
        for key in expected:
            try:
                recovered[key] = store.get(key)
            except Exception:
                recovered[key] = store.get(key)  # retry after recovery
        assert recovered == expected
        assert store._pool.ops_lost == 0
        assert store._pool.state == "recovered"
        assert store.stats().worker_ops_lost == 0
        store.close()

    def test_checkpoint_rotate_race(self, tmp_path):
        # Kill right after a checkpoint rotated the logs: recovery must
        # replay the *new* segment on top of the restored section.
        store = self._pool_store(tmp_path)
        snapshotter = PartitionSnapshotter.for_store(
            store, MonotonicCounterService()
        )
        store.set(b"pre", b"1")
        blob = snapshotter.snapshot_bytes(store)
        store.set(b"post", b"2")  # lives only in the rotated tail
        victim = store._pool.workers[0]
        victim.process.kill()
        victim.process.join()
        values = {}
        for key in (b"pre", b"post"):
            try:
                values[key] = store.get(key)
            except Exception:
                values[key] = store.get(key)
        assert values == {b"pre": b"1", b"post": b"2"}
        assert store._pool.ops_lost == 0
        store.close()

        # Cold restart: snapshot restore + verified tail replay.
        fresh = self._pool_store(tmp_path)
        snapshotter = PartitionSnapshotter.for_store(
            fresh, MonotonicCounterService()
        )
        snapshotter.restore(blob, fresh)
        assert fresh.get(b"pre") == b"1"
        assert fresh.get(b"post") == b"2"
        assert fresh.stats().wal_replayed >= 1
        assert snapshot_counter(blob) >= 1
        fresh.close()

    def test_wal_off_still_loses_mutations(self, tmp_path):
        # The log is strictly opt-in: without it the documented §4.4
        # loss bound still applies (mutations since the last snapshot).
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            num_partitions=2,
            mode="processes",
            master_secret=MASTER,
        )
        store.set(b"a", b"1")
        victim = store._pool.workers[store.partition_index_of(b"a")]
        victim.process.kill()
        victim.process.join()
        with pytest.raises(Exception):
            for _ in range(2):
                store.get(b"a")
        assert store._pool.ops_lost >= 1
        store.close()


# ---------------------------------------------------------------------------
# SnapshotDaemon durability fixes
# ---------------------------------------------------------------------------
class TestSnapshotDaemonDurability:
    def _daemon(self, tmp_path, take=lambda: b"", **kw):
        return SnapshotDaemon(take, tmp_path, 3600.0, **kw)

    def test_stale_tmp_swept_at_start(self, tmp_path):
        stale = tmp_path / "snapshot-000000000007.bin.tmp"
        stale.write_bytes(b"half a checkpoint")
        daemon = self._daemon(tmp_path)
        assert not stale.exists()
        assert daemon.snapshots_pruned == 1

    def test_stale_tmp_swept_during_prune(self, tmp_path):
        daemon = self._daemon(tmp_path)
        assert daemon.snapshots_pruned == 0  # nothing to sweep at start
        stale = tmp_path / "snapshot-000000000009.bin.tmp"
        stale.write_bytes(b"crash debris")
        daemon._prune()
        assert not stale.exists()
        assert daemon.snapshots_pruned == 1

    def test_counter_file_survives_sweep(self, tmp_path):
        (tmp_path / "counters.json").write_text("{}")
        daemon = self._daemon(tmp_path)
        daemon._prune()
        assert (tmp_path / "counters.json").exists()
        assert daemon.snapshots_pruned == 0

    def test_snapshot_failures_counted(self, tmp_path):
        def explode():
            raise OSError("disk on fire")

        daemon = SnapshotDaemon(explode, tmp_path, 0.01)
        daemon.start()
        deadline = time.monotonic() + 10.0
        try:
            while daemon.snapshot_failures < 2:
                assert time.monotonic() < deadline, "failures never counted"
                time.sleep(0.01)
        finally:
            daemon.stop()
        assert isinstance(daemon.last_error, OSError)

    def test_on_checkpoint_fires_after_durable_write(self, tmp_path):
        store = build_store()
        from repro.core import Snapshotter, default_platform_secret
        from repro.sim import SealingService

        single = Snapshotter(
            SealingService(default_platform_secret(MASTER)),
            MonotonicCounterService(),
        )
        seen = []
        daemon = SnapshotDaemon(
            lambda: single.snapshot_bytes(store.enclave.context(), store),
            tmp_path,
            3600.0,
            on_checkpoint=seen.append,
        )
        path = daemon.run_once()
        assert os.path.exists(path)
        assert seen == [snapshot_counter(open(path, "rb").read())]

    def test_on_checkpoint_retires_wal_segments(self, tmp_path):
        # The serve wiring: checkpoint durable -> retire older segments.
        wal_dir = tmp_path / "wal"
        snap_dir = tmp_path / "snaps"
        store = build_store()
        recover_into(wal_dir, store)
        single_counters = MonotonicCounterService()
        from repro.core import Snapshotter, default_platform_secret
        from repro.sim import SealingService

        single = Snapshotter(
            SealingService(default_platform_secret(MASTER)), single_counters
        )

        def take_snapshot():
            blob = single.snapshot_bytes(store.enclave.context(), store)
            store.wal.rotate(snapshot_counter(blob))
            return blob

        daemon = SnapshotDaemon(
            take_snapshot,
            snap_dir,
            3600.0,
            on_checkpoint=lambda c: WriteAheadLog.retire(str(wal_dir), c),
        )
        store.set(b"a", b"1")
        daemon.run_once()
        store.set(b"b", b"2")
        daemon.run_once()
        segments = sorted(os.listdir(wal_dir))
        # Only the newest checkpoint's segment chain survives.
        assert segments == [
            os.path.basename(segment_path(str(wal_dir), 0, store.wal.counter))
        ]
        store.wal.close()

    def test_fsync_directory_tolerates_missing_path(self, tmp_path):
        fsync_directory(str(tmp_path))  # real directory: must not raise
        fsync_directory(str(tmp_path / "nope"))  # missing: tolerated


# ---------------------------------------------------------------------------
# the acceptance scenario: chaos with zero acknowledged loss
# ---------------------------------------------------------------------------
@needs_processes
class TestChaosWALAcceptance:
    """TestChaosYCSB's storm, WAL-on: every acknowledged write survives."""

    NUM_PAIRS = 48
    NUM_OPS = 150

    def _chaos_plan(self, seed):
        return FaultPlan(
            [
                FaultRule(point="shmring.write", kind="crash",
                          after=4, hits=[0]),
                FaultRule(point="snapshot.write", kind="delay",
                          delay_s=0.2, hits=[0]),
                FaultRule(point="channel.server.open", kind="tamper",
                          every=60),
                FaultRule(point="tcp.client.recv", kind="drop", hits=[2]),
                FaultRule(point="tcp.client.recv", kind="drop",
                          probability=0.05),
                FaultRule(point="tcp.server.recv", kind="drop",
                          probability=0.05),
            ],
            seed=seed,
        )

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_no_acknowledged_mutation_lost(self, seed, tmp_path):
        # Sanitizer on: WAL appends, worker respawns and the recovery
        # replay must never reuse a (key, IV) pair.
        journal_dir = str(tmp_path / "crypto-sanitizer")
        sanitizer.enable(journal_dir)
        service = AttestationService(b"ias-secret-for-wal")
        store = PartitionedShieldStore(
            shield_opt(num_buckets=256, num_mac_hashes=64),
            num_partitions=4,
            mode="processes",
            wal_dir=str(tmp_path / "wal"),
        )
        server = TCPShieldServer(store, service, request_deadline_s=10.0)
        server.start()
        counters = MonotonicCounterService()
        snapshotter = PartitionSnapshotter.for_store(store, counters)
        daemon = SnapshotDaemon(
            lambda: snapshotter.snapshot_bytes(store),
            tmp_path / "snaps",
            3600.0,
            lock=server.store_lock,
        )
        client = TCPShieldClient(
            server.address,
            service,
            store.enclave.measurement,
            bytes(range(32)),
            request_deadline_s=2.0,
            max_retries=12,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
        )
        model = {}
        counts = {}
        try:
            stream = OperationStream(RD95_Z, SMALL, self.NUM_PAIRS, seed=seed)
            for op in stream.load_operations():
                client.set(op.key, op.value)
                model[op.key] = op.value

            plan = faults.install(self._chaos_plan(seed))
            daemon.run_once()
            for i, op in enumerate(stream.operations(self.NUM_OPS)):
                if i % 10 == 0:
                    ctr = b"ctr-%d" % (i % 3)
                    client.increment(ctr)
                    counts[ctr] = counts.get(ctr, 0) + 1
                elif op.op == OP_GET:
                    assert client.get(op.key) == model[op.key]
                elif op.op == OP_SET:
                    client.set(op.key, op.value)
                    model[op.key] = op.value

            live = client.server_stats()

            # Recovered state byte-identical to the acknowledged writes.
            for key, value in sorted(model.items()):
                assert client.get(key) == value
            for ctr, count in sorted(counts.items()):
                assert client.get(ctr) == str(count).encode()

            # The win over WAL-off chaos (test_net_resilience): a worker
            # died and was respawned, yet nothing acknowledged was lost.
            assert plan.fires("shmring.write", "crash") == 1
            assert live["worker_recoveries"] >= 1
            assert live["worker_ops_lost"] == 0
            assert live["wal_appends"] >= 1
            faults.uninstall()
            daemon.run_once()
            assert store.partition_state in ("ok", "recovered")
        finally:
            faults.uninstall()
            client.close()
            server.close()
            store.close()
            sanitizer.disable()
        crypto = sanitizer.global_check(journal_dir)
        assert crypto.records > 0
