"""Sealing, monotonic counters, remote attestation, the attacker."""

import pytest

from repro.errors import (
    AttestationError,
    EnclaveError,
    RollbackError,
    SealingError,
)
from repro.sim import (
    Attacker,
    AttestationService,
    DHKeyPair,
    Enclave,
    Machine,
    MonotonicCounterService,
    SealingService,
    attested_handshake,
)


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def enclave(machine):
    return Enclave(machine, bytes(range(32)))


@pytest.fixture
def sealing():
    return SealingService(b"platform-secret-0")


class TestSealing:
    def test_roundtrip(self, machine, enclave, sealing):
        ctx = enclave.context()
        blob = sealing.seal(ctx, enclave, b"enclave secrets")
        assert b"enclave secrets" not in blob
        assert sealing.unseal(ctx, enclave, blob) == b"enclave secrets"

    def test_wrong_measurement_rejected(self, machine, enclave, sealing):
        ctx = enclave.context()
        blob = sealing.seal(ctx, enclave, b"secrets")
        other = Enclave(machine, bytes(32), name="other")
        with pytest.raises(SealingError):
            sealing.unseal(other.context(), other, blob)

    def test_wrong_platform_rejected(self, machine, enclave, sealing):
        ctx = enclave.context()
        blob = sealing.seal(ctx, enclave, b"secrets")
        other_platform = SealingService(b"different-secret!")
        with pytest.raises(SealingError):
            other_platform.unseal(ctx, enclave, blob)

    def test_tampered_blob_rejected(self, machine, enclave, sealing):
        ctx = enclave.context()
        blob = bytearray(sealing.seal(ctx, enclave, b"secrets"))
        blob[-1] ^= 1
        with pytest.raises(SealingError):
            sealing.unseal(ctx, enclave, bytes(blob))

    def test_truncated_blob_rejected(self, machine, enclave, sealing):
        with pytest.raises(SealingError):
            sealing.unseal(enclave.context(), enclave, b"short")

    def test_weak_platform_secret_rejected(self):
        with pytest.raises(SealingError):
            SealingService(b"weak")


class TestMonotonicCounters:
    def test_lifecycle(self, machine, enclave):
        svc = MonotonicCounterService()
        assert svc.create("snap") == 0
        ctx = enclave.context()
        assert svc.increment(ctx, "snap") == 1
        assert svc.increment(ctx, "snap") == 2
        assert svc.read("snap") == 2

    def test_increment_is_expensive(self, machine, enclave):
        svc = MonotonicCounterService()
        ctx = enclave.context()
        svc.increment(ctx, "snap")
        assert machine.elapsed_us() >= machine.cost.monotonic_counter_us

    def test_rollback_detection(self, machine, enclave):
        svc = MonotonicCounterService()
        ctx = enclave.context()
        svc.increment(ctx, "snap")
        svc.increment(ctx, "snap")
        svc.check_not_rolled_back("snap", 2)
        with pytest.raises(RollbackError):
            svc.check_not_rolled_back("snap", 1)

    def test_file_persistence(self, machine, enclave, tmp_path):
        path = str(tmp_path / "counters.json")
        svc = MonotonicCounterService(path)
        svc.increment(enclave.context(), "snap")
        reloaded = MonotonicCounterService(path)
        assert reloaded.read("snap") == 1


class TestAttestation:
    def test_quote_verify(self, machine, enclave):
        svc = AttestationService(b"ias-service-secret")
        quote = svc.quote(enclave.context(), enclave, b"report-data")
        svc.verify(quote, enclave.measurement)

    def test_wrong_measurement_rejected(self, machine, enclave):
        svc = AttestationService(b"ias-service-secret")
        quote = svc.quote(enclave.context(), enclave, b"report-data")
        with pytest.raises(AttestationError):
            svc.verify(quote, bytes(32))

    def test_forged_signature_rejected(self, machine, enclave):
        svc = AttestationService(b"ias-service-secret")
        quote = svc.quote(enclave.context(), enclave, b"report-data")
        quote.signature = bytes(32)
        with pytest.raises(AttestationError):
            svc.verify(quote, enclave.measurement)

    def test_handshake_derives_matching_suites(self, machine, enclave):
        svc = AttestationService(b"ias-service-secret")
        client, server = attested_handshake(
            svc, enclave.context(), enclave, bytes(range(32))
        )
        ct = client.encrypt(bytes(16), b"request")
        assert server.decrypt(bytes(16), ct) == b"request"
        assert server.mac(b"x") == client.mac(b"x")

    def test_dh_rejects_degenerate_public(self):
        pair = DHKeyPair(bytes(range(32)))
        with pytest.raises(AttestationError):
            pair.shared_secret(1)

    def test_dh_entropy_requirement(self):
        with pytest.raises(AttestationError):
            DHKeyPair(b"short")


class TestAttacker:
    def test_untrusted_read_write(self, machine, enclave):
        atk = Attacker(machine.memory)
        base = enclave.alloc_untrusted(64)
        machine.memory.raw_write(base, b"exposed")
        assert atk.read(base, 7) == b"exposed"
        atk.write(base, b"clobber")
        assert machine.memory.raw_read(base, 7) == b"clobber"

    def test_enclave_memory_unreachable(self, machine, enclave):
        atk = Attacker(machine.memory)
        base = enclave.alloc(64)
        with pytest.raises(EnclaveError):
            atk.read(base, 8)
        with pytest.raises(EnclaveError):
            atk.write(base, b"x")

    def test_flip_bit(self, machine, enclave):
        atk = Attacker(machine.memory)
        base = enclave.alloc_untrusted(8)
        machine.memory.raw_write(base, bytes(8))
        atk.flip_bit(base, 3)
        assert machine.memory.raw_read(base, 1) == bytes([1 << 3])

    def test_snapshot_replay(self, machine, enclave):
        atk = Attacker(machine.memory)
        base = enclave.alloc_untrusted(8)
        machine.memory.raw_write(base, b"version1")
        recorded = atk.snapshot(base, 8)
        machine.memory.raw_write(base, b"version2")
        atk.replay(recorded)
        assert machine.memory.raw_read(base, 8) == b"version1"

    def test_enumerate_untrusted(self, machine, enclave):
        atk = Attacker(machine.memory)
        base = enclave.alloc_untrusted(128)
        allocations = atk.untrusted_allocations()
        assert (base, 128) in allocations
