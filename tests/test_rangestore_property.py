"""Model-based testing of the ordered range store vs a sorted dict."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.ext import RangeShieldStore

_KEYS = st.sampled_from([f"k{i:02d}".encode() for i in range(16)])
_VALUES = st.binary(min_size=0, max_size=24)

_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), _KEYS, _VALUES),
        st.tuples(st.just("get"), _KEYS, st.just(b"")),
        st.tuples(st.just("delete"), _KEYS, st.just(b"")),
        st.tuples(st.just("range"), _KEYS, st.just(b"")),
    ),
    max_size=30,
)

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRangeStoreModel:
    @given(ops=_OPERATIONS, segment=st.sampled_from([1, 3, 8]))
    @_SETTINGS
    def test_matches_sorted_dict(self, ops, segment):
        store = RangeShieldStore(segment_size=segment)
        model = {}
        for op, key, value in ops:
            if op == "set":
                store.set(key, value)
                model[key] = value
            elif op == "get":
                if key in model:
                    assert store.get(key) == model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        store.get(key)
            elif op == "delete":
                if key in model:
                    store.delete(key)
                    del model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        store.delete(key)
            elif op == "range":
                end = key + b"~"
                got = list(store.range(key, end))
                expected = sorted(
                    (k, v) for k, v in model.items() if key <= k < end
                )
                assert got == expected
        assert len(store) == len(model)
        full = list(store.range(b"", b"\xff"))
        assert full == sorted(model.items())

    @given(ops=_OPERATIONS)
    @_SETTINGS
    def test_segments_always_verify(self, ops):
        """After any op sequence every segment hash must be consistent."""
        store = RangeShieldStore(segment_size=4)
        for op, key, value in ops:
            try:
                if op == "set":
                    store.set(key, value)
                elif op == "get":
                    store.get(key)
                elif op == "delete":
                    store.delete(key)
                else:
                    list(store.range(key, key + b"~"))
            except KeyNotFoundError:
                pass
        ctx = store.enclave.context()
        total_segments = -(-store.count // store.segment_size) if store.count else 0
        for segment in range(total_segments):
            store._verify_segment(ctx, segment)
