"""The threat model, end to end: every §3.3/§5.4/§7 attack class.

Each test plays the privileged adversary against a live store and
asserts the paper's claimed security outcome: confidentiality and
integrity violations are *detected*; availability attacks (hints,
pointers) are *tolerated or safely refused*.
"""

import struct

import pytest

from repro.core import ShieldStore, shield_opt
from repro.core.entry import HEADER_SIZE, MAC_SIZE
from repro.errors import (
    IntegrityError,
    KeyNotFoundError,
    PointerSafetyError,
    ReplayError,
    StoreError,
)
from repro.sim import Attacker
from repro.sim.memory import ENCLAVE_BASE


@pytest.fixture(params=["macbucket", "chained"])
def store(request):
    config = shield_opt(num_buckets=16, num_mac_hashes=8)
    if request.param == "chained":
        config = config.with_(mac_bucketing=False)
    return ShieldStore(config)


@pytest.fixture
def attacker(store):
    return Attacker(store.machine.memory)


def entry_addr(store, key: bytes) -> int:
    """Locate a key's entry record by walking raw chains."""
    ctx = store.enclave.context()
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    addr = int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8), "little"
    )
    mem = store.machine.memory
    while addr:
        from repro.core.entry import unpack_header

        header = unpack_header(mem.raw_read(addr, HEADER_SIZE))
        enc_kv = mem.raw_read(addr + HEADER_SIZE, header.kv_size)
        plain = store.suite.decrypt(header.iv_ctr, enc_kv)
        if plain[: header.key_size] == key:
            return addr
        addr = header.next_ptr
    raise AssertionError(f"{key!r} not found in raw chains")


class TestConfidentiality:
    def test_plaintext_never_in_untrusted_memory(self, store, attacker):
        secret_key = b"customer-record-0042"
        secret_val = b"ssn=123-45-6789;balance=100000"
        store.set(secret_key, secret_val)
        for base, size in attacker.untrusted_allocations():
            dump = attacker.read(base, size)
            assert secret_key not in dump
            assert secret_val not in dump
            assert b"123-45-6789" not in dump

    def test_same_value_different_ciphertexts(self, store, attacker):
        store.set(b"key-a", b"same-value-bytes")
        store.set(b"key-b", b"same-value-bytes")
        addr_a, addr_b = entry_addr(store, b"key-a"), entry_addr(store, b"key-b")
        ct_a = attacker.read(addr_a + HEADER_SIZE, 16 + 5)
        ct_b = attacker.read(addr_b + HEADER_SIZE, 16 + 5)
        assert ct_a != ct_b  # per-entry random IVs


class TestIntegrity:
    def test_ciphertext_tamper_detected(self, store, attacker):
        store.set(b"victim", b"original-value")
        addr = entry_addr(store, b"victim")
        attacker.flip_bit(addr + HEADER_SIZE + 3, 5)
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"victim")

    def test_stored_mac_tamper_detected(self, store, attacker):
        """Tamper the *authoritative* stored MAC: the entry field in the
        chained configuration, the MAC-bucket copy when that optimization
        holds the copy integrity verification reads."""
        store.set(b"victim", b"original-value")
        if store.macbuckets is None:
            addr = entry_addr(store, b"victim")
            attacker.flip_bit(addr + HEADER_SIZE + 6 + 14 + 2, 1)
        else:
            bucket = store.keyring.keyed_bucket_hash(
                b"victim", store.config.num_buckets
            )
            mac_ptr = int.from_bytes(
                store.machine.memory.raw_read(
                    store.buckets.slot_addr(bucket) + 8, 8
                ),
                "little",
            )
            from repro.core.macbucket import NODE_HEADER

            attacker.flip_bit(mac_ptr + NODE_HEADER + 2, 1)
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"victim")

    def test_size_field_tamper_detected(self, store, attacker):
        store.set(b"victim", b"original-value")
        addr = entry_addr(store, b"victim")
        attacker.write(addr + 9, struct.pack("<I", 2))  # shrink key_size
        with pytest.raises((IntegrityError, ReplayError, StoreError, KeyNotFoundError)):
            store.get(b"victim")

    def test_iv_tamper_detected(self, store, attacker):
        store.set(b"victim", b"original-value")
        addr = entry_addr(store, b"victim")
        attacker.flip_bit(addr + 17 + 4, 2)
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"victim")

    def test_set_on_tampered_bucket_detected(self, store, attacker):
        """Writes verify before blessing attacker-fed state (§4.3)."""
        store.set(b"victim", b"original-value")
        addr = entry_addr(store, b"victim")
        attacker.flip_bit(addr + HEADER_SIZE, 0)
        with pytest.raises((IntegrityError, ReplayError)):
            store.set(b"victim", b"replacement-val")


class TestReplay:
    def test_entry_replay_detected(self, store, attacker):
        store.set(b"victim", b"version-ONE")
        addr_v1 = entry_addr(store, b"victim")
        size = HEADER_SIZE + 6 + 11 + MAC_SIZE
        recorded_entry = attacker.snapshot(addr_v1, size)
        # Record the MAC bucket too when that optimization is on.
        bucket = store.keyring.keyed_bucket_hash(b"victim", store.config.num_buckets)
        recorded_macb = None
        if store.macbuckets is not None:
            mac_ptr = int.from_bytes(
                store.machine.memory.raw_read(
                    store.buckets.slot_addr(bucket) + 8, 8
                ),
                "little",
            )
            recorded_macb = attacker.snapshot(mac_ptr, store.macbuckets.node_size)
        store.set(b"victim", b"version-TWO")
        attacker.replay(recorded_entry)
        if recorded_macb is not None:
            attacker.replay(recorded_macb)
        with pytest.raises(ReplayError):
            store.get(b"victim")

    def test_chain_truncation_detected(self, store, attacker):
        """Hiding an entry by rewriting chain pointers must not produce
        an authenticated miss."""
        # Put several keys into one bucket's chain.
        keys = [f"key-{i}".encode() for i in range(24)]
        for key in keys:
            store.set(key, b"v")
        # Truncate every bucket chain to at most its head entry.
        for bucket in range(store.config.num_buckets):
            head = int.from_bytes(
                store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
                "little",
            )
            if head:
                attacker.write(head, struct.pack("<Q", 0))
        detected = 0
        for key in keys:
            try:
                store.get(key)
            except (ReplayError, IntegrityError):
                detected += 1
            except KeyNotFoundError:
                pytest.fail("truncated chain produced an authenticated miss")
        assert detected > 0

    def test_cross_bucket_splice_detected(self, store, attacker):
        """Moving a valid entry to a different bucket is caught by the
        per-set hashes even though the entry's own MAC verifies."""
        store.set(b"victim", b"value")
        addr = entry_addr(store, b"victim")
        victim_bucket = store.keyring.keyed_bucket_hash(
            b"victim", store.config.num_buckets
        )
        other_bucket = (victim_bucket + 1) % store.config.num_buckets
        attacker.write(
            store.buckets.slot_addr(other_bucket), struct.pack("<Q", addr)
        )
        attacker.write(store.buckets.slot_addr(victim_bucket), struct.pack("<Q", 0))
        with pytest.raises((ReplayError, IntegrityError, KeyNotFoundError)):
            store.get(b"victim")


class TestAvailabilityAttacks:
    def test_hint_corruption_tolerated_with_two_step(self, attacker=None):
        config = shield_opt(num_buckets=8, num_mac_hashes=8, two_step_search=True)
        store = ShieldStore(config)
        atk = Attacker(store.machine.memory)
        store.set(b"victim", b"value")
        addr = entry_addr(store, b"victim")
        atk.write(addr + 8, bytes([store.keyring.key_hint(b"victim") ^ 0xFF]))
        # Hint no longer matches, but the entry MAC covers the hint field,
        # so the tampering is detected rather than silently tolerated.
        with pytest.raises((IntegrityError, ReplayError)):
            store.get(b"victim")

    def test_pointer_into_enclave_blocked(self):
        store = ShieldStore(shield_opt(num_buckets=8, num_mac_hashes=8))
        atk = Attacker(store.machine.memory)
        store.set(b"a", b"b")
        bucket = store.keyring.keyed_bucket_hash(b"a", store.config.num_buckets)
        atk.write(
            store.buckets.slot_addr(bucket),
            struct.pack("<Q", ENCLAVE_BASE + 4096),
        )
        with pytest.raises(PointerSafetyError):
            store.get(b"a")

    def test_pointer_check_disabled_is_vulnerable(self):
        """§7: without the range check the enclave would chase the pointer."""
        config = shield_opt(num_buckets=8, num_mac_hashes=8, pointer_check=False)
        store = ShieldStore(config)
        atk = Attacker(store.machine.memory)
        store.set(b"a", b"b")
        bucket = store.keyring.keyed_bucket_hash(b"a", store.config.num_buckets)
        atk.write(
            store.buckets.slot_addr(bucket),
            struct.pack("<Q", ENCLAVE_BASE + 4096),
        )
        with pytest.raises(Exception):  # crashes unsafely, but not PointerSafetyError
            store.get(b"a")

    def test_mac_bucket_pointer_corruption_detected(self, store, attacker):
        if store.macbuckets is None:
            pytest.skip("chained configuration has no MAC buckets")
        store.set(b"victim", b"value")
        bucket = store.keyring.keyed_bucket_hash(b"victim", store.config.num_buckets)
        attacker.write(store.buckets.slot_addr(bucket) + 8, struct.pack("<Q", 0))
        with pytest.raises((ReplayError, IntegrityError)):
            store.get(b"victim")
