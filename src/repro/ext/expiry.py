"""TTL/expiration support — memcached semantics over ShieldStore.

memcached (the paper's reference application) attaches an expiry to
every item; ShieldStore's entry format has no expiry field.  Rather than
alter the Figure 5 layout, this wrapper embeds an expiry header *inside
the encrypted value*, which has a security property the plaintext field
lacks: the host cannot learn — let alone extend or shorten — an item's
lifetime, because the deadline is confidential and integrity-protected
with the rest of the value.

Expiry is judged against the machine's *simulated* clock, so tests are
deterministic and benchmarks account reclamation work honestly.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import KeyNotFoundError, StoreError

_HEADER = struct.Struct("<dI")  # deadline_us, flags
_NO_EXPIRY = 0.0


class ExpiringStore:
    """ShieldStore wrapper with per-item TTLs (memcached semantics).

    Expired items behave as absent on read; their storage is reclaimed
    lazily on access (and eagerly via :meth:`purge_expired`).
    """

    def __init__(self, store):
        self.store = store
        self.machine = store.machine
        self.lazy_reclaims = 0

    # -- envelope -----------------------------------------------------------
    def _now_us(self) -> float:
        return self.machine.elapsed_us()

    def _wrap(self, value: bytes, ttl_us: Optional[float]) -> bytes:
        if ttl_us is None:
            deadline = _NO_EXPIRY
        else:
            if ttl_us <= 0:
                raise StoreError("ttl_us must be positive (or None for no expiry)")
            deadline = self._now_us() + ttl_us
        return _HEADER.pack(deadline, 0) + value

    def _unwrap(self, key: bytes, envelope: bytes) -> bytes:
        if len(envelope) < _HEADER.size:
            raise StoreError(f"value under {key!r} is not an expiry envelope")
        deadline, _flags = _HEADER.unpack_from(envelope, 0)
        if deadline != _NO_EXPIRY and self._now_us() >= deadline:
            # Lazy reclamation: drop the corpse, report a miss.
            self.store.delete(key)
            self.lazy_reclaims += 1
            raise KeyNotFoundError(key)
        return envelope[_HEADER.size :]

    # -- operations -----------------------------------------------------------
    def set(self, key: bytes, value: bytes, ttl_us: Optional[float] = None) -> None:
        """Store with an optional TTL in simulated microseconds."""
        self.store.set(key, self._wrap(bytes(value), ttl_us))

    def get(self, key: bytes) -> bytes:
        return self._unwrap(bytes(key), self.store.get(key))

    def delete(self, key: bytes) -> None:
        self.store.delete(key)

    def contains(self, key: bytes) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFoundError:
            return False

    def touch(self, key: bytes, ttl_us: Optional[float]) -> None:
        """Reset a live item's TTL (memcached ``touch``)."""
        value = self.get(key)
        self.set(key, value, ttl_us)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        """Append preserving the current deadline."""
        envelope = self.store.get(bytes(key))
        deadline, flags = _HEADER.unpack_from(envelope, 0)
        if deadline != _NO_EXPIRY and self._now_us() >= deadline:
            self.store.delete(key)
            self.lazy_reclaims += 1
            raise KeyNotFoundError(key)
        new_value = envelope[_HEADER.size :] + bytes(suffix)
        self.store.set(key, _HEADER.pack(deadline, flags) + new_value)
        return new_value

    def ttl_remaining_us(self, key: bytes) -> Optional[float]:
        """Remaining lifetime, or None for immortal items."""
        envelope = self.store.get(bytes(key))
        deadline, _flags = _HEADER.unpack_from(envelope, 0)
        if deadline == _NO_EXPIRY:
            return None
        remaining = deadline - self._now_us()
        if remaining <= 0:
            self.store.delete(key)
            self.lazy_reclaims += 1
            raise KeyNotFoundError(key)
        return remaining

    def purge_expired(self) -> int:
        """Eagerly reclaim every expired item; returns the count."""
        now = self._now_us()
        victims = []
        for key, envelope in self.store.iter_items():
            deadline, _flags = _HEADER.unpack_from(envelope, 0)
            if deadline != _NO_EXPIRY and now >= deadline:
                victims.append(key)
        for key in victims:
            self.store.delete(key)
        return len(victims)

    def __len__(self) -> int:
        return len(self.store)
