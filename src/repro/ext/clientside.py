"""Client-side encryption — the design §3.2 argues *against*, built.

In the client-side model the server passively stores blobs the client
encrypted; the enclave (and the server operator) never see plaintext.
The paper rejects it for three reasons, each of which this
implementation makes concrete and testable:

1. **no server-side computation** — ``increment``/``append`` need a full
   client round trip (fetch, decrypt, modify, re-encrypt, store), costed
   here per §6.4's network constants;
2. **single-writer keys** — other clients need the data key and the
   freshness metadata distributed out of band;
   :class:`ClientKeyDirectory` models that coordination surface;
3. **client-borne integrity** — the *client* must remember a freshness
   root for every key (or trust the server not to replay); here each
   client tracks per-key version watermarks, the minimum state that
   defeats replays, and pays the bookkeeping for it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.keys import derive_key
from repro.crypto.suite import CipherSuite, make_suite
from repro.errors import IntegrityError, KeyNotFoundError, ReplayError
from repro.sim.enclave import ExecContext, Machine

_VERSION_SIZE = 8


class PassiveStore:
    """The untrusted server: stores opaque blobs, computes nothing.

    Runs outside any enclave — there is nothing to protect server-side.
    A malicious server is modeled by :meth:`rollback`.
    """

    def __init__(self, machine: Optional[Machine] = None):
        self.machine = machine if machine is not None else Machine()
        self._blobs: Dict[bytes, bytes] = {}
        self._history: Dict[bytes, list] = {}

    def put(self, ctx: ExecContext, key: bytes, blob: bytes) -> None:
        cost = self.machine.cost
        ctx.charge(cost.op_dispatch_cycles)
        ctx.charge(cost.mem_cycles(len(blob), write=True, in_epc=False))
        self._blobs[bytes(key)] = bytes(blob)
        self._history.setdefault(bytes(key), []).append(bytes(blob))

    def fetch(self, ctx: ExecContext, key: bytes) -> bytes:
        cost = self.machine.cost
        ctx.charge(cost.op_dispatch_cycles)
        blob = self._blobs.get(bytes(key))
        if blob is None:
            raise KeyNotFoundError(key)
        ctx.charge(cost.mem_cycles(len(blob), write=False, in_epc=False))
        return blob

    def rollback(self, key: bytes, versions_back: int = 1) -> None:
        """Malicious server: serve an older blob for ``key``."""
        history = self._history.get(bytes(key), [])
        if len(history) > versions_back:
            self._blobs[bytes(key)] = history[-1 - versions_back]


@dataclass
class ClientKeyDirectory:
    """Out-of-band key distribution for multi-client deployments.

    The paper: "To allow multiple clients to decrypt the data, multiple
    clients need to be coordinated to exchange required keys and other
    security meta-data."  This is that machinery, minimally.
    """

    master: bytes

    def suite_for_namespace(self, namespace: str) -> CipherSuite:
        if "/" in namespace:
            # "a/b" would make cs/a/b/enc ambiguous with namespace "a"
            # and sub-label "b/enc" — the derivation labels must stay
            # prefix-free (see repro.analysis.cryptomap).
            raise ValueError(f"namespace must not contain '/': {namespace!r}")
        return make_suite(
            "fast-hashlib",
            derive_key(self.master, f"cs/{namespace}/enc"),
            derive_key(self.master, f"cs/{namespace}/mac"),
        )


class ClientSideClient:
    """One client of the client-side-encryption deployment."""

    def __init__(
        self,
        store: PassiveStore,
        directory: ClientKeyDirectory,
        namespace: str = "default",
    ):
        self.store = store
        self.suite = directory.suite_for_namespace(namespace)
        self.machine = store.machine
        self._ctx = self.machine.context(0, in_enclave=False)
        # Freshness watermarks: without these, the server could replay
        # any stale blob undetected.  They are *client* state the
        # server-side model keeps in the enclave instead.
        self._versions: Dict[bytes, int] = {}

    # -- wire-format helpers ------------------------------------------------
    @staticmethod
    def _iv(key: bytes, version: int) -> bytes:
        # The IV must bind (key, version), not version alone: every key
        # in a namespace shares one derived data key, so two keys at the
        # same version would otherwise reuse keystream.  Both ends can
        # recompute it, so it needs no wire bytes.
        return version.to_bytes(8, "little") + hashlib.sha256(key).digest()[:8]

    def _seal(self, key: bytes, value: bytes, version: int) -> bytes:
        iv = self._iv(key, version)
        self._ctx.charge_aes(len(value))
        ciphertext = self.suite.encrypt(iv, value)
        header = version.to_bytes(_VERSION_SIZE, "little")
        self._ctx.charge_cmac(len(key) + len(header) + len(ciphertext))
        tag = self.suite.mac(key + header + ciphertext)
        return header + ciphertext + tag

    def _open(self, key: bytes, blob: bytes) -> Tuple[int, bytes]:
        if len(blob) < _VERSION_SIZE + 16:
            raise IntegrityError("client-side blob too short")
        header, ciphertext, tag = (
            blob[:_VERSION_SIZE],
            blob[_VERSION_SIZE:-16],
            blob[-16:],
        )
        self._ctx.charge_cmac(len(key) + len(header) + len(ciphertext))
        if not self.suite.verify(key + header + ciphertext, tag):
            raise IntegrityError(f"blob for {key!r} failed authentication")
        version = int.from_bytes(header, "little")
        expected = self._versions.get(key)
        if expected is not None and version < expected:
            raise ReplayError(
                f"server returned version {version} of {key!r}, but this "
                f"client has seen version {expected}: replay/rollback"
            )
        iv = self._iv(key, version)
        self._ctx.charge_aes(len(ciphertext))
        return version, self.suite.decrypt(iv, ciphertext)

    def _network_round_trip(self, nbytes: int) -> None:
        cost = self.machine.cost
        self._ctx.charge_us(cost.net_rtt_us + nbytes * cost.net_per_byte_us)

    # -- operations -----------------------------------------------------------
    def set(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        version = self._versions.get(key, 0) + 1
        blob = self._seal(key, value, version)
        self._network_round_trip(len(blob))
        self.store.put(self._ctx, key, blob)
        self._versions[key] = version

    def get(self, key: bytes) -> bytes:
        key = bytes(key)
        blob = self.store.fetch(self._ctx, key)
        self._network_round_trip(len(blob))
        version, value = self._open(key, blob)
        self._versions[key] = max(self._versions.get(key, 0), version)
        return value

    def append(self, key: bytes, suffix: bytes) -> bytes:
        """Append needs a full fetch-modify-store round trip here —
        the cost the server-side model's one-shot ``append`` avoids."""
        try:
            current = self.get(key)
        except KeyNotFoundError:
            current = b""
        new_value = current + bytes(suffix)
        self.set(key, new_value)
        return new_value

    def increment(self, key: bytes, delta: int = 1) -> int:
        try:
            current = int(self.get(key))
        except KeyNotFoundError:
            current = 0
        new_value = current + delta
        self.set(key, str(new_value).encode())
        return new_value

    def sync_watermarks_from(self, other: "ClientSideClient") -> None:
        """The §3.2 coordination burden: clients must exchange freshness
        state or a replay against one is invisible to the other."""
        for key, version in other._versions.items():
            self._versions[key] = max(self._versions.get(key, 0), version)
