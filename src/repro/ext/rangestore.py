"""Range-query ShieldStore: the §7 future-work ordered index, built.

The paper's hash index cannot serve range queries; §7 sketches a
skiplist/balanced-tree alternative and notes it "requires substantial
changes ... such as the re-designing of integrity verification
meta-data".  This module is that redesign:

* entries keep the Figure 5 record format and live, encrypted, in
  untrusted memory (reusing the entry codec and extra heap allocator);
* an ordered index (skiplist) maps plaintext key order to entry
  addresses — revealing only the *order* of keys, which any
  range-servable index must (cf. HardIDX);
* integrity metadata is re-designed from bucket sets to **ordered
  segments**: the sorted key sequence is cut into runs of
  ``segment_size`` entries and one in-enclave MAC hash authenticates
  each run's entry MACs *in order* — so range results can neither be
  truncated, reordered, nor replayed without a segment-hash mismatch.
"""

from __future__ import annotations

import os
import struct
from hmac import compare_digest
from typing import Iterator, List, Optional, Tuple

from repro.core.allocator import ExtraHeapAllocator
from repro.core.entry import (
    HEADER_SIZE,
    MAC_SIZE,
    EntryHeader,
    mac_message,
    pack_header,
    unpack_header,
)
from repro.crypto.keys import KeyRing
from repro.crypto.suite import make_suite
from repro.errors import IntegrityError, KeyNotFoundError, ReplayError
from repro.ext.skiplist import SkipList
from repro.sim.cycles import MB
from repro.sim.enclave import Enclave, ExecContext, Machine

_MEASUREMENT = bytes([0x5E]) * 32


class RangeShieldStore:
    """Ordered shielded store with verified range queries."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        segment_size: int = 32,
        suite_name: str = "fast-hashlib",
        master_secret: Optional[bytes] = None,
        seed: int = 2019,
    ):
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        self.machine = machine if machine is not None else Machine(seed=seed)
        self.enclave = Enclave(self.machine, _MEASUREMENT, name="range-shieldstore")
        self._ctx = self.enclave.context()
        if master_secret is None:
            master_secret = bytes(self.machine.rng.getrandbits(8) for _ in range(32))
        self.keyring = KeyRing(master_secret)
        self.suite = make_suite(
            suite_name, self.keyring.enc_key, self.keyring.mac_key
        )
        self.allocator = ExtraHeapAllocator(self.enclave, 4 * MB)
        self.segment_size = segment_size
        # Untrusted ordered index: plaintext key -> entry address.  Only
        # key *order* is exposed; key bytes never appear in entry records
        # unencrypted (the index is the accepted leak of range support).
        self._index = SkipList(seed=seed)
        # In-enclave segment hashes, one per run of segment_size keys.
        self._segment_hashes: List[bytes] = []
        self.count = 0
        # Entry-IV allocator: entropy salt + monotone block counter.  An
        # update must not reuse any keystream block of the entry it
        # replaces — advancing the old IV by a single block overlaps the
        # remaining blocks of a multi-block record.
        self._iv_salt = int.from_bytes(os.urandom(8), "big")
        self._iv_seq = 0

    def _alloc_iv(self, nbytes: int) -> bytes:
        iv_ctr = struct.pack(">QQ", self._iv_salt, self._iv_seq)
        self._iv_seq += (nbytes + 15) // 16
        return iv_ctr

    # ------------------------------------------------------------------
    # entry record I/O (same wire format as the hash store)
    # ------------------------------------------------------------------
    def _write_record(
        self, ctx: ExecContext, key: bytes, value: bytes, iv_ctr: bytes
    ) -> Tuple[int, bytes]:
        header = EntryHeader(
            next_ptr=0,
            key_hint=self.keyring.key_hint(key),
            key_size=len(key),
            val_size=len(value),
            iv_ctr=iv_ctr,
        )
        ctx.charge_aes(len(key) + len(value))
        enc_kv = self.suite.encrypt(iv_ctr, key + value)
        ctx.charge_cmac(len(enc_kv) + 25)
        mac = self.suite.mac(mac_message(header, enc_kv))
        addr = self.allocator.alloc(ctx, header.total_size)
        self.machine.memory.write(ctx, addr, pack_header(header) + enc_kv + mac)
        return addr, mac

    def _read_record(self, ctx: ExecContext, addr: int) -> Tuple[EntryHeader, bytes, bytes]:
        header = unpack_header(self.machine.memory.read(ctx, addr, HEADER_SIZE))
        enc_kv = self.machine.memory.read(ctx, addr + HEADER_SIZE, header.kv_size)
        mac = self.machine.memory.read(
            ctx, addr + HEADER_SIZE + header.kv_size, MAC_SIZE
        )
        return header, enc_kv, mac

    def _decrypt(self, ctx: ExecContext, header: EntryHeader, enc_kv: bytes) -> Tuple[bytes, bytes]:
        ctx.charge_aes(len(enc_kv))
        plain = self.suite.decrypt(header.iv_ctr, enc_kv)
        return plain[: header.key_size], plain[header.key_size :]

    # ------------------------------------------------------------------
    # segment integrity
    # ------------------------------------------------------------------
    def _segment_of(self, position: int) -> int:
        return position // self.segment_size

    def _ordered_addrs(self) -> List[int]:
        return [addr for _key, addr in self._index.items()]

    def _segment_macs(self, ctx: ExecContext, segment: int) -> List[bytes]:
        addrs = self._ordered_addrs()
        start = segment * self.segment_size
        macs = []
        for addr in addrs[start : start + self.segment_size]:
            header = unpack_header(self.machine.memory.read(ctx, addr, HEADER_SIZE))
            macs.append(
                self.machine.memory.read(
                    ctx, addr + HEADER_SIZE + header.kv_size, MAC_SIZE
                )
            )
        return macs

    def _compute_segment_hash(self, ctx: ExecContext, macs: List[bytes]) -> bytes:
        message = b"".join(macs)
        ctx.charge_cmac(len(message))
        return self.suite.mac(message) if macs else bytes(16)

    def _rebuild_segments_from(self, ctx: ExecContext, position: int) -> None:
        """Recompute segment hashes from the segment containing
        ``position`` to the end (an insert/delete shifts later runs)."""
        first = self._segment_of(position)
        total_segments = -(-self.count // self.segment_size) if self.count else 0
        del self._segment_hashes[first:]
        for segment in range(first, total_segments):
            macs = self._segment_macs(ctx, segment)
            self._segment_hashes.append(self._compute_segment_hash(ctx, macs))

    def _verify_segment(self, ctx: ExecContext, segment: int) -> None:
        macs = self._segment_macs(ctx, segment)
        computed = self._compute_segment_hash(ctx, macs)
        if segment >= len(self._segment_hashes) or not compare_digest(
            self._segment_hashes[segment], computed
        ):
            raise ReplayError(
                f"ordered-segment hash mismatch in segment {segment}: "
                "untrusted index entries were tampered with or replayed"
            )

    def _position_of(self, key: bytes) -> int:
        position = 0
        for existing_key, _addr in self._index.items():
            if existing_key >= key:
                break
            position += 1
        return position

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def set(self, key: bytes, value: bytes, ctx: Optional[ExecContext] = None) -> None:
        """Insert or update ``key``."""
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        key, value = bytes(key), bytes(value)
        existing = self._index.search(key)
        iv = self._alloc_iv(len(key) + len(value))
        if existing is not None:
            header, _enc, _mac = self._read_record(ctx, existing)
            self.allocator.free(ctx, existing, header.total_size)
        else:
            ctx.charge_rand(16)  # the per-entry IV cost of a real insert
        addr, _mac = self._write_record(ctx, key, value, iv)
        was_new = self._index.insert(key, addr)
        if was_new:
            self.count += 1
        self._rebuild_segments_from(ctx, self._position_of(key))

    def get(self, key: bytes, ctx: Optional[ExecContext] = None) -> bytes:
        """Point lookup with segment verification."""
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        key = bytes(key)
        addr = self._index.search(key)
        if addr is None:
            raise KeyNotFoundError(key)
        self._verify_segment(ctx, self._segment_of(self._position_of(key)))
        header, enc_kv, mac = self._read_record(ctx, addr)
        ctx.charge_cmac(len(enc_kv) + 25)
        if not compare_digest(self.suite.mac(mac_message(header, enc_kv)), mac):
            raise IntegrityError(f"entry MAC mismatch for {key!r}")
        plain_key, plain_val = self._decrypt(ctx, header, enc_kv)
        if plain_key != key:
            raise IntegrityError(
                "index points at an entry for a different key (index splice)"
            )
        return plain_val

    def delete(self, key: bytes, ctx: Optional[ExecContext] = None) -> None:
        """Remove ``key``."""
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        key = bytes(key)
        addr = self._index.search(key)
        if addr is None:
            raise KeyNotFoundError(key)
        position = self._position_of(key)
        self._verify_segment(ctx, self._segment_of(position))
        header, _enc, _mac = self._read_record(ctx, addr)
        self._index.delete(key)
        self.allocator.free(ctx, addr, header.total_size)
        self.count -= 1
        self._rebuild_segments_from(ctx, position)

    def range(
        self, start: bytes, end: bytes, ctx: Optional[ExecContext] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) for start <= key < end, verified.

        Every segment overlapping the range is verified before its
        entries are released, so a malicious host cannot drop, reorder,
        or substitute results.
        """
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        start, end = bytes(start), bytes(end)
        verified = set()
        position = self._position_of(start)
        for key, addr in self._index.range(start, end):
            segment = self._segment_of(position)
            if segment not in verified:
                self._verify_segment(ctx, segment)
                verified.add(segment)
            header, enc_kv, mac = self._read_record(ctx, addr)
            ctx.charge_cmac(len(enc_kv) + 25)
            if not compare_digest(
                self.suite.mac(mac_message(header, enc_kv)), mac
            ):
                raise IntegrityError(f"entry MAC mismatch for {key!r}")
            plain_key, plain_val = self._decrypt(ctx, header, enc_kv)
            if plain_key != key:
                raise IntegrityError("index points at a substituted entry")
            yield plain_key, plain_val
            position += 1

    def __len__(self) -> int:
        return self.count

    def contains(self, key: bytes) -> bool:
        """Membership test (verified)."""
        try:
            self.get(key)
            return True
        except KeyNotFoundError:
            return False
