"""Consistent-hash ring shared by shard placement and replica placement.

Factored out of :mod:`repro.ext.cluster` so the same ring drives both
uses:

* **shard placement** — :class:`~repro.ext.cluster.ShieldCluster` maps a
  key to the node owning the first virtual-node token at or after the
  key's position (hash-disjoint ownership, no coordination);
* **replica placement** — a replication group walks the ring *forward*
  from the owner collecting the next R - 1 distinct nodes
  (:meth:`HashRing.preference_list`), so each key has a stable,
  membership-local preference order and adding or draining one node
  only disturbs the ranges adjacent to its tokens.

Positions come from SHA-256, never the process-salted builtin ``hash``,
so ownership is stable across processes and runs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple

from repro.errors import StoreError

DEFAULT_VNODES = 64  # virtual nodes per member

# Sorts after any node id in a (position, node_id) tuple, so a lookup
# lands past every token that shares the key's exact position.
_POSITION_CEILING = "\xff" * 8


def ring_position(token: bytes) -> int:
    """Stable 64-bit ring position of an arbitrary byte token."""
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring of named members with virtual nodes."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise StoreError("a ring needs at least one virtual node")
        self.vnodes = vnodes
        self._ring: List[Tuple[int, str]] = []
        self._members: set = set()

    # -- membership ---------------------------------------------------------
    def add(self, node_id: str) -> None:
        """Insert a member's virtual-node tokens."""
        if node_id in self._members:
            raise StoreError(f"duplicate ring member {node_id!r}")
        self._members.add(node_id)
        for vnode in range(self.vnodes):
            position = ring_position(f"{node_id}/{vnode}".encode())
            bisect.insort(self._ring, (position, node_id))

    def remove(self, node_id: str) -> None:
        """Remove every token of a member."""
        if node_id not in self._members:
            raise StoreError(f"unknown ring member {node_id!r}")
        self._members.discard(node_id)
        self._ring = [(p, n) for p, n in self._ring if n != node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    # -- lookups ------------------------------------------------------------
    def _successor_index(self, key: bytes) -> int:
        if not self._ring:
            raise StoreError("ring has no members")
        position = ring_position(bytes(key))
        idx = bisect.bisect_right(self._ring, (position, _POSITION_CEILING))
        return 0 if idx == len(self._ring) else idx

    def owner(self, key: bytes) -> str:
        """First member token at/after the key's position (wrap-around)."""
        return self._ring[self._successor_index(key)][1]

    def preference_list(self, key: bytes, n: int) -> List[str]:
        """The key's first ``n`` *distinct* members, in successor order.

        Walks the ring forward from the owner token, skipping repeat
        members (each member holds many virtual nodes).  Fewer than
        ``n`` members on the ring means the whole membership, still in
        preference order.
        """
        if n < 1:
            raise StoreError("preference list length must be positive")
        start = self._successor_index(key)
        picked: List[str] = []
        seen = set()
        for step in range(len(self._ring)):
            node_id = self._ring[(start + step) % len(self._ring)][1]
            if node_id in seen:
                continue
            seen.add(node_id)
            picked.append(node_id)
            if len(picked) == n:
                break
        return picked
