"""Sharded (and optionally replicated) multi-node ShieldStore cluster.

The paper evaluates a single 4-core host ("due to the current lack of
SGX support in server-class multi-socket systems", §6.1) — but its
deployment story is cloud key-value storage, which shards.  This module
scales the design *out* the same way §5.3 scales it *up*: hash-disjoint
ownership, no cross-node coordination on the data path.

* each shard is an independent ShieldStore enclave on its own simulated
  machine, with its own master secret (one compromised platform never
  weakens another);
* clients route by consistent hashing over a virtual-node ring
  (:mod:`repro.ext.ring`, shared with replica placement), after
  attesting every shard's enclave;
* shards can be added or drained at runtime; only the keys whose ring
  ownership changes migrate, streamed through the client's attested
  sessions (re-encrypted per-shard — shards share no keys);
* with ``replicas=R > 1`` every key lives on its ring preference list
  (owner + R-1 successors) as a versioned LWW record
  (:mod:`repro.ext.replication`), reads and writes take a
  ``consistency`` level (ONE or QUORUM), and :meth:`kill_node` models a
  node loss the survivors absorb — the in-process analogue of the TCP
  replication group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import StoreConfig
from repro.core.store import ShieldStore
from repro.errors import AttestationError, KeyNotFoundError, StoreError
from repro.ext.replication import (
    CONSISTENCY_LEVELS,
    CONSISTENCY_ONE,
    FLAG_TOMBSTONE,
    LamportClock,
    is_tombstone,
    node_origin,
    pack_record,
    record_version,
    unpack_record,
)
from repro.ext.ring import HashRing
from repro.sim.attestation import AttestationService
from repro.sim.enclave import Machine

_VNODES = 64  # virtual nodes per shard on the hash ring


class ShardNode:
    """One cluster member: a machine, an enclave, a store."""

    def __init__(self, node_id: str, config: StoreConfig, seed: int):
        self.node_id = node_id
        self.machine = Machine(seed=seed)
        self.store = ShieldStore(config, machine=self.machine)
        self.attested = False
        self.alive = True

    @property
    def measurement(self) -> bytes:
        return self.store.enclave.measurement


class ShieldCluster:
    """Client-side view of a sharded ShieldStore deployment."""

    def __init__(
        self,
        config: StoreConfig,
        attestation: AttestationService,
        num_nodes: int = 3,
        seed: int = 2019,
        replicas: int = 1,
        consistency: str = "quorum",
    ):
        if num_nodes < 1:
            raise StoreError("a cluster needs at least one node")
        if replicas < 1:
            raise StoreError("replicas must be at least 1")
        if replicas > num_nodes:
            raise StoreError("cannot place more replicas than nodes")
        if consistency not in CONSISTENCY_LEVELS:
            raise StoreError(f"unknown consistency level {consistency!r}")
        self.config = config
        self.attestation = attestation
        self._seed = seed
        self.replicas = replicas
        self.consistency = consistency
        self.nodes: Dict[str, ShardNode] = {}
        self._ring = HashRing(_VNODES)
        self.keys_migrated = 0
        # Coordinator-side version authority for replicated placement.
        self._clock = LamportClock()
        self._origin = node_origin("cluster-coordinator")
        for i in range(num_nodes):
            self.add_node(f"node-{i}")

    # -- ring lookups -------------------------------------------------------
    def owner_of(self, key: bytes) -> ShardNode:
        """Consistent-hash lookup: first ring token at/after the key."""
        if not len(self._ring):
            raise StoreError("cluster has no nodes")
        return self.nodes[self._ring.owner(bytes(key))]

    def preference_nodes(self, key: bytes) -> List[ShardNode]:
        """The key's replica set, in ring successor order."""
        width = min(self.replicas, len(self._ring))
        return [
            self.nodes[node_id]
            for node_id in self._ring.preference_list(bytes(key), width)
        ]

    # -- membership -----------------------------------------------------------
    def _attest(self, node: ShardNode) -> None:
        """Client-side attestation of a shard before trusting it."""
        ctx = node.store.enclave.context()
        quote = self.attestation.quote(ctx, node.store.enclave, b"cluster-join")
        self.attestation.verify(quote, node.measurement)
        node.attested = True

    def add_node(self, node_id: str) -> ShardNode:
        """Attest and join a new shard, migrating its ring ranges in."""
        if node_id in self.nodes:
            raise StoreError(f"duplicate node id {node_id!r}")
        node = ShardNode(node_id, self.config, self._seed + len(self.nodes))
        self._attest(node)
        old_ring_nonempty = len(self._ring) > 0
        self.nodes[node_id] = node
        self._ring.add(node_id)
        if old_ring_nonempty:
            if self.replicas == 1:
                self._rebalance_into(node)
            else:
                self._replace_all()
        return node

    def remove_node(self, node_id: str) -> int:
        """Drain a shard: move its keys to their new owners, then drop it."""
        node = self.nodes.get(node_id)
        if node is None:
            raise StoreError(f"unknown node {node_id!r}")
        if len(self.nodes) == 1:
            raise StoreError("cannot drain the last node")
        if len(self.nodes) - 1 < self.replicas:
            raise StoreError("draining would leave fewer nodes than replicas")
        items = list(node.store.iter_items())
        self._ring.remove(node_id)
        del self.nodes[node_id]
        if self.replicas == 1:
            moved = 0
            for key, value in items:
                self.owner_of(key).store.set(key, value)
                moved += 1
            self.keys_migrated += moved
            return moved
        return self._replace_all(extra=items)

    def kill_node(self, node_id: str) -> ShardNode:
        """Lose a node *without* draining it (crash, not decommission).

        The node stays on the ring (preference lists are stable), but
        reads and writes skip it; with ``replicas > 1`` the surviving
        replicas keep serving the key range.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise StoreError(f"unknown node {node_id!r}")
        node.alive = False
        return node

    def _rebalance_into(self, new_node: ShardNode) -> int:
        """Move keys whose ring ownership changed to the new shard."""
        moved = 0
        for node in list(self.nodes.values()):
            if node is new_node:
                continue
            relocating = [
                (key, value)
                for key, value in node.store.iter_items()
                if self.owner_of(key) is new_node
            ]
            for key, value in relocating:
                new_node.store.set(key, value)
                node.store.delete(key)
                moved += 1
        self.keys_migrated += moved
        return moved

    def _replace_all(self, extra=()) -> int:
        """Re-place every replicated record after a membership change.

        LWW-merges all copies (plus ``extra`` records streamed off a
        drained node), then makes each key present on exactly its
        preference list.  Quadratic in data size, which matches the
        migration story: rebalances stream through the trusted client,
        they are not a data-path operation.
        """
        merged: Dict[bytes, bytes] = {}

        def absorb(key: bytes, record: bytes) -> None:
            current = merged.get(key)
            if current is None or record_version(record) > record_version(
                current
            ):
                merged[key] = record

        for node in self.nodes.values():
            if not node.alive:
                continue
            for key, record in node.store.iter_items():
                absorb(key, record)
        for key, record in extra:
            absorb(key, record)
        moved = 0
        for key, record in merged.items():
            targets = {n.node_id for n in self.preference_nodes(key)}
            for node in self.nodes.values():
                if not node.alive:
                    continue
                try:
                    held = node.store.get(key)
                except KeyNotFoundError:
                    held = None
                if node.node_id in targets:
                    if held is None or record_version(held) < record_version(
                        record
                    ):
                        node.store.set(key, record)
                        moved += 1
                elif held is not None:
                    node.store.delete(key)
        self.keys_migrated += moved
        return moved

    # -- data path ---------------------------------------------------------
    def _checked(self, node: ShardNode) -> ShardNode:
        if not node.attested:
            raise AttestationError(f"node {node.node_id} was never attested")
        return node

    def _checked_owner(self, key: bytes) -> ShardNode:
        return self._checked(self.owner_of(bytes(key)))

    def _need(self, consistency: Optional[str]) -> Tuple[str, int]:
        level = consistency if consistency is not None else self.consistency
        if level not in CONSISTENCY_LEVELS:
            raise StoreError(f"unknown consistency level {level!r}")
        need = 1 if level == CONSISTENCY_ONE else self.replicas // 2 + 1
        return level, need

    def _write_record(
        self, key: bytes, record: bytes, consistency: Optional[str]
    ) -> None:
        _level, need = self._need(consistency)
        acks = 0
        for node in self.preference_nodes(key):
            if not self._checked(node).alive:
                continue
            node.store.set(key, record)
            acks += 1
        if acks < need:
            raise StoreError(
                f"write reached {acks} replica(s), needed {need}"
            )

    def _read_record(
        self, key: bytes, consistency: Optional[str]
    ) -> Optional[bytes]:
        """LWW winner across the live replica set (read-repairing)."""
        _level, need = self._need(consistency)
        replies: List[Tuple[ShardNode, Optional[bytes]]] = []
        for node in self.preference_nodes(key):
            if not self._checked(node).alive:
                continue
            try:
                replies.append((node, node.store.get(key)))
            except KeyNotFoundError:
                replies.append((node, None))
        if len(replies) < need:
            raise StoreError(
                f"read reached {len(replies)} replica(s), needed {need}"
            )
        winner: Optional[bytes] = None
        for _node, record in replies:
            if record is None:
                continue
            if winner is None or record_version(record) > record_version(winner):
                winner = record
        if winner is not None:
            for node, record in replies:
                if record is None or record_version(record) < record_version(
                    winner
                ):
                    node.store.set(key, winner)
        return winner

    def get(self, key: bytes, consistency: Optional[str] = None) -> bytes:
        key = bytes(key)
        if self.replicas == 1:
            return self._checked_owner(key).store.get(key)
        winner = self._read_record(key, consistency)
        if winner is None or is_tombstone(winner):
            raise KeyNotFoundError("no replica has the key")
        return unpack_record(winner)[3]

    def set(
        self, key: bytes, value: bytes, consistency: Optional[str] = None
    ) -> None:
        key, value = bytes(key), bytes(value)
        if self.replicas == 1:
            self._checked_owner(key).store.set(key, value)
            return
        record = pack_record(0, self._clock.tick(), self._origin, value)
        self._write_record(key, record, consistency)

    def delete(self, key: bytes, consistency: Optional[str] = None) -> None:
        key = bytes(key)
        if self.replicas == 1:
            self._checked_owner(key).store.delete(key)
            return
        self.get(key, consistency=consistency)  # delete-of-missing raises
        record = pack_record(FLAG_TOMBSTONE, self._clock.tick(), self._origin, b"")
        self._write_record(key, record, consistency)

    def append(
        self, key: bytes, suffix: bytes, consistency: Optional[str] = None
    ) -> bytes:
        key, suffix = bytes(key), bytes(suffix)
        if self.replicas == 1:
            return self._checked_owner(key).store.append(key, suffix)
        try:
            base = self.get(key, consistency=consistency)
        except KeyNotFoundError:
            base = b""
        new_value = base + suffix
        record = pack_record(0, self._clock.tick(), self._origin, new_value)
        self._write_record(key, record, consistency)
        return new_value

    def increment(
        self, key: bytes, delta: int = 1, consistency: Optional[str] = None
    ) -> int:
        key = bytes(key)
        if self.replicas == 1:
            return self._checked_owner(key).store.increment(key, delta)
        try:
            base = self.get(key, consistency=consistency)
            new_int = int(base.decode("ascii")) + delta
        except KeyNotFoundError:
            new_int = delta
        except (UnicodeDecodeError, ValueError):
            raise StoreError("increment target is not an ASCII integer") from None
        record = pack_record(
            0, self._clock.tick(), self._origin, str(new_int).encode()
        )
        self._write_record(key, record, consistency)
        return new_int

    def contains(self, key: bytes, consistency: Optional[str] = None) -> bool:
        if self.replicas == 1:
            return self._checked_owner(bytes(key)).store.contains(bytes(key))
        try:
            self.get(key, consistency=consistency)
            return True
        except KeyNotFoundError:
            return False

    def __len__(self) -> int:
        if self.replicas == 1:
            return sum(len(node.store) for node in self.nodes.values())
        winners: Dict[bytes, bytes] = {}
        for node in self.nodes.values():
            if not node.alive:
                continue
            for key, record in node.store.iter_items():
                current = winners.get(key)
                if current is None or record_version(record) > record_version(
                    current
                ):
                    winners[key] = record
        return sum(1 for record in winners.values() if not is_tombstone(record))

    # -- introspection ------------------------------------------------------
    def shard_sizes(self) -> Dict[str, int]:
        """Keys per shard (balance check)."""
        return {node_id: len(node.store) for node_id, node in self.nodes.items()}

    def total_elapsed_us(self) -> float:
        """Busiest shard's simulated time (cluster wall-clock)."""
        return max(node.machine.elapsed_us() for node in self.nodes.values())
