"""Sharded multi-node ShieldStore cluster.

The paper evaluates a single 4-core host ("due to the current lack of
SGX support in server-class multi-socket systems", §6.1) — but its
deployment story is cloud key-value storage, which shards.  This module
scales the design *out* the same way §5.3 scales it *up*: hash-disjoint
ownership, no cross-node coordination on the data path.

* each shard is an independent ShieldStore enclave on its own simulated
  machine, with its own master secret (one compromised platform never
  weakens another);
* clients route by consistent hashing over a virtual-node ring, after
  attesting every shard's enclave;
* shards can be added or drained at runtime; only the keys whose ring
  ownership changes migrate, streamed through the client's attested
  sessions (re-encrypted per-shard — shards share no keys).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

from repro.core.config import StoreConfig
from repro.core.store import ShieldStore
from repro.errors import AttestationError, StoreError
from repro.sim.attestation import AttestationService
from repro.sim.enclave import Machine

_VNODES = 64  # virtual nodes per shard on the hash ring


def _ring_position(token: bytes) -> int:
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


class ShardNode:
    """One cluster member: a machine, an enclave, a store."""

    def __init__(self, node_id: str, config: StoreConfig, seed: int):
        self.node_id = node_id
        self.machine = Machine(seed=seed)
        self.store = ShieldStore(config, machine=self.machine)
        self.attested = False

    @property
    def measurement(self) -> bytes:
        return self.store.enclave.measurement


class ShieldCluster:
    """Client-side view of a sharded ShieldStore deployment."""

    def __init__(
        self,
        config: StoreConfig,
        attestation: AttestationService,
        num_nodes: int = 3,
        seed: int = 2019,
    ):
        if num_nodes < 1:
            raise StoreError("a cluster needs at least one node")
        self.config = config
        self.attestation = attestation
        self._seed = seed
        self.nodes: Dict[str, ShardNode] = {}
        self._ring: List[Tuple[int, str]] = []
        self.keys_migrated = 0
        for i in range(num_nodes):
            self.add_node(f"node-{i}")

    # -- ring maintenance -------------------------------------------------
    def _ring_insert(self, node_id: str) -> None:
        for vnode in range(_VNODES):
            position = _ring_position(f"{node_id}/{vnode}".encode())
            bisect.insort(self._ring, (position, node_id))

    def _ring_remove(self, node_id: str) -> None:
        self._ring = [(p, n) for p, n in self._ring if n != node_id]

    def owner_of(self, key: bytes) -> ShardNode:
        """Consistent-hash lookup: first ring token at/after the key."""
        if not self._ring:
            raise StoreError("cluster has no nodes")
        position = _ring_position(bytes(key))
        idx = bisect.bisect_right(self._ring, (position, "\xff" * 8))
        if idx == len(self._ring):
            idx = 0
        return self.nodes[self._ring[idx][1]]

    # -- membership -----------------------------------------------------------
    def _attest(self, node: ShardNode) -> None:
        """Client-side attestation of a shard before trusting it."""
        ctx = node.store.enclave.context()
        quote = self.attestation.quote(ctx, node.store.enclave, b"cluster-join")
        self.attestation.verify(quote, node.measurement)
        node.attested = True

    def add_node(self, node_id: str) -> ShardNode:
        """Attest and join a new shard, migrating its ring ranges in."""
        if node_id in self.nodes:
            raise StoreError(f"duplicate node id {node_id!r}")
        node = ShardNode(node_id, self.config, self._seed + len(self.nodes))
        self._attest(node)
        old_ring_nonempty = bool(self._ring)
        self.nodes[node_id] = node
        self._ring_insert(node_id)
        if old_ring_nonempty:
            self._rebalance_into(node)
        return node

    def remove_node(self, node_id: str) -> int:
        """Drain a shard: move its keys to their new owners, then drop it."""
        node = self.nodes.get(node_id)
        if node is None:
            raise StoreError(f"unknown node {node_id!r}")
        if len(self.nodes) == 1:
            raise StoreError("cannot drain the last node")
        items = list(node.store.iter_items())
        self._ring_remove(node_id)
        del self.nodes[node_id]
        moved = 0
        for key, value in items:
            self.owner_of(key).store.set(key, value)
            moved += 1
        self.keys_migrated += moved
        return moved

    def _rebalance_into(self, new_node: ShardNode) -> int:
        """Move keys whose ring ownership changed to the new shard."""
        moved = 0
        for node in list(self.nodes.values()):
            if node is new_node:
                continue
            relocating = [
                (key, value)
                for key, value in node.store.iter_items()
                if self.owner_of(key) is new_node
            ]
            for key, value in relocating:
                new_node.store.set(key, value)
                node.store.delete(key)
                moved += 1
        self.keys_migrated += moved
        return moved

    # -- data path ---------------------------------------------------------
    def _checked_owner(self, key: bytes) -> ShardNode:
        node = self.owner_of(bytes(key))
        if not node.attested:
            raise AttestationError(f"node {node.node_id} was never attested")
        return node

    def get(self, key: bytes) -> bytes:
        return self._checked_owner(key).store.get(bytes(key))

    def set(self, key: bytes, value: bytes) -> None:
        self._checked_owner(key).store.set(bytes(key), bytes(value))

    def delete(self, key: bytes) -> None:
        self._checked_owner(key).store.delete(bytes(key))

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self._checked_owner(key).store.append(bytes(key), bytes(suffix))

    def increment(self, key: bytes, delta: int = 1) -> int:
        return self._checked_owner(key).store.increment(bytes(key), delta)

    def contains(self, key: bytes) -> bool:
        return self._checked_owner(key).store.contains(bytes(key))

    def __len__(self) -> int:
        return sum(len(node.store) for node in self.nodes.values())

    # -- introspection ------------------------------------------------------
    def shard_sizes(self) -> Dict[str, int]:
        """Keys per shard (balance check)."""
        return {node_id: len(node.store) for node_id, node in self.nodes.items()}

    def total_elapsed_us(self) -> float:
        """Busiest shard's simulated time (cluster wall-clock)."""
        return max(node.machine.elapsed_us() for node in self.nodes.values())
