"""SPEICHER-style shielded LSM store (the paper's §8 counterpart).

SPEICHER (Bailleu et al., FAST'19) — published alongside ShieldStore —
hardens an LSM tree with SGX for *persistent* key-value storage.  The
paper contrasts the two designs: ShieldStore optimizes a fast in-memory
table with coarse snapshots; SPEICHER makes the persistent path itself
trustworthy.  This module implements the LSM side on the shared
simulator so the trade-off is measurable:

* **MemTable** — plaintext skiplist in enclave memory (EPC-budgeted);
* **WAL** — every mutation appends an encrypted, MAC-chained record to
  untrusted storage before being acknowledged (crash durability with
  bounded-by-zero loss, unlike 60-second snapshots);
* **SSTables** — immutable sorted runs in untrusted storage: entries
  individually encrypted, with a per-table root MAC retained in enclave
  memory (freshness: a swapped or stale table fails its root check);
* **size-tiered compaction** — when a level accumulates ``fanout``
  tables they are merged (decrypt, merge, re-encrypt) into the next
  level;
* **get path** — memtable, then newest-to-oldest tables, each gated by
  a bloom filter to avoid decrypting runs that cannot contain the key.
"""

from __future__ import annotations

import struct
from hmac import compare_digest
from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.keys import KeyRing
from repro.crypto.suite import make_suite
from repro.errors import IntegrityError, KeyNotFoundError
from repro.ext.skiplist import SkipList
from repro.sim.enclave import Enclave, ExecContext, Machine
from repro.util import fnv1a

_MEASUREMENT = bytes([0x15]) * 32
_TOMBSTONE = object()
_RECORD_HEADER = struct.Struct("<BII16s")  # kind, klen, vlen, iv
# WAL IVs are (record number, domain) and table IVs are (table id, item
# index), both under the same entry keys.  The domain keeps its top bit
# set so no reachable item index (< 2**63) can collide with it.
_WAL_IV_DOMAIN = 0x3A1 | (1 << 63)


class BloomFilter:
    """Plain k-hash bloom filter over a bytearray of bits."""

    def __init__(self, expected: int, bits_per_key: int = 10):
        self.size_bits = max(64, expected * bits_per_key)
        self._bits = bytearray((self.size_bits + 7) // 8)
        self.hashes = 4

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = fnv1a(key)
        h2 = fnv1a(key + b"\x01") | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.size_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )


class SSTable:
    """One immutable sorted run in untrusted storage.

    ``records`` maps plaintext key -> encrypted record bytes (the key
    *order* is exposed for merging/range scans; key and value bytes are
    not).  ``root_mac`` authenticates the whole run and lives in the
    enclave's manifest.
    """

    __slots__ = ("table_id", "level", "records", "bloom", "root_mac", "bytes_size")

    def __init__(self, table_id, level, records, bloom, root_mac, bytes_size):
        self.table_id = table_id
        self.level = level
        self.records = records
        self.bloom = bloom
        self.root_mac = root_mac
        self.bytes_size = bytes_size


class ShieldLSM:
    """Shielded persistent LSM key-value store."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        memtable_bytes: int = 64 * 1024,
        fanout: int = 4,
        suite_name: str = "fast-hashlib",
        master_secret: Optional[bytes] = None,
        seed: int = 2019,
    ):
        self.machine = machine if machine is not None else Machine(seed=seed)
        self.enclave = Enclave(self.machine, _MEASUREMENT, name="shield-lsm")
        self._ctx = self.enclave.context()
        if master_secret is None:
            master_secret = bytes(self.machine.rng.getrandbits(8) for _ in range(32))
        self.keyring = KeyRing(master_secret)
        self.suite = make_suite(suite_name, self.keyring.enc_key, self.keyring.mac_key)
        self.memtable_bytes = memtable_bytes
        self.fanout = fanout
        self._memtable = SkipList(seed=seed)
        self._memtable_used = 0
        self._levels: List[List[SSTable]] = [[]]
        self._next_table_id = 0
        self._wal_last_mac = bytes(16)
        self.wal_records = 0
        self.flushes = 0
        self.compactions = 0
        self.count = 0

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------
    def _wal_append(self, ctx: ExecContext, kind: int, key: bytes, value: bytes) -> None:
        body = struct.pack("<BI", kind, len(key)) + key + value
        iv = struct.pack("<QQ", self.wal_records, _WAL_IV_DOMAIN)
        ctx.charge_aes(len(body))
        ciphertext = self.suite.encrypt(iv, body)
        ctx.charge_cmac(len(ciphertext) + 16)
        self._wal_last_mac = self.suite.mac(self._wal_last_mac + ciphertext)
        # Sequential append to untrusted storage.
        ctx.charge_us(
            (len(ciphertext) + 20) / ctx.machine.cost.storage_write_bw_bytes_per_us
        )
        self.wal_records += 1

    # ------------------------------------------------------------------
    # record codec
    # ------------------------------------------------------------------
    def _encode_record(
        self, ctx: ExecContext, key: bytes, value, iv: bytes
    ) -> bytes:
        kind = 1 if value is not _TOMBSTONE else 0
        payload = key + (value if kind else b"")
        ctx.charge_aes(len(payload))
        ciphertext = self.suite.encrypt(iv, payload)
        header = _RECORD_HEADER.pack(
            kind, len(key), len(payload) - len(key), iv
        )
        ctx.charge_cmac(len(header) + len(ciphertext))
        mac = self.suite.mac(header + ciphertext)
        return header + ciphertext + mac

    def _decode_record(self, ctx: ExecContext, record: bytes):
        kind, klen, vlen, iv = _RECORD_HEADER.unpack(record[: _RECORD_HEADER.size])
        ciphertext = record[_RECORD_HEADER.size : -16]
        mac = record[-16:]
        header = record[: _RECORD_HEADER.size]
        ctx.charge_cmac(len(header) + len(ciphertext))
        if not compare_digest(self.suite.mac(header + ciphertext), mac):
            raise IntegrityError("SSTable record failed authentication")
        ctx.charge_aes(len(ciphertext))
        payload = self.suite.decrypt(iv, ciphertext)
        key = payload[:klen]
        if kind == 0:
            return key, _TOMBSTONE
        return key, payload[klen : klen + vlen]

    # ------------------------------------------------------------------
    # flush & compaction
    # ------------------------------------------------------------------
    def _build_table(
        self, ctx: ExecContext, level: int, items: List[Tuple[bytes, object]]
    ) -> SSTable:
        records: Dict[bytes, bytes] = {}
        bloom = BloomFilter(len(items) or 1)
        total = 0
        for i, (key, value) in enumerate(items):
            iv = struct.pack("<QQ", self._next_table_id, i)
            record = self._encode_record(ctx, key, value, iv)
            records[key] = record
            bloom.add(key)
            total += len(record)
        ctx.charge_cmac(16 * max(1, len(items)))
        root_mac = self.suite.mac(b"".join(records[k][-16:] for k in sorted(records)))
        ctx.charge_us(total / ctx.machine.cost.storage_write_bw_bytes_per_us)
        table = SSTable(self._next_table_id, level, records, bloom, root_mac, total)
        self._next_table_id += 1
        return table

    def _verify_table(self, ctx: ExecContext, table: SSTable) -> None:
        ctx.charge_cmac(16 * max(1, len(table.records)))
        computed = self.suite.mac(
            b"".join(table.records[k][-16:] for k in sorted(table.records))
        )
        if not compare_digest(computed, table.root_mac):
            raise IntegrityError(
                f"SSTable {table.table_id} root MAC mismatch: stale or "
                "substituted run"
            )

    def flush(self, ctx: Optional[ExecContext] = None) -> None:
        """Write the memtable out as a level-0 SSTable."""
        ctx = ctx if ctx is not None else self._ctx
        items = list(self._memtable.items())
        if not items:
            return
        table = self._build_table(ctx, 0, items)
        self._levels[0].append(table)
        self._memtable = SkipList(seed=len(items))
        self._memtable_used = 0
        self.flushes += 1
        self._maybe_compact(ctx, 0)

    def _maybe_compact(self, ctx: ExecContext, level: int) -> None:
        while len(self._levels[level]) >= self.fanout:
            merged: Dict[bytes, object] = {}
            # Oldest table first so newer runs win on conflict.
            for table in self._levels[level]:
                self._verify_table(ctx, table)
                for key, record in table.records.items():
                    merged[key] = self._decode_record(ctx, record)[1]
            self._levels[level] = []
            if level + 1 >= len(self._levels):
                self._levels.append([])
            drop_tombstones = level + 1 == len(self._levels) - 1 and not self._levels[
                level + 1
            ]
            items = [
                (key, value)
                for key, value in sorted(merged.items())
                if not (drop_tombstones and value is _TOMBSTONE)
            ]
            self._levels[level + 1].append(
                self._build_table(ctx, level + 1, items)
            )
            self.compactions += 1
            level += 1

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _memtable_put(self, ctx: ExecContext, key: bytes, value) -> None:
        grow = len(key) + (len(value) if value is not _TOMBSTONE else 1) + 32
        # The memtable is EPC-resident; charge enclave-memory writes.
        ctx.charge(ctx.machine.cost.mem_cycles(grow, write=True, in_epc=True))
        self._memtable.insert(key, value)
        self._memtable_used += grow
        if self._memtable_used >= self.memtable_bytes:
            self.flush(ctx)

    def set(self, key: bytes, value: bytes, ctx: Optional[ExecContext] = None) -> None:
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(ctx.machine.cost.op_dispatch_cycles)
        key, value = bytes(key), bytes(value)
        self._wal_append(ctx, 1, key, value)
        if not self.contains_fast(key):
            self.count += 1
        self._memtable_put(ctx, key, value)

    def delete(self, key: bytes, ctx: Optional[ExecContext] = None) -> None:
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(ctx.machine.cost.op_dispatch_cycles)
        key = bytes(key)
        if not self.contains_fast(key):
            raise KeyNotFoundError(key)
        self._wal_append(ctx, 0, key, b"")
        self._memtable_put(ctx, key, _TOMBSTONE)
        self.count -= 1

    def get(self, key: bytes, ctx: Optional[ExecContext] = None) -> bytes:
        ctx = ctx if ctx is not None else self._ctx
        ctx.charge(ctx.machine.cost.op_dispatch_cycles)
        key = bytes(key)
        hit = self._memtable.search(key)
        if hit is not None:
            if hit is _TOMBSTONE:
                raise KeyNotFoundError(key)
            ctx.charge(
                ctx.machine.cost.mem_cycles(len(hit), write=False, in_epc=True)
            )
            return hit
        # Newest tables first: level order, then recency within a level.
        for level_tables in self._levels:
            for table in reversed(level_tables):
                if key not in table.bloom:
                    continue
                record = table.records.get(key)
                if record is None:
                    continue  # bloom false positive
                ctx.charge(
                    ctx.machine.cost.mem_cycles(
                        len(record), write=False, in_epc=False
                    )
                )
                found_key, value = self._decode_record(ctx, record)
                if found_key != key:
                    raise IntegrityError("SSTable record key substitution")
                if value is _TOMBSTONE:
                    raise KeyNotFoundError(key)
                return value
        raise KeyNotFoundError(key)

    def contains_fast(self, key: bytes) -> bool:
        """Uncharged membership check for bookkeeping."""
        hit = self._memtable.search(key)
        if hit is not None:
            return hit is not _TOMBSTONE
        for level_tables in self._levels:
            for table in reversed(level_tables):
                record = table.records.get(key)
                if record is not None:
                    kind = record[0]
                    return kind == 1
        return False

    def range(
        self, start: bytes, end: bytes, ctx: Optional[ExecContext] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Merged, verified range scan across memtable and all runs."""
        ctx = ctx if ctx is not None else self._ctx
        start, end = bytes(start), bytes(end)
        merged: Dict[bytes, object] = {}
        for level_tables in reversed(self._levels):
            for table in level_tables:  # oldest first; newer overwrite
                self._verify_table(ctx, table)
                for key in table.records:
                    if start <= key < end:
                        merged[key] = self._decode_record(ctx, table.records[key])[1]
        for key, value in self._memtable.range(start, end):
            merged[key] = value
        for key in sorted(merged):
            value = merged[key]
            if value is not _TOMBSTONE:
                yield key, value

    def __len__(self) -> int:
        return self.count

    @property
    def num_tables(self) -> int:
        return sum(len(tables) for tables in self._levels)
