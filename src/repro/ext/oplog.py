"""Fine-grained logged persistence (§7 "Weak persistency support").

The paper's snapshots lose every write since the last 60-second
checkpoint.  §7 sketches the alternative — "store a log entry for each
operation" — and explains why it was not built: SGX monotonic counters
are far too slow (tens of milliseconds each) to bump per operation, and
points at ROTE/LCM-style schemes as the mitigation.

This module implements that design with the counter-amortization idea:

* every mutation appends a sealed-format log record whose MAC chains
  over the previous record's MAC, so the log's suffix cannot be
  truncated, reordered, or substituted undetected;
* the monotonic counter is bumped once per ``counter_batch`` records
  (ROTE-style batching) — a crash can only roll back the *tail batch*,
  a bounded window the deployer chooses, instead of a full snapshot
  interval;
* recovery replays the log on top of the latest snapshot, verifying the
  MAC chain and the counter watermark.
"""

from __future__ import annotations

import os
import struct
from hmac import compare_digest
from typing import List, Optional

from repro.core.store import ShieldStore
from repro.errors import IntegrityError, RollbackError, SnapshotError
from repro.sim.counters import MonotonicCounterService
from repro.sim.enclave import ExecContext

_MAGIC = b"SSLOG1\0\0"
_OP_SET = 1
_OP_DELETE = 2
_MAC_SIZE = 16


class OperationLog:
    """Authenticated, counter-batched operation log for one store."""

    def __init__(
        self,
        store: ShieldStore,
        counters: MonotonicCounterService,
        counter_name: str = "shieldstore-log",
        counter_batch: int = 64,
    ):
        if counter_batch <= 0:
            raise ValueError("counter_batch must be positive")
        self.store = store
        self.counters = counters
        self.counter_name = counter_name
        self.counter_batch = counter_batch
        self._records: List[bytes] = []
        self._last_mac = bytes(_MAC_SIZE)
        self._since_counter = 0
        self.counter_bumps = 0
        # Per-log-incarnation epoch mixed into every record IV.  Records
        # are encrypted under the *store's* entry key, which is the same
        # for every incarnation of one master secret — a fixed
        # (record-index, constant) IV would hand two log incarnations
        # the same keystream for their first records.  The epoch rides
        # in each record so replay can reconstruct the IV.
        self._epoch = int.from_bytes(os.urandom(8), "big")
        counters.create(counter_name)

    # -- appending ---------------------------------------------------------
    def _append(self, ctx: ExecContext, op: int, key: bytes, value: bytes) -> None:
        body = struct.pack("<BII", op, len(key), len(value)) + key + value
        iv = struct.pack("<QQ", len(self._records), self._epoch)
        ctx.charge_aes(len(body))
        ciphertext = self.store.suite.encrypt(iv, body)
        epoch_bytes = struct.pack("<Q", self._epoch)
        ctx.charge_cmac(len(ciphertext) + _MAC_SIZE)
        mac = self.store.suite.mac(self._last_mac + epoch_bytes + ciphertext)
        record = (
            struct.pack("<I", len(ciphertext)) + epoch_bytes + ciphertext + mac
        )
        self._records.append(record)
        self._last_mac = mac
        # Storage write of the record (sequential append).
        ctx.charge_us(
            len(record) / ctx.machine.cost.storage_write_bw_bytes_per_us
        )
        self._since_counter += 1
        if self._since_counter >= self.counter_batch:
            self.counters.increment(ctx, self.counter_name)
            self.counter_bumps += 1
            self._since_counter = 0

    def log_set(self, ctx: ExecContext, key: bytes, value: bytes) -> None:
        """Record a set/append/increment result."""
        self._append(ctx, _OP_SET, bytes(key), bytes(value))

    def log_delete(self, ctx: ExecContext, key: bytes) -> None:
        """Record a delete."""
        self._append(ctx, _OP_DELETE, bytes(key), b"")

    # -- serialization -------------------------------------------------------
    def dump(self) -> bytes:
        """The full log blob as persisted."""
        return _MAGIC + b"".join(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- recovery -----------------------------------------------------------
    def replay(
        self,
        ctx: ExecContext,
        blob: bytes,
        target: ShieldStore,
        expected_min_records: Optional[int] = None,
    ) -> int:
        """Verify and replay a log blob into ``target``.

        ``expected_min_records`` enforces the counter watermark: the
        platform counter says at least ``counter * counter_batch``
        records were ever logged; a shorter log means a rollback of more
        than the tolerated tail batch.
        """
        if blob[: len(_MAGIC)] != _MAGIC:
            raise SnapshotError("operation log has wrong magic")
        offset = len(_MAGIC)
        last_mac = bytes(_MAC_SIZE)
        replayed = 0
        while offset < len(blob):
            if offset + 4 > len(blob):
                raise IntegrityError("truncated log record header")
            (clen,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            if offset + 8 + clen + _MAC_SIZE > len(blob):
                raise IntegrityError("truncated log record body")
            epoch_bytes = blob[offset : offset + 8]
            offset += 8
            ciphertext = blob[offset : offset + clen]
            offset += clen
            mac = blob[offset : offset + _MAC_SIZE]
            offset += _MAC_SIZE
            ctx.charge_cmac(len(ciphertext) + _MAC_SIZE)
            if not compare_digest(
                self.store.suite.mac(last_mac + epoch_bytes + ciphertext), mac
            ):
                raise IntegrityError(
                    f"log record {replayed} failed chain verification"
                )
            (epoch,) = struct.unpack("<Q", epoch_bytes)
            iv = struct.pack("<QQ", replayed, epoch)
            ctx.charge_aes(len(ciphertext))
            body = self.store.suite.decrypt(iv, ciphertext)
            op, klen, vlen = struct.unpack_from("<BII", body, 0)
            key = body[9 : 9 + klen]
            value = body[9 + klen : 9 + klen + vlen]
            if op == _OP_SET:
                target.set(key, value)
            elif op == _OP_DELETE:
                if target.contains(key):
                    target.delete(key)
            else:
                raise IntegrityError(f"unknown log opcode {op}")
            last_mac = mac
            replayed += 1
        if expected_min_records is None:
            watermark = self.counters.read(self.counter_name)
            expected_min_records = watermark * self.counter_batch
        if replayed < expected_min_records:
            raise RollbackError(
                f"log contains {replayed} records but the counter watermark "
                f"requires at least {expected_min_records}: tail rollback "
                "beyond the tolerated batch"
            )
        return replayed


class RecoveringStore:
    """A ShieldStore wrapper that logs every mutation for crash recovery."""

    def __init__(self, store: ShieldStore, log: OperationLog):
        self.store = store
        self.log = log
        self._ctx = store.enclave.context(store.thread_id)

    def set(self, key: bytes, value: bytes) -> None:
        self.store.set(key, value)
        self.log.log_set(self._ctx, key, value)

    def get(self, key: bytes) -> bytes:
        return self.store.get(key)

    def delete(self, key: bytes) -> None:
        self.store.delete(key)
        self.log.log_delete(self._ctx, key)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        new = self.store.append(key, suffix)
        self.log.log_set(self._ctx, key, new)
        return new

    def increment(self, key: bytes, delta: int = 1) -> int:
        new = self.store.increment(key, delta)
        self.log.log_set(self._ctx, key, str(new).encode())
        return new

    def contains(self, key: bytes) -> bool:
        return self.store.contains(key)

    def __len__(self) -> int:
        return len(self.store)
