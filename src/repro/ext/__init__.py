"""Extensions: the paper's §7 future work and §3.2/§8 design-space
alternatives, implemented on the same substrate.

* :class:`~repro.ext.rangestore.RangeShieldStore` — ordered shielded
  store with verified range queries over a skiplist index (§7);
* :class:`~repro.ext.oplog.OperationLog` — fine-grained logged
  persistence with batched monotonic-counter protection (§7);
* :class:`~repro.ext.dynamic.DynamicShieldStore` — runtime thread-pool
  resizing with live repartitioning (§5.3 future work);
* :mod:`repro.ext.clientside` — the client-side-encryption alternative
  §3.2 argues against, made concrete;
* :class:`~repro.ext.rote.RoteCounterService` — ROTE-style distributed
  rollback protection replacing slow SGX counters (refs [8, 31]);
* :class:`~repro.ext.lsm.ShieldLSM` — a SPEICHER-style shielded LSM
  store, the persistent design §8 contrasts with ShieldStore;
* :mod:`repro.ext.replication` — replicated multi-node groups with
  Lamport/LWW conflict resolution, hinted handoff, Merkle anti-entropy
  and ONE/QUORUM consistency, over :mod:`repro.ext.ring` placement.
"""

from repro.ext.clientside import ClientKeyDirectory, ClientSideClient, PassiveStore
from repro.ext.cluster import ShardNode, ShieldCluster
from repro.ext.dynamic import DynamicShieldStore
from repro.ext.expiry import ExpiringStore
from repro.ext.lsm import BloomFilter, ShieldLSM
from repro.ext.oplog import OperationLog, RecoveringStore
from repro.ext.rangestore import RangeShieldStore
from repro.ext.replication import (
    ReplicaClient,
    ReplicatedStore,
    ReplicationGroup,
)
from repro.ext.ring import HashRing
from repro.ext.rote import CounterReplica, RoteCounterService
from repro.ext.skiplist import SkipList

__all__ = [
    "BloomFilter",
    "ClientKeyDirectory",
    "ClientSideClient",
    "CounterReplica",
    "HashRing",
    "ShardNode",
    "ShieldCluster",
    "DynamicShieldStore",
    "ExpiringStore",
    "OperationLog",
    "PassiveStore",
    "RangeShieldStore",
    "RecoveringStore",
    "ReplicaClient",
    "ReplicatedStore",
    "ReplicationGroup",
    "RoteCounterService",
    "ShieldLSM",
    "SkipList",
]
