"""Deterministic skiplist — ordered-index substrate for range queries.

Section 7 of the paper names a skiplist as the natural index structure
for the range-query support ShieldStore lacks.  This is a classic
Pugh-style skiplist with a seeded RNG so structures are reproducible;
:mod:`repro.ext.rangestore` builds the secure ordered store on top.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

_MAX_LEVEL = 16
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[bytes], value, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Ordered map from bytes keys to arbitrary values."""

    def __init__(self, seed: int = 2019):
        self._rng = random.Random(seed)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> List[_Node]:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
            update[level] = node
        return update

    def insert(self, key: bytes, value) -> bool:
        """Insert or update; returns True when the key was new."""
        key = bytes(key)
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        new = _Node(key, value, level)
        for i in range(level):
            new.forward[i] = update[i].forward[i]
            update[i].forward[i] = new
        self._size += 1
        return True

    def search(self, key: bytes):
        """Return the value for ``key`` or None."""
        key = bytes(key)
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return None

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when it existed."""
        key = bytes(key)
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for i in range(len(node.forward)):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def range(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, object]]:
        """Yield (key, value) for start <= key < end, in order."""
        start, end = bytes(start), bytes(end)
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < start:
                node = node.forward[level]
        node = node.forward[0]
        while node is not None and node.key < end:
            yield node.key, node.value
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[bytes, object]]:
        """All items in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.search(key) is not None
