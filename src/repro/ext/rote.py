"""ROTE-style distributed rollback protection (paper §4.4/§7, refs [8,31]).

SGX's hardware monotonic counters are slow (~60 ms per increment) and
wear out NVRAM; the paper points at ROTE (Matetic et al., Security'17)
and LCM as the fix.  ROTE replaces the local counter with a *counter
quorum*: each increment is acknowledged by a majority of assisting
enclaves on other machines, so freshness survives both crashes and a
locally rolled-back platform, at network latency instead of NVRAM
latency.

This module implements the protocol over simulated machines:

* :class:`CounterReplica` — an assisting enclave holding the highest
  acknowledged value per counter, signed state, sealed to its platform;
* :class:`RoteCounterService` — drop-in for
  :class:`~repro.sim.counters.MonotonicCounterService`, so
  :class:`~repro.core.persistence.Snapshotter` and
  :class:`~repro.ext.oplog.OperationLog` can run on either backend;
* quorum reads that detect a minority of rolled-back replicas.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, List, Optional

from repro.errors import RollbackError
from repro.sim.enclave import Enclave, ExecContext, Machine

_REPLICA_MEASUREMENT = bytes([0xCE]) * 32
# One replica round trip: network RTT + in-enclave verify/sign work.
REPLICA_ACK_US = 35.0


class CounterReplica:
    """An assisting enclave on a (simulated) remote machine."""

    def __init__(self, replica_id: int, group_secret: bytes, seed: int = 0):
        self.replica_id = replica_id
        self.machine = Machine(seed=seed + replica_id)
        self.enclave = Enclave(
            self.machine, _REPLICA_MEASUREMENT, name=f"rote-replica-{replica_id}"
        )
        self._group_secret = group_secret
        self._values: Dict[str, int] = {}

    def _sign(self, name: str, value: int) -> bytes:
        return hmac.new(
            self._group_secret,
            f"{self.replica_id}|{name}|{value}".encode(),
            hashlib.sha256,
        ).digest()

    def ack_increment(self, name: str, value: int) -> Optional[bytes]:
        """Accept an increment if it is fresh; returns a signed ack."""
        if value <= self._values.get(name, 0):
            return None  # stale proposal: refuse to regress or repeat
        self._values[name] = value
        return self._sign(name, value)

    def read(self, name: str) -> int:
        return self._values.get(name, 0)

    def rollback(self, name: str, to_value: int) -> None:
        """Adversarial control of this replica's platform state."""
        self._values[name] = to_value

    def verify_ack(self, name: str, value: int, ack: bytes) -> bool:
        return hmac.compare_digest(self._sign(name, value), ack)


class RoteCounterService:
    """Quorum-backed monotonic counters, API-compatible with the SGX one."""

    def __init__(
        self,
        num_replicas: int = 4,
        group_secret: bytes = b"rote-group-secret-0000",
        seed: int = 2019,
    ):
        if num_replicas < 3:
            raise ValueError("ROTE needs >= 3 replicas for a meaningful quorum")
        self.replicas: List[CounterReplica] = [
            CounterReplica(i, group_secret, seed) for i in range(num_replicas)
        ]
        self.quorum = num_replicas // 2 + 1
        self._local: Dict[str, int] = {}

    # -- MonotonicCounterService API ----------------------------------------
    def create(self, name: str) -> int:
        self._local.setdefault(name, 0)
        return self._local[name]

    def read(self, name: str) -> int:
        return self._local.get(name, 0)

    def increment(self, ctx: Optional[ExecContext], name: str) -> int:
        """Propose value+1 and gather a quorum of signed acks.

        Replica round trips overlap (they are independent machines), so
        the caller is charged one RTT plus a small per-ack verify cost —
        orders of magnitude cheaper than the ~60 ms NVRAM counter.
        """
        value = self._local.get(name, 0) + 1
        acks = 0
        for replica in self.replicas:
            ack = replica.ack_increment(name, value)
            if ack is not None and replica.verify_ack(name, value, ack):
                acks += 1
        if acks < self.quorum:
            raise RollbackError(
                f"counter {name!r}: only {acks}/{len(self.replicas)} replicas "
                f"acknowledged value {value} (quorum {self.quorum})"
            )
        if ctx is not None:
            ctx.charge_us(REPLICA_ACK_US)  # parallel round trips
            ctx.charge_cmac(64 * acks)  # verify each signed ack
        self._local[name] = value
        return value

    def check_not_rolled_back(self, name: str, claimed: int) -> None:
        """Quorum read: majority of replica values beats local state."""
        values = sorted(
            (replica.read(name) for replica in self.replicas), reverse=True
        )
        quorum_value = values[self.quorum - 1]
        authoritative = max(quorum_value, self._local.get(name, 0))
        if claimed < authoritative:
            raise RollbackError(
                f"claimed counter {claimed} for {name!r} is behind the "
                f"quorum value {authoritative}: rollback detected"
            )

    # -- fault injection for tests --------------------------------------------
    def crash_local_state(self) -> None:
        """Simulate losing the local cache (power failure)."""
        self._local.clear()

    def recover_from_quorum(self, name: str) -> int:
        """Rebuild local state from a quorum read after a crash."""
        values = sorted(
            (replica.read(name) for replica in self.replicas), reverse=True
        )
        self._local[name] = values[self.quorum - 1]
        return self._local[name]
