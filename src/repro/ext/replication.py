"""Replicated ShieldStore group: Lamport/LWW replication + anti-entropy.

The sharded cluster (:mod:`repro.ext.cluster`) scales *out* but keeps a
single copy of every key — losing one node loses its keyspace.  This
module makes "survives node loss" true: N :class:`TCPShieldServer`
nodes run as a **replication group** in which every node holds a full
copy and converges with its peers.

Design
------
* **Versioned entries.**  Every stored value is a sealed *versioned
  record* ``flags(1) | clock(8) | origin(8) | payload`` — the Lamport
  clock and the writer's origin id live inside the encrypted, MACed
  entry, so the version is protected by exactly the machinery that
  protects the value (§4.2/§4.3: the host can neither read nor forge
  it).  Deletes write a tombstone record instead of removing the entry,
  so a delete can win or lose against a concurrent write like any other
  mutation.
* **Last-write-wins.**  Conflicts resolve by the total order
  ``(clock, origin)``; an incoming record is applied iff it is strictly
  newer than the local one, which makes replication idempotent and
  commutative — the properties the retry machinery and anti-entropy
  lean on.
* **Write-through fan-out with hinted handoff.**  Local mutators bump
  the node clock, apply locally, and enqueue the record for immediate
  fan-out over attested peer links (``OP_REPLICATE`` frames inside the
  existing :class:`~repro.net.message.SecureChannel` sessions).  A dead
  peer's records are queued as *hints* and delivered when the peer
  answers again.
* **Merkle anti-entropy.**  The per-bucket-set MAC hashes (§4.3) are a
  ready-made Merkle level, but the *raw* set hashes are not comparable
  across replicas: each store allocates its own entry IVs, so equal
  plaintext yields different ciphertexts and different entry MACs.
  Replicas therefore exchange **logical set digests** — a keyed hash
  (its own registered key domain) over the sorted, MAC-*verified*
  ``(key, record)`` contents of each bucket set.  Group members share
  the group master secret, so the keyed bucket geometry (which keys
  land in which set) agrees; two replicas compare ``O(num_sets)``
  digests, descend only into divergent sets, and LWW-merge their
  contents (a push-pull exchange: one round converges one set on both
  sides).
* **Consistency levels.**  :class:`ReplicaClient` offers
  ``consistency={"one", "quorum"}``: QUORUM writes replicate a
  client-versioned record to every node and require a majority of
  acks; QUORUM reads collect versioned replies from a majority, pick
  the LWW winner, and read-repair stale replicas.  W + R > N, so a
  QUORUM read always observes an acked QUORUM write across any single
  node failure.  Per-replica calls reuse the TCP client's
  retry/deadline/backoff machinery unchanged.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import queue
import struct
import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.stats import StoreStats
from repro.crypto.keys import derive_key
from repro.errors import (
    AttestationError,
    KeyNotFoundError,
    ProtocolError,
    StoreError,
)

FLAG_TOMBSTONE = 0x01

# flags(1) | clock(8) | origin(8), little-endian, then the payload.
_RECORD = struct.Struct("<BQQ")
RECORD_OVERHEAD = _RECORD.size

CONSISTENCY_ONE = "one"
CONSISTENCY_QUORUM = "quorum"
CONSISTENCY_LEVELS = (CONSISTENCY_ONE, CONSISTENCY_QUORUM)

# OP_SYNC sub-operations, carried in the request's key field.
SYNC_KIND_DIGESTS = b"digests"
SYNC_KIND_SET = b"set"

DIGEST_SIZE = 16


class PeerUnavailableError(StoreError):
    """A replication peer could not be reached (marked dead, hinted)."""


# -- versioned records --------------------------------------------------------
def pack_record(flags: int, clock: int, origin: int, payload: bytes) -> bytes:
    """Serialize one versioned record (stored as the entry value)."""
    return _RECORD.pack(flags, clock, origin) + payload


def unpack_record(raw: bytes) -> Tuple[int, int, int, bytes]:
    """Parse ``(flags, clock, origin, payload)``; raises on short input."""
    if len(raw) < RECORD_OVERHEAD:
        raise ProtocolError("versioned record too short")
    flags, clock, origin = _RECORD.unpack_from(raw, 0)
    return flags, clock, origin, raw[RECORD_OVERHEAD:]


def record_version(raw: bytes) -> Tuple[int, int]:
    """The record's LWW sort key ``(clock, origin)``."""
    flags, clock, origin, _payload = unpack_record(raw)
    return clock, origin


def is_tombstone(raw: bytes) -> bool:
    return bool(unpack_record(raw)[0] & FLAG_TOMBSTONE)


def node_origin(name: str) -> int:
    """Stable 64-bit origin id for LWW tie-breaking (never builtin hash)."""
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:8], "big")


class LamportClock:
    """Thread-safe per-node Lamport clock."""

    def __init__(self, start: int = 0):
        self._value = start
        self._mutex = threading.Lock()

    def tick(self) -> int:
        """Advance for a local event; returns the new clock."""
        with self._mutex:
            self._value += 1
            return self._value

    def witness(self, remote: int) -> int:
        """Merge a remote clock (receive rule); returns the new clock."""
        with self._mutex:
            if remote > self._value:
                self._value = remote
            return self._value

    def peek(self) -> int:
        with self._mutex:
            return self._value


class HintedHandoff:
    """Bounded per-peer queues of records owed to dead peers."""

    def __init__(self, max_hints_per_peer: int = 4096):
        self.max_hints_per_peer = max_hints_per_peer
        self._queues: Dict[str, deque] = {}
        self._mutex = threading.Lock()
        self.dropped = 0

    def push(self, peer_id: str, key: bytes, record: bytes) -> None:
        with self._mutex:
            q = self._queues.setdefault(peer_id, deque())
            if len(q) >= self.max_hints_per_peer:
                q.popleft()  # oldest hint lost; anti-entropy still repairs
                self.dropped += 1
            q.append((key, record))

    def pending(self, peer_id: str) -> int:
        with self._mutex:
            return len(self._queues.get(peer_id, ()))

    def pop(self, peer_id: str) -> Optional[Tuple[bytes, bytes]]:
        with self._mutex:
            q = self._queues.get(peer_id)
            if not q:
                return None
            return q.popleft()

    def unpop(self, peer_id: str, item: Tuple[bytes, bytes]) -> None:
        """Return a hint whose delivery failed to the queue head."""
        with self._mutex:
            self._queues.setdefault(peer_id, deque()).appendleft(item)

    def __len__(self) -> int:
        with self._mutex:
            return sum(len(q) for q in self._queues.values())


class PeerLink:
    """One attested, sealed client link to a replication peer.

    Wraps a lazily (re)built :class:`~repro.net.tcp.TCPShieldClient`
    carrying ``(local, peer)`` link names, so shieldfault partition
    rules can cut exactly this edge.  A transport failure marks the
    peer dead and tears the client down; the next call probes again.
    """

    def __init__(
        self,
        local_id: str,
        peer_id: str,
        address,
        attestation,
        expected_measurement: bytes,
        connect_timeout_s: float = 2.0,
        request_deadline_s: float = 5.0,
        max_retries: int = 1,
    ):
        self.local_id = local_id
        self.peer_id = peer_id
        self.address = address
        self.attestation = attestation
        self.expected_measurement = expected_measurement
        self.connect_timeout_s = connect_timeout_s
        self.request_deadline_s = request_deadline_s
        self.max_retries = max_retries
        self.alive = True  # optimistic until a call fails
        self._client = None
        self._mutex = threading.Lock()

    def set_address(self, address) -> None:
        """Point the link at a restarted peer (forces a reconnect)."""
        with self._mutex:
            self.address = address
            self._drop_client()

    def _drop_client(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def _ensure_client(self):
        if self._client is None:
            from repro.net.tcp import TCPShieldClient

            self._client = TCPShieldClient(
                self.address,
                self.attestation,
                self.expected_measurement,
                entropy=os.urandom(32),
                connect_timeout_s=self.connect_timeout_s,
                request_deadline_s=self.request_deadline_s,
                max_retries=self.max_retries,
                local_name=self.local_id,
                peer_name=self.peer_id,
            )
        return self._client

    def call(self, op: str, key: bytes, value: bytes = b"") -> bytes:
        """One sealed round trip; failures mark the peer dead."""
        with self._mutex:
            try:
                client = self._ensure_client()
                result = client._call(op, key, value)
            except KeyNotFoundError:
                self.alive = True
                raise
            except (AttestationError, StoreError, ProtocolError, OSError) as exc:
                self.alive = False
                self._drop_client()
                raise PeerUnavailableError(
                    f"peer {self.peer_id} unreachable: {type(exc).__name__}"
                ) from exc
            self.alive = True
            return result

    # -- replication verbs --------------------------------------------------
    def replicate(self, key: bytes, record: bytes) -> Tuple[bool, int]:
        """Push one versioned record; returns (applied, peer_clock)."""
        reply = self.call("replicate", key, record)
        try:
            applied_raw, clock_raw = reply.split(b":", 1)
            return applied_raw == b"1", int(clock_raw)
        except ValueError:
            raise ProtocolError("malformed replicate reply") from None

    def vget(self, key: bytes) -> bytes:
        """Versioned read; raises ``KeyNotFoundError`` for never-seen keys."""
        return self.call("vget", key)

    def sync_digests(self) -> bytes:
        """The peer's concatenated per-set logical digests."""
        return self.call("sync", SYNC_KIND_DIGESTS, b"")

    def sync_set(self, set_id: int, items) -> list:
        """Push-pull one divergent set; returns the peer's merged items."""
        from repro.net.message import decode_multi_items, encode_multi_items

        payload = struct.pack("<I", set_id) + encode_multi_items(items)
        return decode_multi_items(self.call("sync", SYNC_KIND_SET, payload))

    def close(self) -> None:
        with self._mutex:
            self._drop_client()


class ReplicatedStore:
    """A ShieldStore that replicates its mutations to peer nodes.

    Wraps one :class:`~repro.core.store.ShieldStore` built with the
    *group* master secret (so bucket-set geometry agrees across the
    group) and stores every value as a versioned record.  Exposes the
    full store API the request dispatcher expects, plus the replication
    verbs served over the wire: :meth:`apply_remote` (``OP_REPLICATE``)
    and :meth:`serve_sync` (``OP_SYNC``).

    Fan-out runs on a background replicator thread — never while the
    request executor holds the server's store gate — so two nodes
    mutating concurrently cannot deadlock waiting on each other's
    inbound ``OP_REPLICATE``.
    """

    def __init__(
        self,
        store,
        node_id: str,
        max_hints_per_peer: int = 4096,
    ):
        self.inner = store
        self.node_id = node_id
        self.origin = node_origin(node_id)
        self.clock = LamportClock()
        self.peers: Dict[str, PeerLink] = {}
        self.handoff = HintedHandoff(max_hints_per_peer)
        self.repl_stats = StoreStats()
        # One mutex guards the inner store, the clock and the digest
        # cache; network calls NEVER happen under it.
        self._mutex = threading.RLock()
        self._tombstones = 0
        # shieldstore/repl-digest: MAC-only key for the logical per-set
        # anti-entropy digests (registered in analysis.cryptomap).
        self._digest_key = derive_key(
            store.keyring.master, "shieldstore/repl-digest"
        )
        self._num_sets = store.config.num_mac_hashes
        self._digest_cache: Dict[int, bytes] = {}
        # Replicator thread state.
        self._queue: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._sync_interval_s: Optional[float] = None
        self._thread: Optional[threading.Thread] = None

    # -- plumbing the dispatcher expects -------------------------------------
    @property
    def enclave(self):
        return self.inner.enclave

    @property
    def machine(self):
        return self.inner.machine

    @property
    def keyring(self):
        return self.inner.keyring

    @property
    def config(self):
        return self.inner.config

    def stats(self) -> StoreStats:
        """Inner store counters merged with the replication counters."""
        with self._mutex:
            merged = self.inner.stats.merge(self.repl_stats)
        merged.hints_dropped += self.handoff.dropped
        return merged

    def __len__(self) -> int:
        with self._mutex:
            return self.inner.count - self._tombstones

    # -- local record plumbing ----------------------------------------------
    def _read_record(self, key: bytes) -> Optional[bytes]:
        try:
            return self.inner.get(key)
        except KeyNotFoundError:
            return None

    def _write_record(self, key: bytes, record: bytes,
                      old: Optional[bytes]) -> None:
        """Store a versioned record, maintaining the tombstone count."""
        new_dead = is_tombstone(record)
        old_dead = old is not None and is_tombstone(old)
        self.inner.set(key, record)
        self._tombstones += int(new_dead) - int(old_dead)
        self._mark_dirty(key)

    def _mark_dirty(self, key: bytes) -> None:
        bucket = self.keyring.keyed_bucket_hash(key, self.config.num_buckets)
        self._digest_cache.pop(self.inner.mactree.set_of(bucket), None)

    def _bump(self, name: str, amount: int = 1) -> None:
        setattr(
            self.repl_stats, name, getattr(self.repl_stats, name) + amount
        )

    # -- client-facing mutators (versioned, fanned out) -----------------------
    def set(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        with self._mutex:
            old = self._read_record(key)
            record = pack_record(0, self.clock.tick(), self.origin, value)
            self._write_record(key, record, old)
        self._enqueue(key, record)

    def delete(self, key: bytes) -> None:
        key = bytes(key)
        with self._mutex:
            old = self._read_record(key)
            if old is None or is_tombstone(old):
                raise KeyNotFoundError("no such key (replicated delete)")
            record = pack_record(
                FLAG_TOMBSTONE, self.clock.tick(), self.origin, b""
            )
            self._write_record(key, record, old)
        self._enqueue(key, record)

    def get(self, key: bytes) -> bytes:
        with self._mutex:
            record = self._read_record(bytes(key))
        if record is None or is_tombstone(record):
            raise KeyNotFoundError("no such key (replicated get)")
        return unpack_record(record)[3]

    def get_versioned(self, key: bytes) -> bytes:
        """The raw versioned record — tombstones included (``vget``)."""
        with self._mutex:
            record = self._read_record(bytes(key))
        if record is None:
            raise KeyNotFoundError("no such key (vget)")
        return record

    def append(self, key: bytes, suffix: bytes) -> bytes:
        key, suffix = bytes(key), bytes(suffix)
        with self._mutex:
            old = self._read_record(key)
            base = b"" if old is None or is_tombstone(old) else (
                unpack_record(old)[3]
            )
            new_value = base + suffix
            record = pack_record(0, self.clock.tick(), self.origin, new_value)
            self._write_record(key, record, old)
        self._enqueue(key, record)
        return new_value

    def increment(self, key: bytes, delta: int = 1) -> int:
        key = bytes(key)
        with self._mutex:
            old = self._read_record(key)
            if old is None or is_tombstone(old):
                new_int = delta
            else:
                payload = unpack_record(old)[3]
                try:
                    new_int = int(payload.decode("ascii")) + delta
                except (UnicodeDecodeError, ValueError):
                    raise StoreError(
                        "increment target is not an ASCII integer"
                    ) from None
            record = pack_record(
                0, self.clock.tick(), self.origin, str(new_int).encode()
            )
            self._write_record(key, record, old)
        self._enqueue(key, record)
        return new_int

    def compare_and_swap(
        self, key: bytes, expected: bytes, new_value: bytes
    ) -> bool:
        key = bytes(key)
        with self._mutex:
            old = self._read_record(key)
            if old is None or is_tombstone(old):
                raise KeyNotFoundError("no such key (replicated cas)")
            if unpack_record(old)[3] != bytes(expected):
                return False
            record = pack_record(
                0, self.clock.tick(), self.origin, bytes(new_value)
            )
            self._write_record(key, record, old)
        self._enqueue(key, record)
        return True

    def contains(self, key: bytes) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFoundError:
            return False

    # -- batched ops ----------------------------------------------------------
    def multi_get(self, keys) -> dict:
        out = {}
        for key in keys:
            try:
                out[bytes(key)] = self.get(key)
            except KeyNotFoundError:
                out[bytes(key)] = None
        return out

    def multi_set(self, items) -> None:
        if isinstance(items, dict):
            items = items.items()
        for key, value in items:
            self.set(key, value)

    def multi_delete(self, keys) -> dict:
        out = {}
        for key in keys:
            try:
                self.delete(key)
                out[bytes(key)] = True
            except KeyNotFoundError:
                out[bytes(key)] = False
        return out

    # -- replication receive path (OP_REPLICATE) ------------------------------
    def apply_remote(self, key: bytes, raw_record: bytes) -> Tuple[bool, int]:
        """LWW-apply a record pushed by a peer or client coordinator.

        Returns ``(applied, node_clock)``; strictly-older (or equal)
        records are no-ops, which makes retried replication idempotent.
        """
        key = bytes(key)
        version = record_version(raw_record)  # validates the record too
        with self._mutex:
            node_clock = self.clock.witness(version[0])
            applied = self._apply_record_locked(key, raw_record, version)
        if applied:
            self._bump("replicated_in")
        return applied, node_clock

    def _apply_record_locked(
        self, key: bytes, raw_record: bytes, version: Tuple[int, int]
    ) -> bool:
        old = self._read_record(key)
        if old is not None:
            old_version = record_version(old)
            if version <= old_version:
                if version != old_version:
                    self._bump("replication_conflicts")
                return False
        self._write_record(key, raw_record, old)
        return True

    # -- anti-entropy (OP_SYNC) ------------------------------------------------
    def _set_digest_locked(self, set_id: int) -> bytes:
        """Keyed logical digest of one MAC set's verified contents."""
        cached = self._digest_cache.get(set_id)
        if cached is not None:
            return cached
        mac = hmac.new(self._digest_key, digestmod=hashlib.sha256)
        for key, record in sorted(self.inner.iter_set_items(set_id)):
            mac.update(struct.pack("<I", len(key)))
            mac.update(key)
            mac.update(hashlib.sha256(record).digest())
        digest = mac.digest()[:DIGEST_SIZE]
        self._digest_cache[set_id] = digest
        return digest

    def set_digest_blob(self) -> bytes:
        """All per-set digests, concatenated in set order."""
        with self._mutex:
            return b"".join(
                self._set_digest_locked(s) for s in range(self._num_sets)
            )

    def content_digest(self) -> bytes:
        """One digest over the whole verified logical state.

        Two replicas are byte-identical (same keys, same versioned
        records, MAC-verified) iff their content digests match.
        """
        return hashlib.sha256(self.set_digest_blob()).digest()

    def serve_sync(self, subop: bytes, value: bytes) -> bytes:
        """Server side of the anti-entropy exchange."""
        if subop == SYNC_KIND_DIGESTS:
            return self.set_digest_blob()
        if subop == SYNC_KIND_SET:
            if len(value) < 4:
                raise ProtocolError("sync set payload too short")
            from repro.net.message import decode_multi_items, encode_multi_items

            (set_id,) = struct.unpack_from("<I", value, 0)
            if set_id >= self._num_sets:
                raise ProtocolError(f"sync set id {set_id} out of range")
            for key, record in decode_multi_items(value[4:]):
                version = record_version(record)
                with self._mutex:
                    self.clock.witness(version[0])
                    if self._apply_record_locked(key, record, version):
                        self._bump("sync_keys_repaired")
            with self._mutex:
                items = list(self.inner.iter_set_items(set_id))
            return encode_multi_items(items)
        raise ProtocolError("unknown sync sub-operation")

    def sync_with(self, link: PeerLink) -> int:
        """One push-pull anti-entropy round against one peer.

        Compares ``O(num_sets)`` digests, descends only into divergent
        sets, pushes our records and LWW-merges the peer's reply.
        Returns the number of divergent sets exchanged.
        """
        theirs = link.sync_digests()
        mine = self.set_digest_blob()
        if len(theirs) != len(mine):
            raise ProtocolError("peer digest vector length mismatch")
        diverged = [
            s
            for s in range(self._num_sets)
            if not hmac.compare_digest(
                mine[s * DIGEST_SIZE : (s + 1) * DIGEST_SIZE],
                theirs[s * DIGEST_SIZE : (s + 1) * DIGEST_SIZE],
            )
        ]
        self._bump("sync_rounds")
        self._bump("sync_sets_diverged", len(diverged))
        for set_id in diverged:
            with self._mutex:
                items = list(self.inner.iter_set_items(set_id))
            for key, record in link.sync_set(set_id, items):
                version = record_version(record)
                with self._mutex:
                    self.clock.witness(version[0])
                    if self._apply_record_locked(key, record, version):
                        self._bump("sync_keys_repaired")
        return len(diverged)

    # -- peer membership -------------------------------------------------------
    def add_peer(
        self,
        peer_id: str,
        address,
        attestation,
        expected_measurement: bytes,
        **link_kwargs,
    ) -> PeerLink:
        if peer_id in self.peers:
            raise StoreError(f"duplicate peer {peer_id!r}")
        link = PeerLink(
            self.node_id, peer_id, address, attestation,
            expected_measurement, **link_kwargs,
        )
        self.peers[peer_id] = link
        return link

    # -- write-through fan-out -------------------------------------------------
    def _enqueue(self, key: bytes, record: bytes) -> None:
        """Queue a mutation for fan-out (applied locally already)."""
        if self.peers:
            self._queue.put((key, record))
            if self._thread is None:
                self._drain_queue()  # synchronous mode (no thread started)

    def _deliver(self, key: bytes, record: bytes) -> int:
        """Write-through one record to every peer; hint the dead ones."""
        acks = 0
        for peer_id, link in self.peers.items():
            if not link.alive and self.handoff.pending(peer_id):
                # Already backed up: keep ordering, queue behind.
                self.handoff.push(peer_id, key, record)
                self._bump("hints_queued")
                continue
            try:
                link.replicate(key, record)
                acks += 1
                self._bump("replicated_out")
            except PeerUnavailableError:
                self.handoff.push(peer_id, key, record)
                self._bump("hints_queued")
        return acks

    def _drain_queue(self) -> None:
        while True:
            try:
                key, record = self._queue.get_nowait()
            except queue.Empty:
                return
            try:
                self._deliver(key, record)
            finally:
                self._queue.task_done()

    def _retry_hints(self) -> None:
        """Deliver queued hints to peers that answer again."""
        for peer_id, link in self.peers.items():
            while self.handoff.pending(peer_id):
                item = self.handoff.pop(peer_id)
                if item is None:
                    break
                try:
                    link.replicate(*item)
                    self._bump("hints_delivered")
                except PeerUnavailableError:
                    self.handoff.unpop(peer_id, item)
                    break

    def flush(self) -> None:
        """Block until every queued fan-out has been attempted."""
        if self._thread is None:
            self._drain_queue()
        else:
            self._queue.join()

    def sync_now(self) -> int:
        """One hint-retry + anti-entropy round against every peer."""
        self._retry_hints()
        diverged = 0
        for link in self.peers.values():
            try:
                diverged += self.sync_with(link)
            except (PeerUnavailableError, ProtocolError):
                continue  # dead or misbehaving peer; next round retries
        return diverged

    # -- the replicator thread -------------------------------------------------
    def start(self, anti_entropy_interval_s: Optional[float] = None) -> None:
        """Start background fan-out (and periodic anti-entropy)."""
        if self._thread is not None:
            return
        self._sync_interval_s = anti_entropy_interval_s
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._replicator_loop,
            name=f"shieldstore-repl-{self.node_id}",
            daemon=True,
        )
        self._thread.start()

    def _replicator_loop(self) -> None:
        interval = self._sync_interval_s
        budget = interval if interval is not None else 0.0
        while not self._stop.is_set():
            try:
                key, record = self._queue.get(timeout=0.05)
            except queue.Empty:
                pass
            else:
                try:
                    self._deliver(key, record)
                finally:
                    self._queue.task_done()
            if interval is not None:
                budget -= 0.05
                if budget <= 0.0:
                    budget = interval
                    try:
                        self.sync_now()
                    except Exception:
                        pass  # keep replicating; next round retries

    def close(self) -> None:
        """Stop the replicator thread and drop every peer link."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        for link in self.peers.values():
            link.close()

    # -- introspection ---------------------------------------------------------
    def iter_live_items(self) -> Iterable[Tuple[bytes, bytes]]:
        """Verified (key, payload) pairs, tombstones skipped."""
        with self._mutex:
            items = list(self.inner.iter_items())
        for key, record in items:
            flags, _clock, _origin, payload = unpack_record(record)
            if not flags & FLAG_TOMBSTONE:
                yield key, payload


class ReplicaClient:
    """Replica-aware client with ``consistency={"one", "quorum"}``.

    Holds one attested link per replica.  Writes mint a client-side
    ``(clock, origin)`` version and push the record to **every**
    replica as ``OP_REPLICATE``; the consistency level is the number of
    acks required (1, or a majority).  Reads at QUORUM collect
    versioned replies from a majority, return the LWW winner and
    read-repair stale replicas; reads at ONE take the first reachable
    reply.  Every per-replica call runs through the TCP client's
    existing retry/deadline/backoff machinery.
    """

    def __init__(
        self,
        replicas: Sequence[Tuple[str, object]],
        attestation,
        expected_measurement: bytes,
        consistency: str = CONSISTENCY_QUORUM,
        name: str = "replica-client",
        connect_timeout_s: float = 2.0,
        request_deadline_s: float = 5.0,
        max_retries: int = 1,
    ):
        if consistency not in CONSISTENCY_LEVELS:
            raise StoreError(f"unknown consistency level {consistency!r}")
        if not replicas:
            raise StoreError("a replica client needs at least one replica")
        self.consistency = consistency
        self.name = name
        self.origin = node_origin(name)
        self.clock = LamportClock()
        self.stats = StoreStats()
        self.links: List[PeerLink] = [
            PeerLink(
                name, node_id, address, attestation, expected_measurement,
                connect_timeout_s=connect_timeout_s,
                request_deadline_s=request_deadline_s,
                max_retries=max_retries,
            )
            for node_id, address in replicas
        ]

    # -- helpers ---------------------------------------------------------------
    def _need(self, consistency: Optional[str]) -> Tuple[str, int]:
        level = consistency if consistency is not None else self.consistency
        if level not in CONSISTENCY_LEVELS:
            raise StoreError(f"unknown consistency level {level!r}")
        need = 1 if level == CONSISTENCY_ONE else len(self.links) // 2 + 1
        return level, need

    def _replicate_all(self, key: bytes, record: bytes, need: int) -> int:
        """Push a record to every replica; returns the ack count."""
        acks = 0
        for link in self.links:
            try:
                _applied, peer_clock = link.replicate(key, record)
                self.clock.witness(peer_clock)
                acks += 1
            except PeerUnavailableError:
                continue
        if acks < need:
            self.stats.quorum_failures += 1
            raise StoreError(
                f"write reached {acks} of {len(self.links)} replicas "
                f"(needed {need})"
            )
        return acks

    # -- writes ----------------------------------------------------------------
    def set(self, key: bytes, value: bytes,
            consistency: Optional[str] = None) -> None:
        _level, need = self._need(consistency)
        record = pack_record(0, self.clock.tick(), self.origin, bytes(value))
        self._replicate_all(bytes(key), record, need)
        self.stats.quorum_writes += 1

    def delete(self, key: bytes, consistency: Optional[str] = None) -> None:
        level, need = self._need(consistency)
        # Read at the same level first: delete-of-missing must raise.
        self.get(key, consistency=level)
        record = pack_record(
            FLAG_TOMBSTONE, self.clock.tick(), self.origin, b""
        )
        self._replicate_all(bytes(key), record, need)
        self.stats.quorum_writes += 1

    # -- reads -----------------------------------------------------------------
    def _collect_versions(
        self, key: bytes, need: int
    ) -> List[Tuple[PeerLink, Optional[bytes]]]:
        """Versioned replies from at least ``need`` live replicas."""
        replies: List[Tuple[PeerLink, Optional[bytes]]] = []
        for link in self.links:
            try:
                replies.append((link, link.vget(key)))
            except KeyNotFoundError:
                replies.append((link, None))  # alive, never saw the key
            except PeerUnavailableError:
                continue
        if len(replies) < need:
            self.stats.quorum_failures += 1
            raise StoreError(
                f"read reached {len(replies)} of {len(self.links)} "
                f"replicas (needed {need})"
            )
        return replies

    def get(self, key: bytes, consistency: Optional[str] = None) -> bytes:
        level, need = self._need(consistency)
        key = bytes(key)
        if level == CONSISTENCY_ONE:
            return self._get_one(key)
        replies = self._collect_versions(key, need)
        self.stats.quorum_reads += 1
        winner: Optional[bytes] = None
        for _link, record in replies:
            if record is None:
                continue
            if winner is None or record_version(record) > record_version(winner):
                winner = record
        if winner is None:
            raise KeyNotFoundError("no replica has the key")
        self.clock.witness(record_version(winner)[0])
        # Read-repair: push the winner to stale or empty replicas.
        for link, record in replies:
            if record is None or record_version(record) < record_version(winner):
                try:
                    link.replicate(key, winner)
                    self.stats.read_repairs += 1
                except PeerUnavailableError:
                    continue
        if is_tombstone(winner):
            raise KeyNotFoundError("key is deleted (tombstone wins)")
        return unpack_record(winner)[3]

    def _get_one(self, key: bytes) -> bytes:
        last_error: Optional[Exception] = None
        for link in self.links:
            try:
                record = link.vget(key)
            except KeyNotFoundError:
                raise
            except PeerUnavailableError as exc:
                last_error = exc
                continue
            if is_tombstone(record):
                raise KeyNotFoundError("key is deleted (tombstone)")
            self.clock.witness(record_version(record)[0])
            return unpack_record(record)[3]
        raise StoreError("no replica reachable for read") from last_error

    def contains(self, key: bytes, consistency: Optional[str] = None) -> bool:
        try:
            self.get(key, consistency=consistency)
            return True
        except KeyNotFoundError:
            return False

    def close(self) -> None:
        for link in self.links:
            link.close()


class GroupNode:
    """One replication-group member: store, server, liveness flag."""

    def __init__(self, node_id: str, store: ReplicatedStore, server):
        self.node_id = node_id
        self.store = store
        self.server = server
        self.alive = True

    @property
    def address(self):
        return self.server.address


class ReplicationGroup:
    """N replicated ``TCPShieldServer`` nodes wired into a full mesh.

    The harness the chaos tests and :mod:`benchmarks.bench_replication`
    drive: builds N nodes sharing the **group** master secret (aligned
    keyed-bucket geometry, so logical set digests are comparable),
    starts their servers, wires every pairwise peer link, and hands out
    quorum clients.  :meth:`kill` is a SIGKILL stand-in (hard server
    stop, no drain); :meth:`restart` brings the node back *empty* on a
    fresh port — hinted handoff and anti-entropy must refill it.
    """

    def __init__(
        self,
        num_nodes: int = 3,
        config=None,
        master_secret: bytes = b"\x5cshield-replication-group-seed\x5c",
        attestation_secret: bytes = b"ias-secret-for-replication",
        anti_entropy_interval_s: Optional[float] = None,
        max_hints_per_peer: int = 4096,
        link_deadline_s: float = 2.0,
        server_kwargs: Optional[dict] = None,
    ):
        from repro.core import shield_opt
        from repro.sim.attestation import AttestationService

        if num_nodes < 2:
            raise StoreError("a replication group needs at least two nodes")
        self.config = config if config is not None else shield_opt(
            num_buckets=64, num_mac_hashes=16
        )
        self.master_secret = master_secret
        self.attestation = AttestationService(attestation_secret)
        self.anti_entropy_interval_s = anti_entropy_interval_s
        self.max_hints_per_peer = max_hints_per_peer
        self.link_deadline_s = link_deadline_s
        self.server_kwargs = dict(server_kwargs or {})
        self.nodes: Dict[str, GroupNode] = {}
        self.measurement: Optional[bytes] = None
        for i in range(num_nodes):
            self._build_node(f"node-{i}")
        self._wire_mesh()
        for node in self.nodes.values():
            node.store.start(anti_entropy_interval_s)

    # -- construction --------------------------------------------------------
    def _build_node(self, node_id: str) -> GroupNode:
        from repro.core.store import ShieldStore
        from repro.net.tcp import TCPShieldServer

        inner = ShieldStore(self.config, master_secret=self.master_secret)
        store = ReplicatedStore(
            inner, node_id, max_hints_per_peer=self.max_hints_per_peer
        )
        server = TCPShieldServer(store, self.attestation, **self.server_kwargs)
        server.start()
        node = GroupNode(node_id, store, server)
        self.nodes[node_id] = node
        if self.measurement is None:
            self.measurement = inner.enclave.measurement
        return node

    def _link_node(self, node: GroupNode, peer: GroupNode) -> None:
        node.store.add_peer(
            peer.node_id,
            peer.address,
            self.attestation,
            self.measurement,
            request_deadline_s=self.link_deadline_s,
            connect_timeout_s=self.link_deadline_s,
        )

    def _wire_mesh(self) -> None:
        for node in self.nodes.values():
            for peer in self.nodes.values():
                if peer is not node:
                    self._link_node(node, peer)

    # -- clients -------------------------------------------------------------
    def client(
        self,
        name: str = "replica-client",
        consistency: str = CONSISTENCY_QUORUM,
        **kwargs,
    ) -> ReplicaClient:
        """A replica-aware client over every node (dead ones included —
        the client's quorum logic is what tolerates them)."""
        assert self.measurement is not None
        kwargs.setdefault("request_deadline_s", self.link_deadline_s)
        kwargs.setdefault("connect_timeout_s", self.link_deadline_s)
        return ReplicaClient(
            [(n.node_id, n.address) for n in self.nodes.values()],
            self.attestation,
            self.measurement,
            consistency=consistency,
            name=name,
            **kwargs,
        )

    # -- chaos levers ----------------------------------------------------------
    def kill(self, node_id: str) -> GroupNode:
        """SIGKILL stand-in: hard-stop the node's server, no drain."""
        node = self.nodes[node_id]
        node.store.close()
        node.server.close(drain=False)
        node.alive = False
        return node

    def restart(self, node_id: str) -> GroupNode:
        """Bring a killed node back **empty** on a fresh port.

        The revived replica holds nothing; peers' hinted handoff and
        the anti-entropy exchange are what refill it.
        """
        from repro.core.store import ShieldStore
        from repro.net.tcp import TCPShieldServer

        node = self.nodes[node_id]
        if node.alive:
            raise StoreError(f"node {node_id!r} is still alive")
        inner = ShieldStore(self.config, master_secret=self.master_secret)
        node.store = ReplicatedStore(
            inner, node_id, max_hints_per_peer=self.max_hints_per_peer
        )
        node.server = TCPShieldServer(
            node.store, self.attestation, **self.server_kwargs
        )
        node.server.start()
        node.alive = True
        for peer in self.nodes.values():
            if peer is node:
                continue
            self._link_node(node, peer)
            peer.store.peers[node_id].set_address(node.address)
            peer.store.peers[node_id].alive = True
        node.store.start(self.anti_entropy_interval_s)
        return node

    # -- convergence -----------------------------------------------------------
    def live_nodes(self) -> List[GroupNode]:
        return [n for n in self.nodes.values() if n.alive]

    def flush_all(self) -> None:
        for node in self.live_nodes():
            node.store.flush()

    def sync_all(self, rounds: int = 2) -> int:
        """Drive hint delivery + anti-entropy until (usually) converged.

        Multiple rounds because one push-pull round propagates a record
        one hop; with a full mesh two rounds reach everyone.
        """
        diverged = 0
        self.flush_all()
        for _ in range(rounds):
            for node in self.live_nodes():
                diverged += node.store.sync_now()
        return diverged

    def converged(self) -> bool:
        """True iff every live replica's verified state is byte-identical."""
        digests = {n.store.content_digest() for n in self.live_nodes()}
        return len(digests) == 1

    def close(self) -> None:
        for node in self.nodes.values():
            if node.alive:
                node.store.close()
                node.server.close(drain=False)
                node.alive = False
