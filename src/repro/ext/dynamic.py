"""Dynamic thread-pool adjustment (§5.3's explicitly deferred feature).

The paper: "current SGX [does not support] dynamic changes in the number
of enclave threads ... We leave supporting dynamic parallelism
adjustment for future work."  SGX2's EDMM lifts the hardware limitation;
this module provides the store-side half: live repartitioning of a
:class:`~repro.core.partition.PartitionedShieldStore`-style deployment
when the thread count changes.

Because partitions are hash-disjoint stores, resizing means *migrating*
every key whose owner changes.  The migration is performed by the
enclave (decrypt from the old partition, re-encrypt into the new one —
entries cannot simply be memcpy'd because bucket-set hashes are
per-partition) and its full cost lands on the simulated clocks, so the
amortization break-even is measurable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import StoreConfig
from repro.core.store import DEFAULT_MEASUREMENT, ShieldStore
from repro.crypto.keys import KeyRing
from repro.errors import StoreError
from repro.sim.enclave import Enclave, Machine

MAX_THREADS = 16


class DynamicShieldStore:
    """A partitioned store whose parallelism can be resized at runtime."""

    def __init__(
        self,
        config: StoreConfig,
        machine: Optional[Machine] = None,
        initial_threads: int = 1,
        master_secret: Optional[bytes] = None,
    ):
        # Provision clocks for the maximum pool up front (mirroring how
        # an SGX enclave pre-declares TCS slots even under EDMM).
        self.machine = (
            machine if machine is not None else Machine(num_threads=MAX_THREADS)
        )
        if initial_threads < 1 or initial_threads > self.machine.clock.num_threads:
            raise StoreError("initial_threads out of range for this machine")
        self.config = config
        self.enclave = Enclave(self.machine, DEFAULT_MEASUREMENT)
        if master_secret is None:
            master_secret = bytes(self.machine.rng.getrandbits(8) for _ in range(32))
        self._master = master_secret
        self._keyring = KeyRing(master_secret)
        self.partitions: List[ShieldStore] = []
        self.resizes = 0
        self.keys_migrated = 0
        self._build_partitions(initial_threads)

    # -- partition construction -------------------------------------------
    def _partition_config(self, threads: int) -> StoreConfig:
        per_buckets = max(1, self.config.num_buckets // threads)
        per_hashes = max(1, min(self.config.num_mac_hashes // threads, per_buckets))
        return self.config.with_(num_buckets=per_buckets, num_mac_hashes=per_hashes)

    def _build_partitions(self, threads: int) -> List[ShieldStore]:
        part_config = self._partition_config(threads)
        self.partitions = [
            ShieldStore(
                part_config,
                machine=self.machine,
                enclave=self.enclave,
                thread_id=t,
                master_secret=self._master,
            )
            for t in range(threads)
        ]
        return self.partitions

    @property
    def num_threads(self) -> int:
        return len(self.partitions)

    def partition_of(self, key: bytes) -> ShieldStore:
        h = self._keyring.keyed_bucket_hash(bytes(key), 1 << 30)
        return self.partitions[h * self.num_threads >> 30]

    # -- resizing -------------------------------------------------------------
    def resize(self, new_threads: int) -> int:
        """Repartition to ``new_threads`` workers; returns keys migrated.

        All existing data is decrypted by the enclave and re-inserted
        into the new partitions (each has fresh bucket-set hashes), with
        migration work charged round-robin across the *new* worker
        clocks — the threads do the rebalancing in parallel.
        """
        if new_threads < 1 or new_threads > self.machine.clock.num_threads:
            raise StoreError(
                f"new_threads must be in 1..{self.machine.clock.num_threads}"
            )
        if new_threads == self.num_threads:
            return 0
        old_partitions = self.partitions
        self._build_partitions(new_threads)
        migrated = 0
        for old in old_partitions:
            for key, value in old.iter_items():
                target = self.partition_of(key)
                target.set(key, value, ctx=target._ctx)
                migrated += 1
        self.resizes += 1
        self.keys_migrated += migrated
        return migrated

    # -- operations -------------------------------------------------------
    def get(self, key: bytes) -> bytes:
        return self.partition_of(key).get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self.partition_of(key).set(key, value)

    def delete(self, key: bytes) -> None:
        self.partition_of(key).delete(key)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self.partition_of(key).append(key, suffix)

    def increment(self, key: bytes, delta: int = 1) -> int:
        return self.partition_of(key).increment(key, delta)

    def contains(self, key: bytes) -> bool:
        return self.partition_of(key).contains(key)

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def elapsed_us(self) -> float:
        return self.machine.elapsed_us()
