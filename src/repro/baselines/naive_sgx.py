"""The naive SGX key-value store — the paper's *Baseline* (§3.1).

The entire hash table is placed in enclave memory and SGX's demand
paging is left to cope with working sets far beyond the EPC.  Every
touched page that is not EPC-resident costs a serialized ~60 µs fault,
which collapses throughput 134x at 4 GB (Fig. 3) and caps multi-core
scaling at two threads (Fig. 13) — the motivation for ShieldStore.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.plainhash import PlainHashTable
from repro.sim.enclave import Enclave, ExecContext, Machine
from repro.sim.memory import REGION_ENCLAVE

_MEASUREMENT = bytes(reversed(range(32)))


class NaiveSgxStore:
    """Plain chained hash table living entirely inside the enclave."""

    name = "baseline"

    def __init__(
        self,
        machine: Optional[Machine] = None,
        num_buckets: int = 1 << 16,
        materialize: bool = False,
    ):
        self.machine = machine if machine is not None else Machine()
        self.enclave = Enclave(self.machine, _MEASUREMENT, name="naive-kv")
        self.table = PlainHashTable(
            self.machine,
            num_buckets,
            REGION_ENCLAVE,
            enclave=self.enclave,
            materialize=materialize,
        )
        self._ctxs: List[ExecContext] = [
            self.enclave.context(t)
            for t in range(self.machine.clock.num_threads)
        ]

    def _ctx_of(self, key: bytes) -> ExecContext:
        # Worker threads pick requests off shared connections round-robin
        # (memcached-style); keys are not partitioned across threads.
        self._rr = (getattr(self, "_rr", -1) + 1) % len(self._ctxs)
        return self._ctxs[self._rr]

    def get(self, key: bytes) -> bytes:
        return self.table.get(self._ctx_of(key), bytes(key))

    def set(self, key: bytes, value: bytes) -> None:
        self.table.set(self._ctx_of(key), bytes(key), bytes(value))

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self.table.append(self._ctx_of(key), bytes(key), bytes(suffix))

    def __len__(self) -> int:
        return len(self.table)
