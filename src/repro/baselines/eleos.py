"""Eleos-style user-space paging comparator (§6.3, Figs. 16-17).

Eleos (Orenbach et al., EuroSys'17) keeps the application's data in an
enclave-managed *backing store* in untrusted memory and pages it into an
EPC-resident software cache ("spages") without exiting the enclave.
Compared with SGX hardware paging, a miss costs software page
en/decryption instead of an exit plus kernel paging — but protection is
still page-granular, which is what ShieldStore's fine-grained design
beats for small values (Fig. 16).

The paper's comparison ports *the baseline chained hash store* onto
Eleos, so every structure is paged: the bucket-pointer array, each chain
hop, and the entry payload.  Small values mean many scattered entries
and a proportionally huge bucket array, so per-get page-miss counts grow
as values shrink — the mechanism behind the 40x gap at 16 B values.

Modeled properties from §6.3:

* configurable page granularity: 4 KB default, 1 KB sub-pages supported;
* the memsys5 slab allocator manages at most 2 GB per pool, so data sets
  beyond the (scaled) limit raise :class:`UnsupportedConfigError` —
  "Eleos does not support the data set larger than 2GB";
* growing the backing store across multiple pools adds bookkeeping
  overhead, degrading throughput as the data set grows past ~200 MB.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import KeyNotFoundError, UnsupportedConfigError
from repro.sim.cycles import GB
from repro.sim.enclave import Enclave, ExecContext, Machine
from repro.util import fnv1a

_MEASUREMENT = bytes([0xE1] * 32)

# Software paging bookkeeping per miss (page-table walk, LRU update).
FAULT_BOOKKEEPING_CYCLES = 2_400
# Extra per-access bookkeeping once the backing store spans >1 pool.
MULTI_POOL_TAX_CYCLES = 900
POOL_BYTES_PAPER = 2 * GB
_ENTRY_HEADER = 16  # next_ptr + sizes, as in the plain baseline store
_BUCKET_SLOT = 8


class EleosStore:
    """Baseline chained KV store ported onto Eleos user-space paging."""

    name = "eleos"

    def __init__(
        self,
        machine: Optional[Machine] = None,
        page_bytes: int = 4096,
        cache_bytes: Optional[int] = None,
        pool_limit_bytes: Optional[int] = None,
        max_data_bytes: Optional[int] = None,
        num_buckets: Optional[int] = None,
        expected_pairs: Optional[int] = None,
    ):
        if page_bytes not in (1024, 4096):
            raise UnsupportedConfigError(
                "Eleos supports 4KB pages and 1KB sub-pages only"
            )
        self.machine = machine if machine is not None else Machine()
        self.enclave = Enclave(self.machine, _MEASUREMENT, name="eleos-kv")
        cost = self.machine.cost
        self.page_bytes = page_bytes
        # The spage cache lives in the EPC; leave room for Eleos metadata.
        self.cache_bytes = (
            cache_bytes
            if cache_bytes is not None
            else int(cost.epc_effective_bytes * 0.8)
        )
        self.cache_pages = max(1, self.cache_bytes // page_bytes)
        self.pool_limit_bytes = (
            pool_limit_bytes if pool_limit_bytes is not None else POOL_BYTES_PAPER
        )
        self.max_data_bytes = max_data_bytes
        self._cache: "OrderedDict[int, bool]" = OrderedDict()
        # Chained hash structure: bucket -> [key, ...] in chain order,
        # entry offsets/value lengths tracked per key.  The bucket array
        # occupies the front of the backing store; entries follow.
        self.num_buckets = num_buckets if num_buckets is not None else 1 << 16
        self._buckets: Dict[int, List[bytes]] = {}
        self._index: Dict[bytes, Tuple[int, int]] = {}  # key -> (offset, vlen)
        self._values: Dict[bytes, bytes] = {}
        self._bucket_region = self.num_buckets * _BUCKET_SLOT
        self._next_offset = self._bucket_region
        self._ctxs: List[ExecContext] = [
            self.enclave.context(t)
            for t in range(self.machine.clock.num_threads)
        ]
        self.software_faults = 0
        self._rr = -1

    # -- capacity rules ----------------------------------------------------
    def _check_capacity(self, additional: int) -> None:
        # The memsys5 pool holds the key-value data; the bucket array is
        # a separate allocation, so it does not count against the limit.
        total = self._next_offset - self._bucket_region + additional
        limit = (
            self.max_data_bytes
            if self.max_data_bytes is not None
            else self.pool_limit_bytes
        )
        if total > limit:
            raise UnsupportedConfigError(
                f"Eleos backing store would reach {total} bytes, beyond the "
                f"memsys5 pool limit of {limit} bytes"
            )

    @property
    def _pools_in_use(self) -> int:
        # One memsys5 pool per (scaled) 10% of the pool limit; several
        # pools add measurable bookkeeping (paper §6.3).
        pool = max(1, self.pool_limit_bytes // 10)
        return 1 + self._next_offset // pool

    # -- the software pager -------------------------------------------------
    def _touch(self, ctx: ExecContext, offset: int, size: int, write: bool) -> None:
        cost = self.machine.cost
        first = offset // self.page_bytes
        last = (offset + max(size, 1) - 1) // self.page_bytes
        for page in range(first, last + 1):
            if page in self._cache:
                self._cache.move_to_end(page)
                if write:
                    self._cache[page] = True
                continue
            # Software fault: decrypt the target page in, verify its MAC,
            # and encrypt + re-MAC the victim out when dirty.
            fault = FAULT_BOOKKEEPING_CYCLES
            fault += cost.aes_cycles(self.page_bytes)
            fault += cost.cmac_cycles(self.page_bytes)
            if len(self._cache) >= self.cache_pages:
                _victim, dirty = self._cache.popitem(last=False)
                if dirty:
                    fault += cost.aes_cycles(self.page_bytes)
                    fault += cost.cmac_cycles(self.page_bytes)
            self._cache[page] = write
            ctx.charge(fault)
            self.software_faults += 1
        if self._pools_in_use > 1:
            ctx.charge(MULTI_POOL_TAX_CYCLES * (self._pools_in_use - 1))
        ctx.charge(cost.mem_cycles(size, write, in_epc=True))

    def _ctx_of(self, key: bytes) -> ExecContext:
        # Worker threads pick requests off shared connections round-robin
        # (memcached-style); keys are not partitioned across threads.
        self._rr = (self._rr + 1) % len(self._ctxs)
        return self._ctxs[self._rr]

    def _bucket_of(self, key: bytes) -> int:
        return fnv1a(key) % self.num_buckets

    def _walk(self, ctx: ExecContext, key: bytes) -> bool:
        """Touch the bucket slot and chain entries up to the match."""
        bucket = self._bucket_of(key)
        self._touch(
            ctx, bucket * _BUCKET_SLOT, _BUCKET_SLOT, write=False
        )
        for chain_key in self._buckets.get(bucket, ()):
            offset, vlen = self._index[chain_key]
            # Reading the header (and key) of each candidate pages it in.
            probe = _ENTRY_HEADER + len(chain_key)
            if chain_key == key:
                self._touch(ctx, offset, probe + vlen, write=False)
                return True
            self._touch(ctx, offset, probe, write=False)
        return False

    # -- operations -----------------------------------------------------------
    def get(self, key: bytes) -> bytes:
        key = bytes(key)
        ctx = self._ctx_of(key)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        if key not in self._index:
            self._walk(ctx, key)
            raise KeyNotFoundError(key)
        self._walk(ctx, key)
        return self._values[key]

    def set(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        ctx = self._ctx_of(key)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        record = _ENTRY_HEADER + len(key) + len(value)
        existing = self._index.get(key)
        self._walk(ctx, key)
        if existing is not None and existing[1] == len(value):
            offset = existing[0]
        else:
            self._check_capacity(record)
            offset = self._next_offset
            self._next_offset += record
            ctx.charge(self.machine.cost.malloc_cycles)
            if existing is None:
                bucket = self._bucket_of(key)
                self._buckets.setdefault(bucket, []).insert(0, key)
        self._touch(ctx, offset, record, write=True)
        self._index[key] = (offset, len(value))
        self._values[key] = value

    def append(self, key: bytes, suffix: bytes) -> bytes:
        key = bytes(key)
        try:
            old = self.get(key)
        except KeyNotFoundError:
            old = b""
        new = old + bytes(suffix)
        self.set(key, new)
        return new

    def __len__(self) -> int:
        return len(self._index)
