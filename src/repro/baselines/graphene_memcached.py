"""Memcached on Graphene-SGX — the unmodified-application comparator.

Graphene-SGX (Tsai et al., ATC'17) runs unmodified binaries inside an
enclave behind a library OS.  The paper's observations about
Memcached+Graphene (§6.2):

* throughput is in the same ballpark as the naive baseline
  (-12% .. +34%), *slightly better* on allocation-heavy workloads
  because memcached's slab allocator beats the baseline's naive malloc;
* it pays libOS syscall-emulation overhead on every request;
* scaling *degrades* at 4 threads because memcached's background
  maintainer thread continually rebalances the hash table while holding
  a global lock.

The model: the same in-enclave plain table (so EPC paging behaves
identically), a per-operation libOS tax, a slab allocator that removes
the baseline's per-allocation malloc cost on writes, and a maintainer
thread that periodically serializes all workers on a global lock.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.plainhash import PlainHashTable
from repro.sim.enclave import Enclave, ExecContext, Machine
from repro.sim.memory import REGION_ENCLAVE, REGION_UNTRUSTED

_MEASUREMENT = bytes([7] * 32)

# LibOS syscall-emulation tax per request (futex/poll emulation etc.).
LIBOS_OP_CYCLES = 450
# Slab allocation advantage over the baseline's general-purpose malloc:
# the plain table charges malloc_cycles per allocation; memcached's slab
# free-lists make that nearly free, so writes get most of it back.
SLAB_REFUND_FRACTION = 0.8
# The maintainer thread grabs the global cache lock this often, and —
# running under Graphene with the table paging — suffers EPC faults and
# enclave exits *while holding it*, so each grab stalls the workers for
# page-fault-scale time.  Contention grows once more than two workers
# queue behind it (the paper sees degradation specifically at 4 threads).
MAINTAINER_PERIOD_OPS = 24
MAINTAINER_LOCK_CYCLES = 800_000


class GrapheneMemcachedStore:
    """Performance model of memcached running under Graphene-SGX."""

    name = "memcached+graphene"

    def __init__(
        self,
        machine: Optional[Machine] = None,
        num_buckets: int = 1 << 16,
        materialize: bool = False,
        secure: bool = True,
    ):
        self.machine = machine if machine is not None else Machine()
        self.secure = secure
        if secure:
            self.enclave = Enclave(self.machine, _MEASUREMENT, name="graphene-memcached")
            region = REGION_ENCLAVE
            self._ctxs: List[ExecContext] = [
                self.enclave.context(t)
                for t in range(self.machine.clock.num_threads)
            ]
        else:
            self.enclave = None
            region = REGION_UNTRUSTED
            self._ctxs = [
                self.machine.context(t, in_enclave=False)
                for t in range(self.machine.clock.num_threads)
            ]
        self.table = PlainHashTable(
            self.machine,
            num_buckets,
            region,
            enclave=self.enclave,
            materialize=materialize,
        )
        self._ops_since_maintainer = 0

    def _ctx_of(self, key: bytes) -> ExecContext:
        # Worker threads pick requests off shared connections round-robin
        # (memcached-style); keys are not partitioned across threads.
        self._rr = (getattr(self, "_rr", -1) + 1) % len(self._ctxs)
        return self._ctxs[self._rr]

    def _overheads(self, ctx: ExecContext) -> None:
        if self.secure:
            ctx.charge(LIBOS_OP_CYCLES)
        self._ops_since_maintainer += 1
        # Outside SGX the maintainer's critical sections are too short to
        # matter; under Graphene the lock holder suffers enclave paging
        # and exits, so with >2 workers the queue behind it lengthens and
        # the wait is real wall time for the blocked worker.
        contenders = len(self._ctxs) - 2
        if (
            self.secure
            and contenders > 0
            and self._ops_since_maintainer >= MAINTAINER_PERIOD_OPS
        ):
            self._ops_since_maintainer = 0
            ctx.charge(MAINTAINER_LOCK_CYCLES * contenders)

    def _slab_refund(self, ctx: ExecContext, allocations_before: int) -> None:
        allocations_now = self.table.count
        if allocations_now > allocations_before:
            # Cheaper slab path replaced the malloc the table charged.
            refund = self.machine.cost.malloc_cycles * SLAB_REFUND_FRACTION
            ctx.clock.cycles = max(0.0, ctx.clock.cycles - refund)

    def get(self, key: bytes) -> bytes:
        ctx = self._ctx_of(key)
        value = self.table.get(ctx, bytes(key))
        self._overheads(ctx)
        return value

    def set(self, key: bytes, value: bytes) -> None:
        ctx = self._ctx_of(key)
        before = self.table.count
        self.table.set(ctx, bytes(key), bytes(value))
        self._slab_refund(ctx, before)
        self._overheads(ctx)

    def append(self, key: bytes, suffix: bytes) -> bytes:
        ctx = self._ctx_of(key)
        before = self.table.count
        result = self.table.append(ctx, bytes(key), bytes(suffix))
        self._slab_refund(ctx, before)
        self._overheads(ctx)
        return result

    def __len__(self) -> int:
        return len(self.table)
