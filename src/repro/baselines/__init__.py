"""Comparator systems re-implemented on the shared SGX simulator.

All four systems expose the same ``get/set/append/__len__`` surface and
route each key to a simulated worker thread, so the experiment harness
drives them interchangeably:

* :class:`~repro.baselines.insecure.InsecureStore` — NoSGX reference;
* :class:`~repro.baselines.naive_sgx.NaiveSgxStore` — the paper's
  *Baseline* (whole table in enclave memory, hardware paging);
* :class:`~repro.baselines.graphene_memcached.GrapheneMemcachedStore` —
  memcached under a library OS;
* :class:`~repro.baselines.eleos.EleosStore` — user-space paging.
"""

from repro.baselines.eleos import EleosStore
from repro.baselines.graphene_memcached import GrapheneMemcachedStore
from repro.baselines.insecure import InsecureStore
from repro.baselines.naive_sgx import NaiveSgxStore
from repro.baselines.plainhash import PlainHashTable

__all__ = [
    "EleosStore",
    "GrapheneMemcachedStore",
    "InsecureStore",
    "NaiveSgxStore",
    "PlainHashTable",
]
