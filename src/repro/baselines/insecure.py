"""Insecure (NoSGX) key-value store — the paper's upper-bound curves.

The §3.1 baseline with SGX disabled: the plain chained hash table in
ordinary DRAM, no encryption, no integrity, no enclave transitions.
Table 1 shows this design matches memcached; Figures 3 and 18 use it as
the insecure reference point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.plainhash import PlainHashTable
from repro.sim.enclave import ExecContext, Machine
from repro.sim.memory import REGION_UNTRUSTED


class InsecureStore:
    """Multi-threaded plain store in untrusted memory, no SGX anywhere."""

    name = "insecure"

    def __init__(
        self,
        machine: Optional[Machine] = None,
        num_buckets: int = 1 << 16,
        materialize: bool = False,
    ):
        self.machine = machine if machine is not None else Machine()
        self.table = PlainHashTable(
            self.machine, num_buckets, REGION_UNTRUSTED, materialize=materialize
        )
        self._ctxs: List[ExecContext] = [
            self.machine.context(t, in_enclave=False)
            for t in range(self.machine.clock.num_threads)
        ]

    def _ctx_of(self, key: bytes) -> ExecContext:
        # Worker threads pick requests off shared connections round-robin
        # (memcached-style); keys are not partitioned across threads.
        self._rr = (getattr(self, "_rr", -1) + 1) % len(self._ctxs)
        return self._ctxs[self._rr]

    def get(self, key: bytes) -> bytes:
        return self.table.get(self._ctx_of(key), bytes(key))

    def set(self, key: bytes, value: bytes) -> None:
        self.table.set(self._ctx_of(key), bytes(key), bytes(value))

    def append(self, key: bytes, suffix: bytes) -> bytes:
        return self.table.append(self._ctx_of(key), bytes(key), bytes(suffix))

    def __len__(self) -> int:
        return len(self.table)
