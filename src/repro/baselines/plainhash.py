"""Plain chained hash table over simulated memory (no crypto).

This is the paper's §3.1 "baseline key-value store": a hash index with
chaining, validated against memcached in Table 1.  It is shared by:

* :class:`~repro.baselines.insecure.InsecureStore` — table in untrusted
  memory, SGX disabled (the *NoSGX* curves);
* :class:`~repro.baselines.naive_sgx.NaiveSgxStore` — the same table
  placed entirely in enclave memory (the *Baseline* the paper beats);
* the memcached-on-Graphene model, which adds libOS overheads.

Entry record layout (plaintext)::

    offset  size  field
    0       8     next_ptr
    8       4     key_size
    12      4     val_size
    16      k+v   key || value
"""

from __future__ import annotations

import struct

from repro.util import fnv1a
from typing import Optional, Tuple

from repro.errors import KeyNotFoundError, StoreError
from repro.sim.enclave import Enclave, ExecContext, Machine
from repro.sim.memory import REGION_ENCLAVE, REGION_UNTRUSTED

_HEADER = 16
_MAX_CHAIN = 1_000_000


class PlainHashTable:
    """Chained hash table whose placement (region) is the experiment knob."""

    def __init__(
        self,
        machine: Machine,
        num_buckets: int,
        region: str,
        enclave: Optional[Enclave] = None,
        materialize: bool = True,
    ):
        if region not in (REGION_ENCLAVE, REGION_UNTRUSTED):
            raise StoreError(f"unknown region {region!r}")
        self.machine = machine
        self.num_buckets = num_buckets
        self.region = region
        self.materialize = materialize
        self._mem = machine.memory
        self.table_base = self._mem.alloc(
            num_buckets * 8, region, materialize=materialize
        )
        # When unmaterialized, chain state lives in this shadow dict
        # (cost accounting is identical; only the bytes are virtual).
        self._shadow: Optional[dict] = None if materialize else {}
        self._shadow_heads: Optional[dict] = None if materialize else {}
        self.count = 0

    def _hash(self, ctx: ExecContext, key: bytes) -> int:
        ctx.charge(self.machine.cost.keyed_hash_cycles // 2)  # plain hash
        return fnv1a(key) % self.num_buckets

    # -- raw chain helpers -------------------------------------------------
    def _read_head(self, ctx: ExecContext, bucket: int) -> int:
        addr = self.table_base + bucket * 8
        raw = self._mem.read(ctx, addr, 8)
        if self._shadow_heads is not None:
            return self._shadow_heads.get(bucket, 0)
        return struct.unpack("<Q", raw)[0]

    def _write_head(self, ctx: ExecContext, bucket: int, ptr: int) -> None:
        addr = self.table_base + bucket * 8
        self._mem.write(ctx, addr, struct.pack("<Q", ptr))
        if self._shadow_heads is not None:
            self._shadow_heads[bucket] = ptr

    def _read_entry(self, ctx: ExecContext, addr: int) -> Tuple[int, bytes, bytes]:
        header = self._mem.read(ctx, addr, _HEADER)
        if self._shadow is not None:
            next_ptr, key, value = self._shadow[addr]
            self._mem.touch(ctx, addr + _HEADER, len(key) + len(value), write=False)
            return next_ptr, key, value
        next_ptr, ksize, vsize = struct.unpack("<QII", header)
        kv = self._mem.read(ctx, addr + _HEADER, ksize + vsize)
        return next_ptr, kv[:ksize], kv[ksize:]

    def _write_entry(
        self, ctx: ExecContext, addr: int, next_ptr: int, key: bytes, value: bytes
    ) -> None:
        if self._shadow is not None:
            self._mem.touch(
                ctx, addr, _HEADER + len(key) + len(value), write=True
            )
            self._shadow[addr] = (next_ptr, key, value)
            return
        record = struct.pack("<QII", next_ptr, len(key), len(value)) + key + value
        self._mem.write(ctx, addr, record)

    def _alloc_entry(self, ctx: ExecContext, size: int) -> int:
        ctx.charge(self.machine.cost.malloc_cycles)
        return self._mem.alloc(size, self.region, materialize=self.materialize)

    # -- operations ---------------------------------------------------------
    def get(self, ctx: ExecContext, key: bytes) -> bytes:
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        bucket = self._hash(ctx, key)
        addr = self._read_head(ctx, bucket)
        steps = 0
        while addr:
            if steps >= _MAX_CHAIN:
                raise StoreError("chain cycle in plain hash table")
            next_ptr, ekey, evalue = self._read_entry(ctx, addr)
            if ekey == key:
                return evalue
            addr = next_ptr
            steps += 1
        raise KeyNotFoundError(key)

    def set(self, ctx: ExecContext, key: bytes, value: bytes) -> None:
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        bucket = self._hash(ctx, key)
        head = self._read_head(ctx, bucket)
        addr, prev = head, 0
        steps = 0
        while addr:
            if steps >= _MAX_CHAIN:
                raise StoreError("chain cycle in plain hash table")
            next_ptr, ekey, evalue = self._read_entry(ctx, addr)
            if ekey == key:
                if len(evalue) == len(value):
                    self._write_entry(ctx, addr, next_ptr, key, value)
                else:
                    new_addr = self._alloc_entry(
                        ctx, _HEADER + len(key) + len(value)
                    )
                    self._write_entry(ctx, new_addr, next_ptr, key, value)
                    if prev:
                        self._mem.write(ctx, prev, struct.pack("<Q", new_addr))
                        if self._shadow is not None:
                            n, k, v = self._shadow[prev]
                            self._shadow[prev] = (new_addr, k, v)
                    else:
                        self._write_head(ctx, bucket, new_addr)
                return
            prev = addr
            addr = next_ptr
            steps += 1
        new_addr = self._alloc_entry(ctx, _HEADER + len(key) + len(value))
        self._write_entry(ctx, new_addr, head, key, value)
        self._write_head(ctx, bucket, new_addr)
        self.count += 1

    def append(self, ctx: ExecContext, key: bytes, suffix: bytes) -> bytes:
        try:
            old = self.get(ctx, key)
        except KeyNotFoundError:
            old = b""
        new = old + suffix
        self.set(ctx, key, new)
        return new

    def __len__(self) -> int:
        return self.count
