"""ShieldStore reproduction: shielded in-memory key-value storage on SGX.

Reproduction of *ShieldStore: Shielded In-memory Key-value Storage with
SGX* (Kim et al., EuroSys 2019) as a pure-Python library over a
cycle-accounting SGX simulator.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import ShieldStore, shield_opt

    store = ShieldStore(shield_opt(num_buckets=4096, num_mac_hashes=2048))
    store.set(b"user:42", b"alice")
    assert store.get(b"user:42") == b"alice"

Packages:

* :mod:`repro.core` — ShieldStore itself (the paper's contribution);
* :mod:`repro.sim` — the simulated SGX platform (EPC, enclaves,
  sealing, attestation, the attacker of the threat model);
* :mod:`repro.crypto` — from-scratch AES-128/CTR/CMAC substrate;
* :mod:`repro.baselines` — insecure / naive-SGX / Graphene-memcached /
  Eleos comparators;
* :mod:`repro.net` — networked front-ends (simulated + real TCP);
* :mod:`repro.workloads` — YCSB-style workload generators;
* :mod:`repro.experiments` — one module per paper table/figure;
* :mod:`repro.ext` — extensions the paper lists as future work.
"""

from repro.core import (
    PartitionSnapshotter,
    PartitionedShieldStore,
    ShieldStore,
    SnapshotPolicy,
    SnapshotScheduler,
    Snapshotter,
    StoreConfig,
    shield_base,
    shield_opt,
)
from repro.errors import (
    AttestationError,
    CryptoError,
    IntegrityError,
    KeyNotFoundError,
    PointerSafetyError,
    ReplayError,
    ReproError,
    RollbackError,
    SealingError,
    SnapshotError,
    StoreError,
    UnsupportedConfigError,
)
from repro.sim import Attacker, AttestationService, Enclave, Machine, SealingService

__version__ = "1.0.0"

__all__ = [
    "Attacker",
    "AttestationError",
    "AttestationService",
    "CryptoError",
    "Enclave",
    "IntegrityError",
    "KeyNotFoundError",
    "Machine",
    "PartitionSnapshotter",
    "PartitionedShieldStore",
    "PointerSafetyError",
    "ReplayError",
    "ReproError",
    "RollbackError",
    "SealingError",
    "SealingService",
    "ShieldStore",
    "SnapshotError",
    "SnapshotPolicy",
    "SnapshotScheduler",
    "Snapshotter",
    "StoreConfig",
    "StoreError",
    "UnsupportedConfigError",
    "shield_base",
    "shield_opt",
    "__version__",
]
