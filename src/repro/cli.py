"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — the experiment catalog with paper refs
* ``run <experiment> [...]``    — regenerate one table/figure (with an
  optional ASCII chart of the shape)
* ``demo``                      — one-minute guided tour of the store
  and its defenses
* ``serve --port N``            — start a real TCP ShieldStore server
  (``--snapshot-dir``/``--snapshot-interval`` add periodic §4.4
  checkpoints and restore-on-start, ``--snapshot-keep`` bounds the
  retained checkpoints, ``--fault-plan plan.json`` installs a seeded
  shieldfault schedule for chaos drills, and ``--node-id``/``--peer
  NAME=HOST:PORT``/``--replication-secret`` join the node to a
  replicated group with write fan-out and Merkle anti-entropy)
* ``snapshot`` / ``restore``    — write / load a sealed multi-partition
  snapshot blob (rollback-protected by a persisted monotonic counter)
* ``stats``                     — run a seeded batched workload and print
  the store's operation counters, including batch amortization
  (``--format json`` for machine-readable output); with
  ``--connect HOST:PORT --measurement HEX`` it instead attests a
  running ``serve`` deployment and prints its live merged counters,
  resilience counters included
* ``lint``                      — shieldlint static analysis: enclave
  trust-boundary taint, verify-before-use, lock-order and the
  shieldcrypt key-domain / nonce-reuse / ct-compare rules over the
  package tree (exit 0 clean / 1 findings / 2 analyzer error)
* ``info``                      — cost-model constants and version

Examples::

    python -m repro run fig03 --scale 0.005 --ops 2000 --chart
    python -m repro run table1
    python -m repro demo
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS

_PAPER_REFS = {
    "table1": "baseline parity with memcached (networked, no SGX)",
    "fig02": "memory latency w/ and w/o SGX vs working set",
    "fig03": "naive in-enclave store collapse beyond the EPC",
    "fig06": "extra heap allocator: OCALLs vs chunk size",
    "fig09": "key-hint decryption savings",
    "fig10": "overall normalized throughput (headline result)",
    "fig11": "per-workload throughput, large data set",
    "fig12": "append-operation mixes",
    "fig13": "1-4 thread scalability",
    "fig14": "optimization ablation over chain lengths",
    "fig15": "MAC-hash count trade-off",
    "fig16": "vs Eleos across value sizes",
    "fig17": "vs Eleos across working-set sizes",
    "fig18": "networked evaluation (HotCalls)",
    "fig19": "persistence: none/naive/optimized snapshots",
    "breakdown": "per-op cycle attribution by subsystem (beyond the paper)",
}

_CHARTS = {
    # experiment -> (kind, x/label header, series headers, log_y)
    "fig02": ("line", "WSS (MB)", ["NoSGX read", "SGX_Enclave read"], True),
    "fig03": ("line", "WSS (MB)", ["NoSGX (Kop/s)", "Baseline (Kop/s)"], True),
    "fig17": (
        "line",
        "WSS (MB)",
        ["Eleos Kop/s", "ShieldOpt Kop/s", "ShieldOpt+cache Kop/s"],
        False,
    ),
    "fig11": (
        "bars",
        "workload",
        ["baseline Kop/s", "shieldbase Kop/s", "shieldopt Kop/s"],
        False,
    ),
    "fig16": ("bars", "value (B)", ["Eleos Kop/s", "ShieldOpt Kop/s"], False),
}


def _cmd_list(_args) -> int:
    print("experiments (python -m repro run <name>):")
    for name in sorted(ALL_EXPERIMENTS):
        print(f"  {name:8s} {_PAPER_REFS.get(name, '')}")
    return 0


def _cmd_run(args) -> int:
    module = ALL_EXPERIMENTS.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; try `python -m repro list`")
        return 2
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.ops is not None:
        run_params = module.run.__code__.co_varnames[: module.run.__code__.co_argcount]
        kwargs["ops" if "ops" in run_params else "max_ops"] = args.ops
    result = module.run(**kwargs)
    print(result.format())
    if args.chart and args.experiment in _CHARTS:
        from repro.experiments import charts

        kind, x_header, series, log_y = _CHARTS[args.experiment]
        print()
        if kind == "line":
            print(charts.render_sweep(result, x_header, series, log_y=log_y))
        else:
            print(charts.render_bars(result, x_header, series, unit=" Kop/s"))
    return 0


def _cmd_demo(_args) -> int:
    from repro import Attacker, ShieldStore, shield_opt
    from repro.core.entry import TAMPER_PROBE_OFFSET
    from repro.errors import IntegrityError, ReplayError

    store = ShieldStore(shield_opt(num_buckets=512, num_mac_hashes=256))
    store.set(b"demo-key", b"demo-value")
    print("set/get:", store.get(b"demo-key"))
    attacker = Attacker(store.machine.memory)
    base, size = attacker.untrusted_allocations()[-1]
    print("untrusted memory holds only ciphertext:",
          b"demo-value" not in attacker.read(base, size))
    # Locate and tamper the entry.
    bucket = store.keyring.keyed_bucket_hash(b"demo-key", store.config.num_buckets)
    addr = int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8), "little"
    )
    attacker.flip_bit(addr + TAMPER_PROBE_OFFSET, 1)
    try:
        store.get(b"demo-key")
        print("tampering detected: NO (bug)")
        return 1
    except (IntegrityError, ReplayError) as exc:
        print(f"tampering detected: {type(exc).__name__}")
    print(f"simulated time so far: {store.machine.elapsed_us():.1f} us")
    return 0


def _snapshot_store(partitions: int):
    """Deterministic store geometry shared by snapshot/restore runs.

    The machine RNG is seeded from the config, so a later invocation
    with the same partition count derives the same master secret — and
    therefore the same platform sealing secret — letting it unseal the
    earlier snapshot exactly like a restarted deployment would.
    """
    from repro.core import PartitionedShieldStore, shield_opt

    config = shield_opt(
        num_buckets=64 * partitions, num_mac_hashes=16 * partitions
    )
    return PartitionedShieldStore(config, num_partitions=partitions)


def _counter_service(args, blob_path: str):
    from repro.sim import MonotonicCounterService

    path = args.counter_file or blob_path + ".counters.json"
    return MonotonicCounterService(path)


def _cmd_snapshot(args) -> int:
    from repro.core import PartitionSnapshotter

    store = _snapshot_store(args.partitions)
    keys = [f"key-{i:05d}".encode() for i in range(args.pairs)]
    for start in range(0, len(keys), 256):
        chunk = keys[start : start + 256]
        store.multi_set([(key, b"value-" + key) for key in chunk])
    snapshotter = PartitionSnapshotter.for_store(
        store, _counter_service(args, args.out)
    )
    blob = snapshotter.snapshot_bytes(store)
    with open(args.out, "wb") as fh:
        fh.write(blob)
    print(f"snapshot: {args.pairs} pairs across {store.num_threads} "
          f"partition(s), mode={store.mode}")
    print(f"wrote {len(blob)} bytes to {args.out} "
          f"(monotonic counter {_blob_counter(blob)})")
    store.close()
    return 0


def _cmd_restore(args) -> int:
    from repro.core import PartitionSnapshotter
    from repro.errors import RollbackError, SnapshotError

    with open(args.snapshot, "rb") as fh:
        blob = fh.read()
    store = _snapshot_store(args.partitions)
    snapshotter = PartitionSnapshotter.for_store(
        store, _counter_service(args, args.snapshot)
    )
    try:
        snapshotter.restore(blob, store)
    except (SnapshotError, RollbackError) as exc:
        print(f"restore rejected: {exc}")
        store.close()
        return 1
    checked = store.audit()
    print(f"restored {len(store)} keys into {store.num_threads} "
          f"partition(s), mode={store.mode}")
    print(f"integrity audit: {checked} entries verified, "
          f"engine state {store.partition_state}")
    store.close()
    return 0


def _blob_counter(blob: bytes) -> int:
    from repro.core import snapshot_counter

    return snapshot_counter(blob)


def _cmd_serve(args) -> int:
    import os

    from repro import AttestationService, ShieldStore, shield_opt
    from repro.core import PartitionedShieldStore
    from repro.net import SnapshotDaemon, TCPShieldServer

    from repro.sim.cycles import MB

    config = shield_opt(
        num_buckets=8192,
        num_mac_hashes=4096,
        cache_bytes=int(args.cache_mb * MB),
        mac_cache_bytes=int(args.mac_cache_mb * MB),
    )
    peers = []
    for spec in args.peer or ():
        name, eq, addr = spec.partition("=")
        host_part, colon, port_part = addr.rpartition(":")
        if not name or not eq or not colon or not port_part.isdigit():
            print(f"bad --peer {spec!r}: expected NAME=HOST:PORT",
                  file=sys.stderr)
            return 2
        peers.append((name, host_part, int(port_part)))
    replicated = bool(peers or args.node_id)
    if replicated and args.workers > 1:
        print("replication (--peer/--node-id) requires --workers 1: the "
              "partition engine shards one node; replication spans nodes",
              file=sys.stderr)
        return 2
    if peers and not args.replication_secret:
        print("--peer requires --replication-secret (all group members "
              "must share one master secret so anti-entropy digests and "
              "bucket placement line up)", file=sys.stderr)
        return 2

    if args.workers > 1:
        # Shared-nothing partition engine: one worker process per
        # partition, each with its own enclave sim (auto mode picks
        # processes; falls back in-process on exotic platforms).
        store = PartitionedShieldStore(
            config,
            num_partitions=args.workers,
            data_plane=args.data_plane,
            wal_dir=args.wal_dir,
            wal_sync_ms=args.wal_sync_ms,
        )
        plane = getattr(store, "data_plane", None)
        print(f"partition engine: {args.workers} workers, "
              f"mode={store.mode}"
              + (f", data-plane={plane}" if plane else ""))
    else:
        master = None
        if args.replication_secret:
            # Stretch the operator passphrase into a full-width master
            # secret (every group member derives the same one).
            import hashlib

            master = hashlib.sha256(
                b"shieldstore/replication-group:"
                + args.replication_secret.encode()
            ).digest()
        store = ShieldStore(config, master_secret=master)
    inner = store
    if replicated:
        from repro.ext import ReplicatedStore

        store = ReplicatedStore(store, node_id=args.node_id or "node-0")
    if args.wal_dir:
        print(f"write-ahead log: {args.wal_dir} "
              f"(group commit {args.wal_sync_ms:g} ms)")
    plan = None
    if args.fault_plan:
        from repro.sim import faults as faultsmod

        plan = faultsmod.FaultPlan.from_file(args.fault_plan)
        faultsmod.install(plan)
        print(f"fault plan: {len(plan.rules)} rule(s), seed {plan.seed} "
              f"({args.fault_plan})")

    service = AttestationService(args.attestation_secret.encode())
    if replicated:
        for name, peer_host, peer_port in peers:
            store.add_peer(
                name, (peer_host, peer_port), service,
                store.enclave.measurement,
            )
    server = TCPShieldServer(
        store,
        service,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        request_deadline_s=args.request_deadline,
    )

    daemon = None
    restored_counter = 0
    if args.snapshot_dir:
        from repro.core import (
            PartitionSnapshotter,
            Snapshotter,
            default_platform_secret,
            snapshot_counter,
        )
        from repro.sim import MonotonicCounterService, SealingService

        counters = MonotonicCounterService(
            os.path.join(args.snapshot_dir, "counters.json")
        )
        if isinstance(store, PartitionedShieldStore):
            snapshotter = PartitionSnapshotter.for_store(store, counters)

            def take_snapshot():
                return snapshotter.snapshot_bytes(store)

            def load_snapshot(blob):
                snapshotter.restore(blob, store)

        else:
            # Persistence always targets the inner ShieldStore: under
            # replication the versioned records are just opaque values,
            # so checkpoints and WAL replay round-trip them unchanged.
            sealing = SealingService(
                default_platform_secret(inner.keyring.master)
            )
            single = Snapshotter(sealing, counters)

            def take_snapshot():
                blob = single.snapshot_bytes(inner.enclave.context(), inner)
                if inner.wal is not None:
                    # Rotate inside the daemon's locked capture: the
                    # truncation record brackets exactly this blob.
                    inner.wal.rotate(snapshot_counter(blob))
                return blob

            def load_snapshot(blob):
                single.restore(inner.enclave.context(), blob, inner)

        on_checkpoint = None
        if args.wal_dir:
            from repro.core import WriteAheadLog

            def on_checkpoint(counter, wal_dir=args.wal_dir):
                # Only once the checkpoint is durable may the log
                # segments it supersedes be deleted.
                WriteAheadLog.retire(wal_dir, counter)

        daemon = SnapshotDaemon(
            take_snapshot,
            args.snapshot_dir,
            args.snapshot_interval,
            lock=server.store_lock,
            keep=args.snapshot_keep,
            on_checkpoint=on_checkpoint,
        )
        server.snapshot_daemon = daemon
        latest = SnapshotDaemon.latest_snapshot(args.snapshot_dir)
        if latest:
            with open(latest, "rb") as fh:
                blob = fh.read()
            load_snapshot(blob)
            restored_counter = snapshot_counter(blob)
            print(f"restored {len(store)} keys from {latest}")
        daemon.start()
        print(f"snapshots: every {args.snapshot_interval:g}s "
              f"-> {args.snapshot_dir}")
    if args.wal_dir and not isinstance(store, PartitionedShieldStore):
        # Partitioned engines recover their logs internally (at build
        # and again on snapshot restore); the single store attaches its
        # log here — after any checkpoint restore — replaying the tail
        # the checkpoint does not cover.
        from repro.core import WriteAheadLog, apply_request

        inner.wal = WriteAheadLog.recover(
            args.wal_dir,
            0,
            inner.keyring.master,
            config.suite_name,
            restored_counter,
            apply=lambda req: apply_request(inner, req),
            stats=inner.stats,
            sync_ms=args.wal_sync_ms,
        )
        if inner.wal.replayed:
            print(f"replayed {inner.wal.replayed} operation(s) "
                  "from the write-ahead log")

    server.start()
    if replicated:
        store.start(anti_entropy_interval_s=args.anti_entropy_interval)
        print(f"replication: node {store.node_id}, {len(peers)} peer(s), "
              f"anti-entropy every {args.anti_entropy_interval:g}s")
    host, port = server.address
    print(f"ShieldStore enclave serving on {host}:{port}")
    print(f"measurement: {store.enclave.measurement.hex()}")
    print("press Ctrl-C to stop")
    try:
        import time

        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        if daemon is not None:
            daemon.stop()
            try:
                final = daemon.run_once()
                print(f"final checkpoint: {final}")
            except Exception as exc:
                print(f"final checkpoint failed: {exc}")
        server.close()
        if hasattr(store, "close"):
            store.close()
        if inner is not store and hasattr(inner, "close"):
            inner.close()
        if plan is not None:
            report = plan.snapshot()
            print(f"faults injected: {report['total_fires']} "
                  f"across {len(report['fires'])} point/kind pair(s)")
        print("stopped")
    return 0


def _cmd_plan(args) -> int:
    from repro.core.planner import plan

    result = plan(
        args.pairs,
        key_size=args.key_size,
        val_size=args.value_size,
        num_buckets=args.buckets,
        num_mac_hashes=args.mac_hashes,
    )
    print(result.summary())
    return 0


def _emit_json(payload) -> None:
    """Shared machine-readable output path (``stats``/``lint`` --format
    json): one stable, sorted, indented JSON document on stdout."""
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_stats_connect(args) -> int:
    """Attest a running ``repro serve`` and print its live counters."""
    import os

    from repro.net import TCPShieldClient
    from repro.sim import AttestationService

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print("--connect needs HOST:PORT", file=sys.stderr)
        return 2
    if not args.measurement:
        print("--connect requires --measurement HEX (printed by "
              "`repro serve` at startup)", file=sys.stderr)
        return 2
    service = AttestationService(args.attestation_secret.encode())
    client = TCPShieldClient(
        (host, int(port)),
        service,
        bytes.fromhex(args.measurement),
        os.urandom(32),
    )
    try:
        counters = client.server_stats()
    finally:
        client.close()
    if args.format == "json":
        _emit_json({"connect": args.connect, "counters": counters})
        return 0
    print(f"live counters from {args.connect}:")
    for name, value in sorted(counters.items()):
        print(f"  {name:28s} {value}")
    return 0


def _cmd_stats(args) -> int:
    from repro.core import PartitionedShieldStore, shield_opt
    from repro.sim.enclave import Machine

    if args.connect:
        return _cmd_stats_connect(args)

    from repro.sim.cycles import MB

    config = shield_opt(
        num_buckets=64 * args.threads,
        num_mac_hashes=16 * args.threads,
        cache_bytes=int(args.cache_mb * MB),
        mac_cache_bytes=int(args.mac_cache_mb * MB),
    )
    if args.mode == "processes":
        store = PartitionedShieldStore(
            config, num_partitions=args.threads, mode="processes"
        )
    else:
        store = PartitionedShieldStore(
            config,
            machine=Machine(num_threads=args.threads),
            parallel=args.parallel or args.mode == "threads",
            mode=args.mode,
        )
    keys = [f"key-{i:05d}".encode() for i in range(args.pairs)]
    batch = max(1, args.batch)
    for start in range(0, len(keys), batch):
        chunk = keys[start : start + batch]
        store.multi_set([(key, b"value-" + key) for key in chunk])
        store.multi_get(chunk)
    store.multi_delete(keys[: args.pairs // 4])
    # Cross-process aggregation: in processes mode each worker ships its
    # counter snapshot over the pipe and the parent merges them here.
    stats = store.stats()
    ops = stats.batch_ops or 1
    if args.format == "json":
        _emit_json({
            "workload": {
                "pairs": args.pairs,
                "batch": batch,
                "partitions": args.threads,
                "mode": store.mode,
                "state": store.partition_state,
            },
            "simulated_us": round(store.elapsed_us(), 1),
            "counters": stats.snapshot_dict(),
            "batch_amortization": {
                "avg_batch_size": round(
                    stats.batch_ops / max(1, stats.batches), 1
                ),
                "set_verifications_per_batch_op": round(
                    stats.batch_sets_verified / ops, 3
                ),
                "verifications_saved": stats.batch_verifications_saved,
                "set_hash_updates_saved": stats.batch_set_updates_saved,
            },
        })
        store.close()
        return 0
    print(f"workload: {args.pairs} pairs, batch={batch}, "
          f"{args.threads} partition(s), mode={store.mode}, "
          f"state={store.partition_state}")
    print(f"simulated time: {store.elapsed_us():.1f} us")
    print("operation counters:")
    for name, value in stats.snapshot_dict().items():
        print(f"  {name:28s} {value}")
    print("batch amortization:")
    print(f"  avg batch size               "
          f"{stats.batch_ops / max(1, stats.batches):.1f}")
    print(f"  set verifications / batch op "
          f"{stats.batch_sets_verified / ops:.3f} "
          f"(1.000 without batching)")
    print(f"  verifications saved          {stats.batch_verifications_saved}")
    print(f"  set-hash updates saved       {stats.batch_set_updates_saved}")
    store.close()
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import AnalysisError, run_analysis

    try:
        report = run_analysis(root=args.path, rules=args.rule or None)
    except AnalysisError as exc:
        print(f"shieldlint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit_json(report.to_dict())
    else:
        print(report.format_text())
        if args.stale_suppressions:
            for path, line in report.stale_suppressions:
                print(f"{path}:{line}: stale suppression — every rule it "
                      "names ran and none fired; delete the comment")
    code = report.exit_code()
    if args.stale_suppressions and report.stale_suppressions:
        code = max(code, 1)
    return code


def _cmd_info(_args) -> int:
    import repro
    from repro.sim.cycles import DEFAULT_COST_MODEL as cost

    print(f"repro {repro.__version__} — ShieldStore (EuroSys'19) reproduction")
    print(f"platform model: {cost.freq_ghz} GHz, EPC {cost.epc_effective_bytes >> 20} MB "
          f"effective, LLC {cost.llc_bytes >> 20} MB")
    print(f"fault: read {cost.page_fault_read_cycles} cy / write "
          f"{cost.page_fault_write_cycles} cy ({cost.fault_serial_fraction:.0%} serialized)")
    print(f"crossings: ecall {cost.ecall_cycles} cy, hotcall {cost.hotcall_cycles} cy")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ShieldStore (EuroSys'19) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="regenerate a paper table/figure")
    run.add_argument("experiment")
    run.add_argument("--scale", type=float, default=None,
                     help="working-set scale vs paper (default per-experiment)")
    run.add_argument("--ops", type=int, default=None, help="measured requests")
    run.add_argument("--chart", action="store_true", help="also render ASCII chart")
    run.set_defaults(func=_cmd_run)

    sub.add_parser("demo", help="one-minute guided tour").set_defaults(func=_cmd_demo)

    serve = sub.add_parser("serve", help="start a real TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--attestation-secret", default="dev-attestation-secret")
    serve.add_argument("--workers", type=int, default=1,
                       help="partition worker processes (>1 enables the "
                            "process-parallel partition engine)")
    serve.add_argument("--data-plane", choices=["pipe", "shm"], default=None,
                       help="worker crossing transport: 'shm' = sealed "
                            "shared-memory rings (switchless, default where "
                            "supported), 'pipe' = portable pipes")
    serve.add_argument("--snapshot-dir", default=None,
                       help="directory for periodic sealed checkpoints; "
                            "the newest one is restored on startup")
    serve.add_argument("--snapshot-interval", type=float, default=60.0,
                       help="seconds between checkpoints (default 60, "
                            "the paper's §4.4 schedule)")
    serve.add_argument("--snapshot-keep", type=int, default=5,
                       help="checkpoints retained in --snapshot-dir; older "
                            "snapshot-*.bin files are pruned (default 5)")
    serve.add_argument("--wal-dir", default=None,
                       help="directory for sealed per-partition write-ahead "
                            "logs; acknowledged mutations are appended "
                            "before apply and replayed on restart, so "
                            "crashes lose nothing")
    serve.add_argument("--wal-sync-ms", type=float, default=2.0,
                       help="group-commit window in milliseconds: fsync the "
                            "log at most this often (0 = fsync every "
                            "append; default 2)")
    serve.add_argument("--max-connections", type=int, default=64,
                       help="concurrent session cap; excess accepts are "
                            "refused and counted (default 64)")
    serve.add_argument("--request-deadline", type=float, default=30.0,
                       help="per-request wire deadline in seconds; stalled "
                            "connections are dropped (default 30)")
    serve.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                       help="install a seeded shieldfault injection plan "
                            "(see repro.sim.faults) for chaos drills")
    serve.add_argument("--cache-mb", type=float, default=0.0,
                       help="in-enclave plaintext value cache budget in MB "
                            "(§6.3 ShieldOpt+cache; split across workers; "
                            "0 disables)")
    serve.add_argument("--mac-cache-mb", type=float, default=0.0,
                       help="enclave-resident verified MAC-list cache "
                            "budget in MB (O(1) hit-path verification; "
                            "split across workers; 0 disables)")
    serve.add_argument("--node-id", default=None,
                       help="this node's replication-group name; enables "
                            "the replicated store (requires --workers 1)")
    serve.add_argument("--peer", action="append", default=None,
                       metavar="NAME=HOST:PORT",
                       help="replication peer (repeatable); every group "
                            "member lists every other member and shares "
                            "--replication-secret")
    serve.add_argument("--replication-secret", default=None,
                       help="shared group master secret; required with "
                            "--peer so anti-entropy digests and keyed "
                            "bucket placement agree across replicas")
    serve.add_argument("--anti-entropy-interval", type=float, default=5.0,
                       help="seconds between background Merkle anti-"
                            "entropy rounds against each peer (default 5)")
    serve.set_defaults(func=_cmd_serve)

    snapshot = sub.add_parser(
        "snapshot", help="write a sealed multi-partition snapshot blob"
    )
    snapshot.add_argument("--out", required=True, help="snapshot file to write")
    snapshot.add_argument("--pairs", type=int, default=2000,
                          help="seeded key-value pairs to load first")
    snapshot.add_argument("--partitions", type=int, default=2)
    snapshot.add_argument("--counter-file", default=None,
                          help="monotonic-counter state (default: "
                               "<out>.counters.json)")
    snapshot.set_defaults(func=_cmd_snapshot)

    restore = sub.add_parser(
        "restore", help="restore a snapshot blob and verify integrity"
    )
    restore.add_argument("--snapshot", required=True, help="snapshot file to load")
    restore.add_argument("--partitions", type=int, default=2,
                         help="partition count of the target store "
                              "(must match the snapshot)")
    restore.add_argument("--counter-file", default=None,
                         help="monotonic-counter state (default: "
                              "<snapshot>.counters.json)")
    restore.set_defaults(func=_cmd_restore)

    stats = sub.add_parser(
        "stats", help="batched-workload operation counters (incl. amortization)"
    )
    stats.add_argument("--pairs", type=int, default=2000)
    stats.add_argument("--batch", type=int, default=256)
    stats.add_argument("--threads", type=int, default=4)
    stats.add_argument("--parallel", action="store_true",
                       help="fan batches out to real worker threads")
    stats.add_argument("--mode", default="auto",
                       choices=["auto", "sequential", "threads", "processes"],
                       help="partition execution engine (processes = one "
                            "worker process per partition)")
    stats.add_argument("--cache-mb", type=float, default=0.0,
                       help="in-enclave value cache budget in MB (0 off)")
    stats.add_argument("--mac-cache-mb", type=float, default=0.0,
                       help="verified MAC-list cache budget in MB (0 off)")
    stats.add_argument("--format", default="text", choices=["text", "json"],
                       help="output format (json is stable and sorted)")
    stats.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="instead of a local workload, attest a running "
                            "`repro serve` and print its live counters")
    stats.add_argument("--measurement", default=None,
                       help="expected enclave measurement (hex) for "
                            "--connect; printed by `repro serve`")
    stats.add_argument("--attestation-secret", default="dev-attestation-secret",
                       help="attestation service secret for --connect")
    stats.set_defaults(func=_cmd_stats)

    lint = sub.add_parser(
        "lint",
        help="shieldlint: trust-boundary, verify-before-use, "
             "lock-order, key-domain, nonce-reuse and ct-compare "
             "static analysis (exit 0 clean / 1 findings / "
             "2 analyzer error)",
    )
    lint.add_argument("path", nargs="?", default=None,
                      help="analysis root (default: the installed "
                           "repro package tree)")
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      help="output format (json is stable and sorted)")
    lint.add_argument("--rule", action="append", default=None,
                      choices=["trust-boundary", "verify-before-use",
                               "lock-order", "key-domain", "nonce-reuse",
                               "ct-compare"],
                      help="run only this rule (repeatable)")
    lint.add_argument("--stale-suppressions", action="store_true",
                      help="also report ignore-comments whose rules all "
                           "ran but no longer fire (exit 1 if any)")
    lint.set_defaults(func=_cmd_lint)

    sub.add_parser("info", help="cost-model constants").set_defaults(func=_cmd_info)

    planner = sub.add_parser("plan", help="size a deployment (§4.3 trade-offs)")
    planner.add_argument("pairs", type=int, help="expected key-value pairs")
    planner.add_argument("--key-size", type=int, default=16)
    planner.add_argument("--value-size", type=int, default=512)
    planner.add_argument("--buckets", type=int, default=None)
    planner.add_argument("--mac-hashes", type=int, default=None)
    planner.set_defaults(func=_cmd_plan)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
