"""Capacity planning: choose bucket and MAC-hash counts for a deployment.

Section 4.3 describes the sizing tension ShieldStore's operator faces:

* too few buckets -> long chains -> more decryptions per search;
* too many MAC hashes -> the in-enclave array outgrows the EPC and
  starts demand-paging (Fig. 15's cliff);
* too few MAC hashes -> large bucket sets -> more MACs read and hashed
  per integrity check.

:func:`plan` turns those constraints into numbers: given the expected
population and value size, it sizes the structures, reports where every
byte lives (EPC vs untrusted), and estimates the per-get verification
work — the same arithmetic the paper uses to default to 8M buckets and
4M MAC hashes for 10M pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.entry import entry_total_size
from repro.core.hashindex import SLOT_SIZE
from repro.core.macbucket import NODE_HEADER
from repro.core.mactree import HASH_SIZE
from repro.sim.cycles import DEFAULT_COST_MODEL, CostModel


@dataclass(frozen=True)
class CapacityPlan:
    """Sizing outcome for one deployment."""

    num_pairs: int
    key_size: int
    val_size: int
    num_buckets: int
    num_mac_hashes: int
    avg_chain_length: float
    buckets_per_set: int
    # -- memory placement --------------------------------------------------
    enclave_bytes: int          # MAC-hash array (the EPC budget consumer)
    untrusted_entry_bytes: int
    untrusted_index_bytes: int  # bucket slots + MAC buckets
    epc_budget_bytes: int
    epc_utilization: float      # enclave_bytes / epc_budget
    fits_epc: bool
    # -- per-get work estimates ----------------------------------------------
    expected_decryptions_per_get: float
    macs_read_per_get: float
    est_get_cycles: float

    def summary(self) -> str:
        """Human-readable report."""
        lines = [
            f"population: {self.num_pairs:,} pairs "
            f"({self.key_size}B keys, {self.val_size}B values)",
            f"buckets: {self.num_buckets:,} (avg chain {self.avg_chain_length:.2f})",
            f"MAC hashes: {self.num_mac_hashes:,} "
            f"(bucket sets of {self.buckets_per_set})",
            f"enclave memory: {self.enclave_bytes / 2**20:.1f} MB of "
            f"{self.epc_budget_bytes / 2**20:.1f} MB EPC "
            f"({self.epc_utilization:.0%}{'' if self.fits_epc else ' — OVERFLOWS, will page!'})",
            f"untrusted memory: {self.untrusted_entry_bytes / 2**20:.1f} MB entries "
            f"+ {self.untrusted_index_bytes / 2**20:.1f} MB index",
            f"per get: ~{self.expected_decryptions_per_get:.2f} decryptions, "
            f"~{self.macs_read_per_get:.1f} MACs verified, "
            f"~{self.est_get_cycles:,.0f} cycles",
        ]
        return "\n".join(lines)


def plan(
    num_pairs: int,
    key_size: int = 16,
    val_size: int = 512,
    num_buckets: Optional[int] = None,
    num_mac_hashes: Optional[int] = None,
    mac_bucket_capacity: int = 30,
    key_hints: bool = True,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> CapacityPlan:
    """Size a deployment; auto-chooses structure counts when omitted.

    Auto-sizing follows the paper's defaults: buckets ~= 0.8x the pair
    count (chain ~1.25), and as many MAC hashes as fit in half the
    effective EPC, capped at the bucket count.
    """
    if num_pairs <= 0:
        raise ValueError("num_pairs must be positive")
    if num_buckets is None:
        num_buckets = max(1, int(num_pairs * 0.8))
    if num_mac_hashes is None:
        by_epc = cost.epc_effective_bytes // 2 // HASH_SIZE
        num_mac_hashes = max(1, min(num_buckets, by_epc))
    num_mac_hashes = min(num_mac_hashes, num_buckets)

    chain = num_pairs / num_buckets
    buckets_per_set = -(-num_buckets // num_mac_hashes)
    enclave_bytes = num_mac_hashes * HASH_SIZE
    entry_bytes = num_pairs * entry_total_size(key_size, val_size)
    mac_nodes = num_buckets  # one node per non-empty bucket, approx.
    index_bytes = num_buckets * SLOT_SIZE + mac_nodes * (
        NODE_HEADER + mac_bucket_capacity * 16
    )
    epc_budget = cost.epc_effective_bytes
    fits = enclave_bytes <= epc_budget

    # Expected decryptions to find a key mid-chain (paper §5.4): with
    # hints only 1 + collisions/256 candidates decrypt; without, half
    # the chain on average.
    if key_hints:
        decrypts = 1.0 + max(0.0, chain - 1.0) / 256.0
    else:
        decrypts = max(1.0, (chain + 1.0) / 2.0)
    macs_per_get = chain * buckets_per_set

    kv = key_size + val_size
    est = (
        cost.op_dispatch_cycles
        + 2 * cost.keyed_hash_cycles
        + cost.mem_cycles(SLOT_SIZE, False, False)          # bucket slot
        + chain * cost.mem_cycles(33, False, False)          # headers
        + decrypts * (cost.mem_cycles(kv, False, False) + cost.aes_cycles(kv))
        + cost.cmac_cycles(kv + 25)                          # entry verify
        + cost.mem_cycles(int(16 * macs_per_get) + NODE_HEADER, False, False)
        + cost.cmac_cycles(int(16 * macs_per_get))           # set hash
        + cost.mem_cycles(HASH_SIZE, False, True)            # stored hash
        + cost.mem_cycles(val_size, True, True)              # response copy
    )
    if not fits:
        # Every get touches the overflowing MAC array: charge the
        # expected paging cost (Fig. 15's collapse).
        miss_probability = 1.0 - epc_budget / enclave_bytes
        est += miss_probability * cost.page_fault_read_cycles

    return CapacityPlan(
        num_pairs=num_pairs,
        key_size=key_size,
        val_size=val_size,
        num_buckets=num_buckets,
        num_mac_hashes=num_mac_hashes,
        avg_chain_length=chain,
        buckets_per_set=buckets_per_set,
        enclave_bytes=enclave_bytes,
        untrusted_entry_bytes=entry_bytes,
        untrusted_index_bytes=index_bytes,
        epc_budget_bytes=epc_budget,
        epc_utilization=enclave_bytes / epc_budget,
        fits_epc=fits,
        expected_decryptions_per_get=decrypts,
        macs_read_per_get=macs_per_get,
        est_get_cycles=est,
    )
