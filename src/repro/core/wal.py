"""Sealed per-partition write-ahead log (recovery = snapshot + replay).

Periodic checkpoints alone lose every mutation since the last snapshot
when a partition dies (`worker_ops_lost` counts the damage).  This
module closes that window: every mutating operation appends one sealed
frame *before* it is applied, so an acknowledged write is always either
in the latest checkpoint or replayable from the log tail.

Segment files and keys
----------------------
The log is a chain of segments, one per snapshot incarnation::

    wal-<partition:04d>-<counter:012d>.log

Each segment is keyed to the monotonic snapshot counter it starts at::

    log_key = derive_key(master, f"shieldstore/wal/{partition}/{counter}", 32)
    enc_key = derive_key(log_key, "wal/enc")
    mac_key = derive_key(log_key, "wal/mac")

so a segment recorded under an older incarnation (or for another
partition) simply fails authentication — the untrusted filesystem
cannot splice logs across incarnations or partitions.

Frame layout
------------
Length-prefixed sealed frames, reusing the ``net/message`` request
codec for the payload::

    u32 body_len | u64 seq | u8 kind | u64 epoch | ciphertext | mac(16)

The MAC binds ``(partition, counter, seq, kind, epoch, ciphertext)``
and the sequence number is strictly sequential from 0 within a segment,
so the host cannot replay, reorder, drop, or truncate-and-extend
frames.  ``epoch`` is a random per-process-incarnation value mixed into
each frame's IV: recovery truncates a torn tail and the next
incarnation re-appends *the same sequence number* to the same segment
(same key), which without the epoch would reuse the (key, IV) pair of
the torn frame the crashed process already encrypted.  Kinds:

* ``KIND_OP`` (1) — payload is one encoded mutating request;
* ``KIND_TRUNCATE`` (2) — payload is the u64 counter of the *next*
  segment.  Sealed by :meth:`WriteAheadLog.rotate` when a checkpoint
  captures the partition, it is the handshake that says "everything
  before this point is inside snapshot ``next_counter``".  It must be
  the final frame of its segment.

Torn tail vs tamper
-------------------
Each frame is written with a single unbuffered ``write()`` *before* the
operation is applied or acknowledged, so a partial frame at EOF can
only be the last append of a crashed process — an operation that was
never acknowledged.  Recovery therefore distinguishes:

* **clean torn tail** — the final frame's length prefix or body
  overruns EOF: truncate the file back to the last complete frame,
  count ``wal_torn_truncated``, and continue;
* **authentication failure** — a *complete* frame with a bad MAC, a
  sequence gap, or frames after a truncation record: raise
  :class:`~repro.errors.SnapshotError`; the host tampered.

Group commit
------------
``fsync`` is batched behind a small commit window (``sync_ms``): an
append only syncs when the window has elapsed since the last sync.
Process crashes (SIGKILL) lose nothing that ``write()`` returned for —
the page cache survives the process — so the window only bounds loss
across *power* failure, which is the paper's §4.4 posture too.
"""

from __future__ import annotations

import glob
import os
import struct
import time
from typing import Callable, Iterable, Optional

from repro.crypto.keys import derive_key
from repro.crypto.suite import MAC_SIZE, make_suite
from repro.errors import SnapshotError
from repro.net.message import Request, decode_request, encode_request
from repro.sim import faults

KIND_OP = 1
KIND_TRUNCATE = 2

DEFAULT_SYNC_MS = 2.0

_LEN = struct.Struct("<I")
_SEQ_KIND_EPOCH = struct.Struct("<QBQ")
_U64 = struct.Struct("<Q")
_AD = struct.Struct("<IQQBQ")  # partition, counter, seq, kind, epoch
_HEADER_SIZE = _SEQ_KIND_EPOCH.size
_MIN_BODY = _HEADER_SIZE + MAC_SIZE
_MAX_BODY = 1 << 26  # sanity bound against hostile length prefixes


def fsync_directory(path: str) -> None:
    """fsync a directory so renames/creates/unlinks inside it are durable.

    A checkpoint's ``os.replace`` and a WAL segment's creation only
    survive power loss once the *directory* entry is on disk.  Platforms
    whose directories cannot be opened or synced (some network
    filesystems) are tolerated silently — there is no portable fallback.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def segment_path(directory: str, partition: int, counter: int) -> str:
    """Filename of one partition's segment for one snapshot counter."""
    return os.path.join(directory, f"wal-{partition:04d}-{counter:012d}.log")


def apply_request(store, request: Request) -> None:
    """Re-apply one logged mutating request to ``store`` during replay.

    Mirrors the mutating arm of ``net.server.execute_request``.  Ops
    that failed deterministically the first time (delete of an absent
    key, increment of a non-integer) fail identically here and are
    tolerated — the frame was appended before the failure surfaced.
    """
    from repro.errors import KeyNotFoundError, StoreError
    from repro.net.message import (
        decode_cas_value,
        decode_multi_items,
        decode_multi_keys,
    )

    op = request.op
    try:
        if op == "set":
            store.set(request.key, request.value)
        elif op == "delete":
            store.delete(request.key)
        elif op == "append":
            store.append(request.key, request.value)
        elif op == "increment":
            store.increment(request.key, int(request.value.decode("ascii")))
        elif op == "cas":
            expected, new_value = decode_cas_value(request.value)
            store.compare_and_swap(request.key, expected, new_value)
        elif op == "mset":
            store.multi_set(decode_multi_items(request.value))
        elif op == "mdelete":
            store.multi_delete(decode_multi_keys(request.value))
        else:
            raise SnapshotError(f"non-mutating op {op!r} in WAL frame")
    except (KeyNotFoundError, ValueError):
        pass  # deterministic first-run miss: frame preceded the failure
    except StoreError as exc:
        if type(exc) is not StoreError:
            raise  # Worker/Snapshot subclasses are real replay failures
        # e.g. increment over a non-integer value: failed originally too.


class WriteAheadLog:
    """One partition's sealed log: append-before-apply, rotate-on-checkpoint.

    Create via :meth:`recover`, which replays any existing chain and
    returns a log positioned at the chain tail; a fresh deployment with
    no segments starts at ``(counter, seq 0)`` with the file created
    lazily on first append.
    """

    def __init__(
        self,
        directory: str,
        partition: int,
        master: bytes,
        suite_name: str,
        counter: int,
        sync_ms: float = DEFAULT_SYNC_MS,
        stats=None,
    ):
        self.directory = directory
        self.partition = partition
        self.suite_name = suite_name
        self.counter = counter
        self.sync_ms = sync_ms
        self.stats = stats
        self.replayed = 0
        self._master = bytes(master)
        self._suite = self._suite_for(counter)
        self._seq = 0
        # Per-incarnation frame epoch (entropy, NOT the seeded machine
        # RNG): appended frames get IV = (seq, epoch), so re-appending a
        # sequence number after a torn-tail truncation — same segment,
        # same key — still takes a fresh keystream span.
        self._epoch = int.from_bytes(os.urandom(8), "big")
        self._fh = None
        self._dirty = False
        self._last_sync = time.monotonic()
        os.makedirs(directory, exist_ok=True)

    # -- sealing -------------------------------------------------------------
    def _suite_for(self, counter: int):
        log_key = derive_key(
            self._master,
            f"shieldstore/wal/{self.partition}/{counter}",
            32,
        )
        return make_suite(
            self.suite_name,
            derive_key(log_key, "wal/enc"),
            derive_key(log_key, "wal/mac"),
        )

    @staticmethod
    def _iv(seq: int, epoch: int) -> bytes:
        return struct.pack("<QQ", seq, epoch)

    def _seal_frame(self, kind: int, payload: bytes) -> bytes:
        seq, epoch = self._seq, self._epoch
        ciphertext = self._suite.encrypt(self._iv(seq, epoch), payload)
        tag = self._suite.mac(
            _AD.pack(self.partition, self.counter, seq, kind, epoch)
            + ciphertext
        )
        body = _SEQ_KIND_EPOCH.pack(seq, kind, epoch) + ciphertext + tag
        return _LEN.pack(len(body)) + body

    # -- the write path ------------------------------------------------------
    def _ensure_open(self):
        if self._fh is None:
            # Unbuffered: one write() per frame, so a crashed process
            # leaves at most one torn frame — and only at EOF.
            self._fh = open(  # noqa: SIM115 - handle outlives the scope
                segment_path(self.directory, self.partition, self.counter),
                "ab",
                buffering=0,
            )
        return self._fh

    def append(self, request: Request) -> None:
        """Seal one mutating request into the log (called before apply)."""
        frame = self._seal_frame(KIND_OP, encode_request(request))
        fh = self._ensure_open()
        hit = faults.check(
            "wal.append", frame, on_crash=lambda: self._crash_append(frame)
        )
        if hit is not None:
            if hit.kind == "drop":
                return  # host swallowed the write; recovery will show it
            if hit.kind == "tamper" and hit.payload is not None:
                frame = hit.payload
        fh.write(frame)
        self._seq += 1
        self._dirty = True
        if self.stats is not None:
            self.stats.wal_appends += 1
        if self.sync_ms <= 0:
            self.sync()
        elif time.monotonic() - self._last_sync >= self.sync_ms / 1000.0:
            self.sync()

    def _crash_append(self, frame: bytes) -> None:
        """Injected crash mid-append: half a frame reaches the file."""
        self._ensure_open().write(frame[: max(1, len(frame) // 2)])
        raise OSError("injected crash during WAL append")

    def sync(self) -> None:
        """Group-commit fsync: flush everything appended so far."""
        if self._fh is None or not self._dirty:
            self._last_sync = time.monotonic()
            return
        faults.check("wal.fsync")
        os.fsync(self._fh.fileno())
        self._dirty = False
        self._last_sync = time.monotonic()
        if self.stats is not None:
            self.stats.wal_fsyncs += 1

    def rotate(self, new_counter: int) -> None:
        """Seal a truncation record and start a fresh segment.

        Called inside the checkpoint's locked capture region: the new
        segment is keyed to the snapshot counter being captured, so the
        chain handshake (old segment's truncation record -> new
        segment) exactly brackets the snapshot's contents.
        """
        if new_counter <= self.counter:
            raise SnapshotError(
                f"WAL rotation counter must advance "
                f"({self.counter} -> {new_counter})"
            )
        frame = self._seal_frame(KIND_TRUNCATE, _U64.pack(new_counter))
        fh = self._ensure_open()
        fh.write(frame)
        self._dirty = True
        self.sync()
        fh.close()
        self._fh = None
        self.counter = new_counter
        self._suite = self._suite_for(new_counter)
        self._seq = 0
        # Create the new segment eagerly so the chain never dangles
        # past a sealed truncation record, then make both directory
        # entries durable.
        self._ensure_open()
        fsync_directory(self.directory)
        if self.stats is not None:
            self.stats.wal_rotations += 1

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    # -- recovery ------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str,
        partition: int,
        master: bytes,
        suite_name: str,
        counter: int,
        apply: Optional[Callable[[Request], None]] = None,
        stats=None,
        sync_ms: float = DEFAULT_SYNC_MS,
    ) -> "WriteAheadLog":
        """Replay the segment chain from ``counter``; return the tail log.

        ``apply`` receives each logged request in order (attach it to a
        store restored from the snapshot that ``counter`` names).  Torn
        final frames are truncated away; any complete-but-unauthentic
        frame raises :class:`SnapshotError`.
        """
        wal = cls(
            directory, partition, master, suite_name, counter,
            sync_ms=sync_ms, stats=stats,
        )
        while True:
            path = segment_path(directory, partition, wal.counter)
            if not os.path.exists(path):
                return wal  # fresh incarnation: lazy-create on append
            with open(path, "rb") as fh:
                data = fh.read()
            hit = faults.check("wal.replay", data)
            if hit is not None:
                if hit.kind == "drop":
                    return wal  # host hid the segment: treat as absent
                if hit.kind == "tamper" and hit.payload is not None:
                    data = hit.payload
            next_counter, good_offset, seq = wal._replay_segment(data, apply)
            if good_offset < len(data):
                # Clean torn tail: give the file back its last complete
                # frame boundary so future appends extend a valid chain.
                with open(path, "r+b") as fh:
                    fh.truncate(good_offset)
                    fh.flush()
                    os.fsync(fh.fileno())
                if stats is not None:
                    stats.wal_torn_truncated += 1
            if next_counter is None:
                wal._seq = seq
                return wal
            wal.counter = next_counter
            wal._suite = wal._suite_for(next_counter)
            wal._seq = 0

    def _replay_segment(self, data: bytes, apply):
        """Authenticate + replay one segment's frames.

        Returns ``(next_counter or None, last_good_offset, next_seq)``.
        """
        offset, seq = 0, 0
        next_counter = None
        while True:
            if offset + _LEN.size > len(data):
                return next_counter, offset, seq  # torn length prefix
            (body_len,) = _LEN.unpack_from(data, offset)
            if body_len < _MIN_BODY or body_len > _MAX_BODY:
                raise SnapshotError(
                    f"WAL segment {self.counter} of partition "
                    f"{self.partition}: frame at offset {offset} has "
                    f"implausible length {body_len} (host corruption)"
                )
            end = offset + _LEN.size + body_len
            if end > len(data):
                return next_counter, offset, seq  # torn frame body
            body = data[offset + _LEN.size : end]
            frame_seq, kind, epoch = _SEQ_KIND_EPOCH.unpack_from(body, 0)
            ciphertext = body[_HEADER_SIZE:-MAC_SIZE]
            tag = body[-MAC_SIZE:]
            if next_counter is not None:
                raise SnapshotError(
                    f"WAL segment {self.counter} of partition "
                    f"{self.partition} has frames after its truncation "
                    "record (spliced log)"
                )
            if frame_seq != seq or not self._suite.verify(
                _AD.pack(self.partition, self.counter, frame_seq, kind, epoch)
                + ciphertext,
                tag,
            ):
                raise SnapshotError(
                    f"WAL segment {self.counter} of partition "
                    f"{self.partition}: frame {seq} failed authentication "
                    "(tampered, reordered, or wrong incarnation)"
                )
            payload = self._suite.decrypt(self._iv(frame_seq, epoch), ciphertext)
            if kind == KIND_TRUNCATE:
                (candidate,) = _U64.unpack(payload)
                if candidate <= self.counter:
                    # shieldlint: ignore[trust-boundary] -- an authenticated snapshot counter from the truncation record, not client key/value plaintext
                    raise SnapshotError(
                        f"WAL truncation record in segment {self.counter} "
                        f"names non-advancing counter {candidate}"
                    )
                next_counter = candidate
            elif kind == KIND_OP:
                if apply is not None:
                    apply(decode_request(payload))
                self.replayed += 1
                if self.stats is not None:
                    self.stats.wal_replayed += 1
            else:
                raise SnapshotError(f"unknown WAL frame kind {kind}")
            seq += 1
            offset = end

    # -- housekeeping --------------------------------------------------------
    @staticmethod
    def retire(directory: str, below: int,
               partitions: Optional[Iterable[int]] = None) -> int:
        """Delete segments older than snapshot counter ``below``.

        Only call once the checkpoint at ``below`` is durably on disk —
        those segments' contents are then contained in the snapshot.
        Returns the number of files removed.
        """
        removed = 0
        for path in glob.glob(os.path.join(directory, "wal-*.log")):
            name = os.path.basename(path)
            try:
                part_s, counter_s = name[4:-4].split("-")
                part, counter = int(part_s), int(counter_s)
            except ValueError:
                continue  # not one of ours
            if partitions is not None and part not in set(partitions):
                continue
            if counter < below:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        if removed:
            fsync_directory(directory)
        return removed
