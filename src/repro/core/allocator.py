"""Untrusted-memory allocators used by the enclave (paper §5.1).

Two implementations share one interface:

* :class:`OcallAllocator` — the unoptimized path: every allocation exits
  the enclave (OCALL + mmap/sbrk syscall) to call the host allocator.
  This is what ShieldBase uses and what Figure 6/14 improve on.
* :class:`ExtraHeapAllocator` — the paper's custom tcmalloc-derived
  allocator: runs *inside* the enclave, carves allocations out of large
  untrusted chunks obtained with one OCALL per chunk (default 16 MB),
  and recycles freed blocks through size-class free lists whose metadata
  stays in enclave memory (§7 notes a traditional heap would leave that
  metadata corruptible in untrusted memory — we implement the hardened
  variant the paper assumes).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AllocationError
from repro.sim.enclave import Enclave, ExecContext

_ALIGN = 16


def _size_class(size: int) -> int:
    """Round a request up to the allocator's 16-byte granularity."""
    return (size + _ALIGN - 1) & ~(_ALIGN - 1)


class OcallAllocator:
    """Host allocator reached by an enclave exit for every request."""

    name = "ocall"

    def __init__(self, enclave: Enclave):
        self._enclave = enclave
        self.ocalls = 0
        self.requests = 0
        self.bytes_live = 0

    def alloc(self, ctx: ExecContext, size: int) -> int:
        """OCALL out, run the host malloc, return an untrusted address."""
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        ctx.ocall(syscall=True)
        self.ocalls += 1
        self.requests += 1
        self.bytes_live += size
        return self._enclave.alloc_untrusted(size)

    def free(self, ctx: ExecContext, addr: int, size: int) -> None:
        """OCALL out to free (the host needs to run)."""
        ctx.ocall(syscall=True)
        self.ocalls += 1
        self.bytes_live -= size
        self._enclave.machine.memory.free(addr)


class ExtraHeapAllocator:
    """In-enclave allocator over OCALL-acquired untrusted chunks."""

    name = "extra-heap"

    def __init__(self, enclave: Enclave, chunk_bytes: int):
        if chunk_bytes < 4096:
            raise AllocationError("chunk size must be at least one page")
        self._enclave = enclave
        self.chunk_bytes = chunk_bytes
        self._chunk_base = 0
        self._chunk_used = chunk_bytes  # force a chunk fetch on first alloc
        # Free lists keyed by size class; metadata lives in enclave memory
        # (plain Python state here — the enclave-resident hardening of §7).
        self._free: Dict[int, List[int]] = {}
        self.ocalls = 0
        self.requests = 0
        self.bytes_live = 0
        self.bytes_reserved = 0
        self.chunks: List[int] = []

    def _fetch_chunk(self, ctx: ExecContext, at_least: int) -> None:
        size = max(self.chunk_bytes, _size_class(at_least))
        ctx.ocall(syscall=True)  # sbrk/mmap for a fresh chunk
        self.ocalls += 1
        self._chunk_base = self._enclave.alloc_untrusted(size)
        self._chunk_used = 0
        self._chunk_size = size
        self.bytes_reserved += size
        self.chunks.append(self._chunk_base)

    def alloc(self, ctx: ExecContext, size: int) -> int:
        """Hand out untrusted memory without leaving the enclave."""
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        ctx.charge(ctx.machine.cost.malloc_cycles)
        self.requests += 1
        self.bytes_live += size
        klass = _size_class(size)
        bucket = self._free.get(klass)
        if bucket:
            return bucket.pop()
        if self._chunk_used + klass > getattr(self, "_chunk_size", self.chunk_bytes):
            self._fetch_chunk(ctx, klass)
        addr = self._chunk_base + self._chunk_used
        self._chunk_used += klass
        return addr

    def free(self, ctx: ExecContext, addr: int, size: int) -> None:
        """Return a block to its size-class free list (no enclave exit)."""
        ctx.charge(ctx.machine.cost.malloc_cycles)
        self.bytes_live -= size
        self._free.setdefault(_size_class(size), []).append(addr)

    @property
    def internal_fragmentation(self) -> float:
        """Reserved-but-unused fraction of the chunks fetched so far."""
        if self.bytes_reserved == 0:
            return 0.0
        return 1.0 - (self.bytes_live / self.bytes_reserved)


def make_allocator(enclave: Enclave, use_extra_heap: bool, chunk_bytes: int):
    """Build the allocator a :class:`StoreConfig` asks for."""
    if use_extra_heap:
        return ExtraHeapAllocator(enclave, chunk_bytes)
    return OcallAllocator(enclave)
