"""Data-entry codec: the byte layout of Figure 5.

Each key-value pair lives in untrusted memory as one contiguous record::

    offset  size  field       protection
    0       8     next_ptr    plaintext (untrusted chain metadata, §7)
    8       1     key_hint    plaintext keyed hash of the key (§5.4)
    9       4     key_size    plaintext (per Fig. 5)
    13      4     val_size    plaintext
    17      16    iv_ctr      plaintext combined IV/counter (§4.2)
    33      k+v   enc_kv      AES-CTR ciphertext of key || value
    33+k+v  16    mac         CMAC binding enc_kv, sizes, hint, iv_ctr

The MAC input follows §4.2 exactly: "encrypted key/value, key/value
sizes, key-index, and IV/counter".  The ``next_ptr`` is deliberately NOT
covered — it is availability-only metadata an attacker may corrupt
without compromising confidentiality or integrity (§7); relocating an
entry to another bucket is caught by the bucket-set MAC hashes instead.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import StoreError

PTR_SIZE = 8
HEADER_SIZE = 33
MAC_SIZE = 16
IV_SIZE = 16
NULL_PTR = 0

# Record offset of a byte guaranteed to sit inside ``enc_kv`` for any
# key of >= 3 bytes.  Tamper probes (tests, demos, the worker OP_TAMPER
# frame) flip a bit here to prove integrity detection; deriving it from
# the layout keeps the probes on ciphertext if the header ever changes.
TAMPER_PROBE_OFFSET = HEADER_SIZE + 2

_HEADER_FMT = "<QBII16s"
assert struct.calcsize(_HEADER_FMT) == HEADER_SIZE


@dataclass
class EntryHeader:
    """Parsed plaintext header of one data entry."""

    next_ptr: int
    key_hint: int
    key_size: int
    val_size: int
    iv_ctr: bytes

    @property
    def kv_size(self) -> int:
        return self.key_size + self.val_size

    @property
    def total_size(self) -> int:
        return HEADER_SIZE + self.kv_size + MAC_SIZE


def entry_total_size(key_size: int, val_size: int) -> int:
    """Bytes one entry occupies in untrusted memory."""
    return HEADER_SIZE + key_size + val_size + MAC_SIZE


def pack_header(header: EntryHeader) -> bytes:
    """Serialize a header to its 33-byte wire form."""
    if not 0 <= header.key_hint <= 0xFF:
        raise StoreError("key hint must fit one byte")
    if len(header.iv_ctr) != IV_SIZE:
        raise StoreError(f"IV/counter must be {IV_SIZE} bytes")
    return struct.pack(
        _HEADER_FMT,
        header.next_ptr,
        header.key_hint,
        header.key_size,
        header.val_size,
        header.iv_ctr,
    )


def unpack_header(raw: bytes) -> EntryHeader:
    """Parse 33 header bytes read from untrusted memory."""
    if len(raw) != HEADER_SIZE:
        raise StoreError(f"header must be {HEADER_SIZE} bytes, got {len(raw)}")
    next_ptr, hint, key_size, val_size, iv_ctr = struct.unpack(_HEADER_FMT, raw)
    return EntryHeader(next_ptr, hint, key_size, val_size, iv_ctr)


def mac_message(header: EntryHeader, enc_kv: bytes) -> bytes:
    """The exact byte string the entry MAC authenticates (§4.2)."""
    return (
        enc_kv
        + struct.pack("<II", header.key_size, header.val_size)
        + bytes([header.key_hint])
        + header.iv_ctr
    )


def mac_offset(header: EntryHeader) -> int:
    """Offset of the MAC field within the entry record."""
    return HEADER_SIZE + header.kv_size
