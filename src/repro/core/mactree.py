"""Flattened Merkle structure: in-enclave bucket-set MAC hashes (§4.3).

Instead of one tall Merkle tree over millions of volatile key-value
pairs, ShieldStore keeps ``num_mac_hashes`` independent 128-bit keyed
hashes inside the enclave.  Hash *s* authenticates the concatenation of
all entry MACs in its *bucket set* — the buckets ``{b : b mod M = s}``.
Because the hashes live in EPC-backed memory they are confidential and
tamper-proof; replaying a stale entry in untrusted memory changes the
recomputed set hash and is detected.

The array is a real enclave allocation, so a paper-scale 8M-hash
configuration (128 MB) genuinely overflows the EPC and starts paging —
reproducing Figure 15's cliff.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.crypto.suite import CipherSuite
from repro.errors import ReplayError
from repro.sim.enclave import Enclave, ExecContext

HASH_SIZE = 16
_EMPTY = bytes(HASH_SIZE)  # "no entries yet" marker (enclave-private)


class MacTree:
    """The enclave-resident array of bucket-set MAC hashes."""

    def __init__(self, enclave: Enclave, num_hashes: int, num_buckets: int):
        if num_hashes <= 0 or num_hashes > num_buckets:
            raise ValueError("need 0 < num_hashes <= num_buckets")
        self._enclave = enclave
        self._memory = enclave.machine.memory
        self.num_hashes = num_hashes
        self.num_buckets = num_buckets
        self.base = enclave.alloc(num_hashes * HASH_SIZE)

    # -- set geometry -----------------------------------------------------
    def set_of(self, bucket: int) -> int:
        """Which MAC hash covers ``bucket``."""
        return bucket % self.num_hashes

    def buckets_of(self, set_id: int) -> Iterable[int]:
        """All buckets covered by MAC hash ``set_id`` (ascending)."""
        return range(set_id, self.num_buckets, self.num_hashes)

    @property
    def buckets_per_set(self) -> int:
        """Maximum bucket-set size (1 when num_hashes == num_buckets)."""
        return -(-self.num_buckets // self.num_hashes)

    # -- hash storage (EPC-charged) ------------------------------------------
    def read_hash(self, ctx: ExecContext, set_id: int) -> bytes:
        """Read the stored hash of a set (enclave memory access)."""
        return self._memory.read(ctx, self.base + set_id * HASH_SIZE, HASH_SIZE)

    def write_hash(self, ctx: ExecContext, set_id: int, digest: bytes) -> None:
        """Store a recomputed set hash."""
        self._memory.write(ctx, self.base + set_id * HASH_SIZE, digest)

    # -- verification ---------------------------------------------------------
    @staticmethod
    def compute(ctx: ExecContext, suite: CipherSuite, macs: List[bytes]) -> bytes:
        """Keyed hash over the set's entry MACs, in canonical order."""
        message = b"".join(macs)
        ctx.charge_cmac(len(message))
        return suite.mac(message) if macs else _EMPTY

    def verify_set(
        self, ctx: ExecContext, suite: CipherSuite, set_id: int, macs: List[bytes]
    ) -> None:
        """Raise :class:`ReplayError` when the set hash does not match."""
        stored = self.read_hash(ctx, set_id)
        computed = self.compute(ctx, suite, macs)
        if stored != computed:
            raise ReplayError(
                f"bucket-set hash mismatch for set {set_id}: untrusted entries "
                "were replayed, reordered, or tampered with"
            )

    def update_set(
        self, ctx: ExecContext, suite: CipherSuite, set_id: int, macs: List[bytes]
    ) -> None:
        """Recompute and store the set hash after a mutation."""
        self.write_hash(ctx, set_id, self.compute(ctx, suite, macs))

    # -- sealing support ---------------------------------------------------
    def dump(self) -> bytes:
        """Raw hash-array bytes (for sealing into a snapshot)."""
        return self._memory.raw_read(self.base, self.num_hashes * HASH_SIZE)

    def load(self, blob: bytes) -> None:
        """Restore hash-array bytes unsealed from a snapshot."""
        if len(blob) != self.num_hashes * HASH_SIZE:
            raise ValueError("MAC tree blob has wrong size")
        self._memory.raw_write(self.base, blob)
