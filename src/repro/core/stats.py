"""Operation-level statistics a store accumulates.

These complement the machine-level :class:`~repro.sim.cycles.CycleCounters`
(memory events, crypto calls) with store semantics: hits/misses, chain
walk lengths, search-path decryptions (Fig. 9), allocator OCALLs
(Fig. 6) and snapshot activity (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, FrozenSet


@dataclass
class StoreStats:
    """Counters for one store (or one partition of a partitioned store)."""

    gets: int = 0
    sets: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    appends: int = 0
    increments: int = 0
    hits: int = 0
    misses: int = 0
    chain_steps: int = 0
    search_decryptions: int = 0
    hint_skips: int = 0
    full_searches: int = 0          # two-step fallbacks taken
    integrity_checks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Enclave-resident verified-MAC cache (repro.core.maccache):
    mac_cache_hits: int = 0         # ops verified against the cached lists
    mac_cache_misses: int = 0       # ops that fell back to full §4.3 verify
    mac_cache_evictions: int = 0    # sets evicted at the byte budget
    # Per-op wall-clock stage attribution (seconds, host time — not the
    # simulated clocks): chain walk + candidate decryption, per-entry
    # MAC authentication, and covering-set gathering/verification (the
    # stage the MAC cache removes).
    stage_walk_s: float = 0.0
    stage_crypto_s: float = 0.0
    stage_verify_s: float = 0.0
    alloc_ocalls: int = 0
    alloc_requests: int = 0
    snapshots: int = 0
    snapshot_stall_us: float = 0.0
    snapshot_failures: int = 0      # SnapshotDaemon run_once exceptions
    temp_table_merges: int = 0
    # Sealed write-ahead log (repro.core.wal):
    wal_appends: int = 0            # frames sealed before apply
    wal_fsyncs: int = 0             # group-commit syncs issued
    wal_rotations: int = 0          # truncation record + fresh segment
    wal_replayed: int = 0           # logged ops re-applied during recovery
    wal_torn_truncated: int = 0     # clean torn tails truncated at replay
    worker_recoveries: int = 0      # dead workers respawned + restored
    worker_ops_lost: int = 0        # upper bound on mutations lost to crashes
    # Transport resilience (TCP front-end + shieldfault plane):
    net_retries: int = 0            # client requests retried after a fault
    net_reconnects: int = 0         # sessions re-attested after a failure
    net_timeouts: int = 0           # request deadlines that expired
    tamper_drops: int = 0           # sessions dropped on unauthenticated records
    idempotent_replays: int = 0     # duplicate write tokens served from cache
    rejected_connections: int = 0   # accepts refused at the connection cap
    deadline_drops: int = 0         # connections dropped by the request deadline
    degraded_replies: int = 0       # STATUS_ERROR replies (serving degraded)
    faults_injected: int = 0        # shieldfault fires observed process-wide
    # Batch amortization (multi_get / multi_set / multi_delete):
    batches: int = 0                    # batch calls served
    batch_ops: int = 0                  # operations carried by batches
    batch_sets_verified: int = 0        # set hashes verified inside batches
    batch_verifications_saved: int = 0  # ops that reused an already-verified set
    batch_set_updates_saved: int = 0    # set-hash recomputes avoided by dirty tracking
    # Replication group (repro.ext.replication):
    replicated_out: int = 0         # records fanned out to peers (acked)
    replicated_in: int = 0          # remote records LWW-applied locally
    replication_conflicts: int = 0  # stale records rejected by (clock, origin)
    hints_queued: int = 0           # records hinted for a dead peer
    hints_delivered: int = 0        # hints replayed after a peer revived
    hints_dropped: int = 0          # oldest hints evicted at the queue cap
    sync_rounds: int = 0            # anti-entropy digest exchanges completed
    sync_sets_diverged: int = 0     # bucket sets whose logical digests differed
    sync_keys_repaired: int = 0     # records merged in during set exchanges
    read_repairs: int = 0           # stale replicas rewritten by quorum reads
    quorum_reads: int = 0           # reads satisfied at QUORUM
    quorum_writes: int = 0          # writes acked at the requested level
    quorum_failures: int = 0        # requests that missed their ack target

    # Host wall-clock accumulators: meaningful to report and to sum
    # across workers, but never reproducible run-to-run — equivalence
    # tests comparing stats across engines must exclude these.
    WALL_CLOCK_FIELDS: ClassVar[FrozenSet[str]] = frozenset(
        {"stage_walk_s", "stage_crypto_s", "stage_verify_s"}
    )

    def merge(self, other: "StoreStats") -> "StoreStats":
        """Sum counters across partitions; returns a new object."""
        result = StoreStats()
        for name in vars(result):
            setattr(result, name, getattr(self, name) + getattr(other, name))
        return result

    def snapshot_dict(self) -> dict:
        """Plain-dict view for reports."""
        return dict(vars(self))

    @classmethod
    def from_dict(cls, data: dict) -> "StoreStats":
        """Rebuild a stats object from :meth:`snapshot_dict` output.

        This is how counters cross the process boundary: partition
        worker processes ship their snapshot dict over the pipe and the
        parent reconstitutes it here before merging.  Unknown keys are
        ignored so a parent can read snapshots from slightly older or
        newer workers.
        """
        stats = cls()
        fields = vars(stats)
        for name, value in data.items():
            # vars(), not hasattr(): read-only properties such as
            # ``operations`` answer hasattr but reject setattr.
            if name in fields:
                setattr(stats, name, value)
        return stats

    @property
    def operations(self) -> int:
        """Total client-visible operations served."""
        return self.gets + self.sets + self.deletes + self.appends + self.increments


@dataclass
class TransportStats:
    """Data-plane counters: ring occupancy, doorbell traffic, shedding.

    Deliberately separate from :class:`StoreStats`: these describe the
    *transport* an engine happens to run on (shared-memory rings vs
    pipes, event-loop admission), not store semantics — keeping them
    out of the operation counters is what lets the mode-equivalence
    tests demand identical :class:`StoreStats` across engines.
    """

    # Shared-memory ring plane (repro.core.shmring):
    ring_frames: int = 0            # sealed frames moved through rings
    ring_bytes: int = 0             # prefix + payload bytes moved
    ring_full_waits: int = 0        # producer found a ring full
    ring_doorbell_waits: int = 0    # waits that armed the doorbell
    ring_doorbell_rings: int = 0    # doorbell bytes actually sent
    ring_max_occupancy: int = 0     # gauge: in-flight high-water mark (bytes)
    # Event-loop admission (repro.net.tcp):
    busy_sheds: int = 0             # sealed STATUS_BUSY replies shed
    busy_retries: int = 0           # client retries after STATUS_BUSY

    # Gauges keep their max under merge instead of summing.
    _GAUGES: ClassVar[FrozenSet[str]] = frozenset({"ring_max_occupancy"})

    def merge(self, other: "TransportStats") -> "TransportStats":
        """Combine counters across workers/planes; returns a new object."""
        result = TransportStats()
        for name in vars(result):
            a, b = getattr(self, name), getattr(other, name)
            setattr(result, name, max(a, b) if name in self._GAUGES else a + b)
        return result

    def snapshot_dict(self) -> dict:
        return dict(vars(self))

    @classmethod
    def from_dict(cls, data: dict) -> "TransportStats":
        stats = cls()
        fields = vars(stats)
        for name, value in data.items():
            if name in fields:
                setattr(stats, name, value)
        return stats
