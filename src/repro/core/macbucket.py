"""MAC buckets: contiguous per-bucket MAC arrays (paper §5.2).

Integrity verification needs *every* entry MAC in the bucket set, even
when the requested key sits at the head of the chain.  Without this
optimization the enclave pointer-chases the whole entry chain just to
collect 16-byte MAC fields.  A MAC bucket stores those MACs contiguously
next to each hash bucket, so the collection is one or two streaming
reads.

Node layout in untrusted memory::

    offset  size         field
    0       4            count (MACs used in this node)
    4       4            padding
    8       8            next_ptr (overflow node; 0 = none)
    16      capacity*16  MAC slots

Slot order equals chain order (slot 0 = chain head).  Nodes chain when a
bucket exceeds ``capacity`` (paper: 30 MACs per node).
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import StoreError
from repro.sim.enclave import Enclave, ExecContext

NODE_HEADER = 16
MAC_SIZE = 16


class MacBucketStore:
    """Allocator-backed manager for MAC-bucket node chains."""

    def __init__(self, enclave: Enclave, allocator, capacity: int):
        if capacity <= 0:
            raise StoreError("MAC bucket capacity must be positive")
        self._enclave = enclave
        self._memory = enclave.machine.memory
        self._allocator = allocator
        self.capacity = capacity
        self.node_size = NODE_HEADER + capacity * MAC_SIZE

    # -- node primitives ---------------------------------------------------
    def _read_node(self, ctx: ExecContext, addr: int):
        header = self._memory.read(ctx, addr, NODE_HEADER)
        count, _pad, next_ptr = struct.unpack("<IIQ", header)
        if count > self.capacity:
            # Untrusted metadata may lie; clamp so the enclave never
            # over-reads (availability attack, not integrity).
            count = self.capacity
        macs: List[bytes] = []
        if count:
            body = self._memory.read(ctx, addr + NODE_HEADER, count * MAC_SIZE)
            macs = [body[i * MAC_SIZE : (i + 1) * MAC_SIZE] for i in range(count)]
        return macs, next_ptr

    def _write_node(self, ctx: ExecContext, addr: int, macs: List[bytes], next_ptr: int) -> None:
        if len(macs) > self.capacity:
            raise StoreError("node overflow: caller must split across nodes")
        raw = struct.pack("<IIQ", len(macs), 0, next_ptr) + b"".join(macs)
        self._memory.write(ctx, addr, raw)

    # -- chain-level API -----------------------------------------------------
    def read_all(self, ctx: ExecContext, head: int) -> List[bytes]:
        """All MACs of a bucket, chain order, following overflow nodes."""
        macs: List[bytes] = []
        addr = head
        hops = 0
        while addr:
            node_macs, addr = self._read_node(ctx, addr)
            macs.extend(node_macs)
            hops += 1
            if hops > 1_000_000:
                raise StoreError("MAC bucket chain cycle (corrupted metadata)")
        return macs

    def write_all(self, ctx: ExecContext, head: int, macs: List[bytes]) -> int:
        """Rewrite a bucket's MAC list; returns the (possibly new) head.

        Allocates/frees overflow nodes as the list grows or shrinks.
        """
        chunks = [
            macs[i : i + self.capacity] for i in range(0, len(macs), self.capacity)
        ] or [[]]
        # Collect existing nodes.
        nodes: List[int] = []
        addr = head
        while addr:
            nodes.append(addr)
            _macs, addr = self._read_node(ctx, addr)
        # Grow or shrink the node chain to match.
        while len(nodes) < len(chunks):
            nodes.append(self._allocator.alloc(ctx, self.node_size))
        while len(nodes) > len(chunks):
            victim = nodes.pop()
            self._allocator.free(ctx, victim, self.node_size)
        for i, chunk in enumerate(chunks):
            next_ptr = nodes[i + 1] if i + 1 < len(chunks) else 0
            self._write_node(ctx, nodes[i], chunk, next_ptr)
        return nodes[0] if chunks[0] or len(chunks) > 1 else nodes[0]

    # -- convenience mutations (read-modify-write) ----------------------------
    def insert_front(self, ctx: ExecContext, head: int, mac: bytes) -> int:
        """Prepend a MAC (new chain head was inserted); returns new head."""
        if head == 0:
            addr = self._allocator.alloc(ctx, self.node_size)
            self._write_node(ctx, addr, [bytes(mac)], 0)
            return addr
        macs = self.read_all(ctx, head)
        macs.insert(0, bytes(mac))
        return self.write_all(ctx, head, macs)

    def replace(self, ctx: ExecContext, head: int, index: int, mac: bytes) -> None:
        """Overwrite the MAC at chain position ``index`` in place."""
        addr = head
        while addr:
            node_macs, next_ptr = self._read_node(ctx, addr)
            if index < len(node_macs):
                offset = NODE_HEADER + index * MAC_SIZE
                self._memory.write(ctx, addr + offset, bytes(mac))
                return
            index -= len(node_macs)
            addr = next_ptr
        raise StoreError(f"MAC bucket index {index} out of range")

    def remove(self, ctx: ExecContext, head: int, index: int) -> int:
        """Delete the MAC at chain position ``index``; returns new head."""
        macs = self.read_all(ctx, head)
        if not 0 <= index < len(macs):
            raise StoreError(f"MAC bucket index {index} out of range")
        del macs[index]
        if not macs:
            self._allocator.free(ctx, head, self.node_size)
            return 0
        return self.write_all(ctx, head, macs)
