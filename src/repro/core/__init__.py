"""ShieldStore core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.store.ShieldStore` — single-partition store.
* :class:`~repro.core.partition.PartitionedShieldStore` — §5.3
  hash-partitioned multi-threaded store.
* :class:`~repro.core.config.StoreConfig` with the
  :func:`~repro.core.config.shield_base` / :func:`~repro.core.config.shield_opt`
  paper variants.
* :class:`~repro.core.persistence.Snapshotter` /
  :class:`~repro.core.persistence.SnapshotScheduler` — §4.4 persistence.
"""

from repro.core.allocator import ExtraHeapAllocator, OcallAllocator, make_allocator
from repro.core.cache import EnclaveCache
from repro.core.config import StoreConfig, shield_base, shield_opt
from repro.core.entry import (
    HEADER_SIZE,
    MAC_SIZE,
    EntryHeader,
    entry_total_size,
    mac_message,
    pack_header,
    unpack_header,
)
from repro.core.hashindex import BucketTable
from repro.core.macbucket import MacBucketStore
from repro.core.maccache import MacSetCache
from repro.core.mactree import MacTree
from repro.core.partition import (
    MODE_PROCESSES,
    MODE_SEQUENTIAL,
    MODE_THREADS,
    PartitionedShieldStore,
)
from repro.core.planner import CapacityPlan, plan
from repro.core.procpool import ProcessPartitionPool, process_mode_supported
from repro.core.persistence import (
    MODE_NAIVE,
    MODE_NONE,
    MODE_OPTIMIZED,
    PartitionSnapshotter,
    SnapshotPolicy,
    SnapshotScheduler,
    Snapshotter,
    default_platform_secret,
    snapshot_counter,
)
from repro.core.stats import StoreStats
from repro.core.store import DEFAULT_MEASUREMENT, FoundEntry, ShieldStore
from repro.core.wal import (
    DEFAULT_SYNC_MS,
    WriteAheadLog,
    apply_request,
    fsync_directory,
)

__all__ = [
    "BucketTable",
    "CapacityPlan",
    "DEFAULT_MEASUREMENT",
    "DEFAULT_SYNC_MS",
    "EnclaveCache",
    "EntryHeader",
    "ExtraHeapAllocator",
    "FoundEntry",
    "HEADER_SIZE",
    "MAC_SIZE",
    "MODE_NAIVE",
    "MODE_NONE",
    "MODE_OPTIMIZED",
    "MODE_PROCESSES",
    "MODE_SEQUENTIAL",
    "MODE_THREADS",
    "MacBucketStore",
    "MacSetCache",
    "MacTree",
    "OcallAllocator",
    "PartitionSnapshotter",
    "PartitionedShieldStore",
    "ProcessPartitionPool",
    "default_platform_secret",
    "process_mode_supported",
    "snapshot_counter",
    "ShieldStore",
    "SnapshotPolicy",
    "SnapshotScheduler",
    "Snapshotter",
    "StoreConfig",
    "StoreStats",
    "WriteAheadLog",
    "apply_request",
    "entry_total_size",
    "fsync_directory",
    "mac_message",
    "make_allocator",
    "pack_header",
    "plan",
    "shield_base",
    "shield_opt",
    "unpack_header",
]
