"""Shared-nothing multiprocess partition engine.

The paper's scalability result (§5.4, Figs. 12-13) comes from
hash-partitioned threads that never synchronize: each thread owns a
disjoint slice of the table.  In CPython a thread pool cannot cash that
design in — the GIL serializes the Python-level store work — so this
module turns partitions into *processes*: one long-lived worker process
per partition, spawned once at pool construction (mirroring §5.3's
fixed enclave thread pool), each owning a private enclave simulation
(:class:`~repro.sim.enclave.Machine` + :class:`~repro.core.store.ShieldStore`)
that no other process can touch.  No locks, no shared state, no GIL
contention — the only coupling is the batched IPC below.

Data plane
----------
The parent routes operations by key (the same keyed hash the in-process
router uses) and ships each worker its slice of a batch as one
length-prefixed frame over a ``multiprocessing`` pipe::

    frame    := opcode(1) | payload
    OP_REQ   payload = net.message.encode_request(...)   # single or batch op
    OK reply payload = net.message.encode_response(...)
    ERR reply payload = class_len(1) | class_name | utf-8 message

Key/value payloads reuse the :mod:`repro.net.message` codecs — the same
compact framing the wire protocol uses — rather than pickle, so a
hostile or corrupted worker can at worst produce a malformed frame (a
:class:`~repro.errors.ProtocolError`), never arbitrary object
construction in the parent.  Control-plane frames (stats, audit,
iteration) are parent-trusted and carry JSON or fixed-width integers.

Pipes pair requests with replies positionally, so the parent holds a
per-worker lock across each send/recv round-trip: concurrent parent
threads (the TCP server runs one per connection) stay correctly paired
instead of interleaving frames and reading each other's replies.

Failure semantics
-----------------
A :class:`~repro.errors.ReproError` raised inside a worker (integrity
violation, crypto misuse...) is re-raised in the parent as the *same
exception class*, with the partition index prepended to the message.
A worker that dies (crash, OOM-kill) is detected by liveness polling —
never a blocking pipe read — and surfaces as
:class:`~repro.errors.WorkerError`; the pool marks itself broken and
refuses further traffic, because a missing partition means an
incomplete view of the keyspace.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import struct
import threading
from contextlib import ExitStack
from typing import Dict, List, Optional

import repro.errors as _errors
from repro.core.config import StoreConfig
from repro.core.entry import TAMPER_PROBE_OFFSET
from repro.core.stats import StoreStats
from repro.errors import ProtocolError, ReproError, StoreError, WorkerError
from repro.net.message import (
    Request,
    Response,
    decode_response,
    encode_multi_items,
    encode_request,
)

# -- frame opcodes ------------------------------------------------------------
OP_REQ = 0x01       # execute one Request (single-key or mget/mset/mdelete)
OP_STATS = 0x02     # -> JSON snapshot of the worker's StoreStats
OP_ITER = 0x03      # -> encode_multi_items of all (key, value) pairs
OP_AUDIT = 0x04     # -> u64 entries checked (full integrity audit)
OP_LEN = 0x05       # -> u64 live entry count
OP_ELAPSED = 0x06   # -> f64 simulated microseconds on the worker's machine
OP_PING = 0x07      # -> empty OK (startup / liveness handshake)
OP_TAMPER = 0x08    # flip one bit of an entry's untrusted bytes (tests)
OP_SHUTDOWN = 0x09  # -> empty OK, then the worker exits cleanly

REPLY_OK = 0x80
REPLY_ERR = 0xFF

_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

# Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL = 0.1


def process_mode_supported() -> bool:
    """Whether this platform can run the multiprocess engine.

    Needs a working ``spawn`` start method (the only one that is safe
    regardless of parent threads) and OS-level semaphore support, which
    some sandboxed platforms lack.
    """
    try:
        from multiprocessing import synchronize  # noqa: F401  (probe only)

        multiprocessing.get_context("spawn")
    except (ImportError, ValueError, OSError):
        return False
    return True


def _encode_error(exc: BaseException) -> bytes:
    name = type(exc).__name__.encode("ascii", "replace")[:255]
    return bytes([REPLY_ERR, len(name)]) + name + str(exc).encode("utf-8", "replace")


def _decode_error(frame: bytes, index: int) -> ReproError:
    """Rebuild a worker-side exception, annotated with its partition."""
    name_len = frame[1]
    name = frame[2 : 2 + name_len].decode("ascii", "replace")
    message = frame[2 + name_len :].decode("utf-8", "replace")
    klass = getattr(_errors, name, None)
    if not (isinstance(klass, type) and issubclass(klass, ReproError)):
        klass = StoreError
    return klass(f"partition {index}: {message}")


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _tamper(store, key: bytes) -> None:
    """Flip one bit of ``key``'s entry record in untrusted memory.

    The in-process equivalent of :class:`~repro.sim.attacker.Attacker`
    pointed at a worker's private memory — tests use it to prove that
    integrity failures cross the process boundary as the original
    exception class.
    """
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    addr = int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
        "little",
    )
    if not addr:
        raise StoreError(f"tamper target {key!r} has an empty bucket")
    offset = addr + TAMPER_PROBE_OFFSET  # inside the encrypted key/value bytes
    byte = store.machine.memory.raw_read(offset, 1)[0]
    store.machine.memory.raw_write(offset, bytes([byte ^ 0x01]))


def _worker_main(
    conn: multiprocessing.connection.Connection,
    index: int,
    config: StoreConfig,
    master_secret: bytes,
) -> None:
    """Entry point of one partition worker process.

    Builds a private machine + enclave + store, then serves frames until
    shutdown or EOF.  Clean :class:`ReproError` failures are reported
    and the loop continues — the store flushes its dirty sets before the
    exception escapes ``multi_set``/``multi_delete``, so the partition
    stays consistent and serviceable.
    """
    from repro.core.store import ShieldStore
    from repro.net.message import decode_request
    from repro.net.server import execute_request
    from repro.sim.enclave import Machine

    # A disjoint RNG stream per worker keeps IVs distinct across
    # partitions while staying deterministic run to run.
    machine = Machine(num_threads=1, seed=config.seed + 7919 * (index + 1))
    store = ShieldStore(config, machine=machine, master_secret=master_secret)
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break
        opcode, payload = frame[0], frame[1:]
        try:
            if opcode == OP_REQ:
                reply = bytes([REPLY_OK]) + _encode_resp(
                    execute_request(store, decode_request(payload))
                )
            elif opcode == OP_STATS:
                reply = bytes([REPLY_OK]) + json.dumps(
                    store.stats.snapshot_dict()
                ).encode("ascii")
            elif opcode == OP_ITER:
                reply = bytes([REPLY_OK]) + encode_multi_items(
                    list(store.iter_items())
                )
            elif opcode == OP_AUDIT:
                reply = bytes([REPLY_OK]) + _U64.pack(store.audit())
            elif opcode == OP_LEN:
                reply = bytes([REPLY_OK]) + _U64.pack(len(store))
            elif opcode == OP_ELAPSED:
                reply = bytes([REPLY_OK]) + _F64.pack(machine.elapsed_us())
            elif opcode == OP_PING:
                reply = bytes([REPLY_OK])
            elif opcode == OP_TAMPER:
                _tamper(store, bytes(payload))
                reply = bytes([REPLY_OK])
            elif opcode == OP_SHUTDOWN:
                conn.send_bytes(bytes([REPLY_OK]))
                break
            else:
                raise ProtocolError(f"unknown worker opcode {opcode:#x}")
        except ReproError as exc:
            reply = _encode_error(exc)
        except Exception as exc:  # keep the worker alive; report faithfully
            reply = _encode_error(StoreError(f"{type(exc).__name__}: {exc}"))
        try:
            conn.send_bytes(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _encode_resp(response: Response) -> bytes:
    from repro.net.message import encode_response

    return encode_response(response)


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side view of one worker: its process, pipe end and lock.

    The pipe pairs requests with replies purely by position, so the
    send/recv round-trip must be atomic per worker: ``lock`` serializes
    concurrent parent threads (e.g. one per TCP connection) that would
    otherwise interleave frames and read each other's replies.
    """

    __slots__ = ("index", "process", "conn", "lock")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()


class ProcessPartitionPool:
    """One worker process per partition, with batched frame IPC.

    Workers are spawned eagerly at construction (matching §5.3: the
    enclave thread pool is fixed at enclave creation) and verified with
    a PING handshake so misconfiguration fails fast, not on first use.

    ``request_timeout`` bounds how long the parent waits for any single
    reply; ``None`` waits forever (liveness is still polled, so a dead
    worker raises promptly either way).
    """

    def __init__(
        self,
        config: StoreConfig,
        num_workers: int,
        master_secret: bytes,
        request_timeout: Optional[float] = None,
    ):
        if num_workers <= 0:
            raise StoreError("process pool needs at least one worker")
        if not process_mode_supported():
            raise StoreError("platform cannot run the multiprocess engine")
        self.num_workers = num_workers
        self.request_timeout = request_timeout
        self._broken: Optional[str] = None
        self._closed = False
        ctx = multiprocessing.get_context("spawn")
        self.workers: List[_WorkerHandle] = []
        try:
            for index in range(num_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, index, config, master_secret),
                    name=f"shieldstore-partition-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()  # parent keeps only its own end
                self.workers.append(_WorkerHandle(index, process, parent_conn))
            # Handshake: every worker must come up and answer a PING.
            self.scatter({w.index: b"" for w in self.workers}, OP_PING)
        except BaseException:
            self._terminate_all()
            raise

    # -- low-level I/O ------------------------------------------------------
    def _check_usable(self) -> None:
        if self._closed:
            raise WorkerError("process pool is closed")
        if self._broken is not None:
            raise WorkerError(
                f"process pool is unusable: {self._broken} "
                "(a partition is gone; rebuild the store)"
            )

    def _mark_broken(self, why: str) -> WorkerError:
        self._broken = why
        return WorkerError(why)

    def _send(self, handle: _WorkerHandle, opcode: int, payload: bytes) -> None:
        try:
            handle.conn.send_bytes(bytes([opcode]) + payload)
        except (BrokenPipeError, OSError) as exc:
            raise self._mark_broken(
                f"partition {handle.index}: worker pipe broke on send ({exc})"
            ) from exc

    def _recv(self, handle: _WorkerHandle) -> bytes:
        """Receive one reply, polling liveness instead of blocking."""
        waited = 0.0
        while not handle.conn.poll(_POLL_INTERVAL):
            waited += _POLL_INTERVAL
            if not handle.process.is_alive():
                raise self._mark_broken(
                    f"partition {handle.index}: worker process died "
                    f"(exit code {handle.process.exitcode})"
                )
            if (
                self.request_timeout is not None
                and waited >= self.request_timeout
            ):
                raise self._mark_broken(
                    f"partition {handle.index}: no reply within "
                    f"{self.request_timeout:.1f}s"
                )
        try:
            frame = handle.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise self._mark_broken(
                f"partition {handle.index}: worker pipe broke on receive ({exc})"
            ) from exc
        if not frame:
            raise self._mark_broken(f"partition {handle.index}: empty reply frame")
        if frame[0] == REPLY_ERR:
            raise _decode_error(frame, handle.index)
        if frame[0] != REPLY_OK:
            raise self._mark_broken(
                f"partition {handle.index}: bad reply opcode {frame[0]:#x}"
            )
        return frame[1:]

    # -- request fan-out ----------------------------------------------------
    def request(self, index: int, opcode: int, payload: bytes = b"") -> bytes:
        """Round-trip one frame to one worker (atomic per worker)."""
        handle = self.workers[index]
        with handle.lock:
            self._check_usable()
            self._send(handle, opcode, payload)
            return self._recv(handle)

    def scatter(
        self, payloads: Dict[int, bytes], opcode: int = OP_REQ
    ) -> Dict[int, bytes]:
        """Submit to many workers at once, then gather every reply.

        All frames are written before any reply is read — that is the
        parallelism: each worker crunches its slice while the others do
        the same.  Replies are collected in ascending partition order so
        merge results are deterministic.

        Every target worker's lock is held for the whole scatter, in
        ascending index order (``request`` takes a single lock, so all
        acquisition orders agree and concurrent callers cannot
        deadlock).  This keeps each pipe's request/reply pairing intact
        under concurrent parent threads while still letting requests for
        disjoint worker sets proceed in parallel.
        """
        targets = sorted(payloads)
        with ExitStack() as stack:
            for index in targets:
                stack.enter_context(self.workers[index].lock)
            self._check_usable()
            for index in targets:
                self._send(self.workers[index], opcode, payloads[index])
            # Drain every reply even when one worker reports an error —
            # leaving frames queued would desynchronize the next request.
            # (WorkerError is the exception: the pool is broken anyway.)
            results: Dict[int, bytes] = {}
            first_error: Optional[ReproError] = None
            for index in targets:
                try:
                    results[index] = self._recv(self.workers[index])
                except WorkerError:
                    raise
                except ReproError as exc:
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            return results

    def broadcast(self, opcode: int, payload: bytes = b"") -> List[bytes]:
        """Scatter the same frame to every worker; replies in index order."""
        replies = self.scatter(
            {w.index: payload for w in self.workers}, opcode
        )
        return [replies[w.index] for w in self.workers]

    # -- execute_request conveniences ---------------------------------------
    def execute(self, index: int, request: Request) -> Response:
        """Run one wire-protocol request on one partition worker."""
        return decode_response(self.request(index, OP_REQ, encode_request(request)))

    def execute_many(self, requests: Dict[int, Request]) -> Dict[int, Response]:
        """Scatter per-partition requests; decode replies by partition."""
        replies = self.scatter(
            {index: encode_request(req) for index, req in requests.items()}
        )
        return {index: decode_response(raw) for index, raw in replies.items()}

    # -- aggregates ---------------------------------------------------------
    def gather_stats(self) -> List[StoreStats]:
        """Per-worker operation counters, reconstituted parent-side."""
        return [
            StoreStats.from_dict(json.loads(raw.decode("ascii")))
            for raw in self.broadcast(OP_STATS)
        ]

    def total_len(self) -> int:
        return sum(_U64.unpack(raw)[0] for raw in self.broadcast(OP_LEN))

    def audit_all(self) -> int:
        """Full-table audit on every worker; sum of entries checked."""
        return sum(_U64.unpack(raw)[0] for raw in self.broadcast(OP_AUDIT))

    def elapsed_us(self) -> float:
        """Simulated wall time: the slowest worker's private clock."""
        return max(_F64.unpack(raw)[0] for raw in self.broadcast(OP_ELAPSED))

    def iter_partition_items(self, index: int):
        """All (key, value) pairs of one partition, decrypted worker-side."""
        from repro.net.message import decode_multi_items

        return decode_multi_items(self.request(index, OP_ITER))

    def tamper(self, index: int, key: bytes) -> None:
        """Flip a bit in a worker's untrusted memory (attack simulation)."""
        self.request(index, OP_TAMPER, bytes(key))

    # -- lifecycle ----------------------------------------------------------
    def _terminate_all(self) -> None:
        for handle in self.workers:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            handle.conn.close()

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._broken is None:
            for handle in self.workers:
                try:
                    handle.conn.send_bytes(bytes([OP_SHUTDOWN]))
                except (BrokenPipeError, OSError):
                    pass
            for handle in self.workers:
                handle.process.join(timeout=5)
        self._terminate_all()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
