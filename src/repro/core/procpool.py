"""Shared-nothing multiprocess partition engine.

The paper's scalability result (§5.4, Figs. 12-13) comes from
hash-partitioned threads that never synchronize: each thread owns a
disjoint slice of the table.  In CPython a thread pool cannot cash that
design in — the GIL serializes the Python-level store work — so this
module turns partitions into *processes*: one long-lived worker process
per partition, spawned once at pool construction (mirroring §5.3's
fixed enclave thread pool), each owning a private enclave simulation
(:class:`~repro.sim.enclave.Machine` + :class:`~repro.core.store.ShieldStore`)
that no other process can touch.  No locks, no shared state, no GIL
contention — the only coupling is the batched IPC below.

Data plane
----------
The parent routes operations by key (the same keyed hash the in-process
router uses) and ships each worker its slice of a batch as one
length-prefixed frame over a pluggable **data plane**::

    record   := SecureChannel.seal(frame)   # per-worker session channel
    frame    := opcode(1) | payload
    OP_REQ   payload = net.message.encode_request(...)   # single or batch op
    OK reply payload = net.message.encode_response(...)
    ERR reply payload = class_len(1) | class_name | utf-8 message

Two planes carry those records (``data_plane=`` selects one):

* ``"shm"`` (default) — per-worker sealed shared-memory ring buffers
  (:mod:`repro.core.shmring`): one request ring + one reply ring, with
  ``Connection``-based doorbells for readiness.  This is the paper's
  switchless/HotCalls idea applied to worker IPC: the hot path moves
  sealed bytes through shared memory with a single ``memoryview`` copy
  per side and usually no syscall at all.
* ``"pipe"`` — the original ``multiprocessing`` pipe (two kernel
  copies and a wakeup per direction); kept as the portable fallback
  and selected automatically where shared memory is unavailable.

Every record is sealed (encrypted + MACed with per-direction sequence
counters) under a per-*incarnation* session key both ends derive from
the master secret and a fresh public nonce drawn at every (re)spawn:
both planes cross host-visible memory, which is outside the simulated
enclave boundary, so plaintext never rides them, and a respawned worker
never resumes its predecessor's key/sequence space — same rules as the
TCP wire and its per-session handshake.  A respawn also gets *fresh
rings*, so a reply left over from a dead incarnation physically cannot
arrive — and if its bytes were replayed anyway, the stale-nonce channel
would refuse to authenticate them.

Key/value payloads reuse the :mod:`repro.net.message` codecs — the same
compact framing the wire protocol uses — rather than pickle, so a
hostile or corrupted worker can at worst produce a malformed frame (a
:class:`~repro.errors.ProtocolError`), never arbitrary object
construction in the parent.  Control-plane frames (stats, audit,
iteration) are parent-trusted and carry JSON or fixed-width integers.

Pipes pair requests with replies positionally, so the parent holds a
per-worker lock across each send/recv round-trip: concurrent parent
threads (the TCP server runs one per connection) stay correctly paired
instead of interleaving frames and reading each other's replies.

Snapshots and crash recovery
----------------------------
``OP_SNAPSHOT`` has a worker seal + serialize its private store into a
snapshot *section* (paper §4.4: sealed metadata, already-encrypted
records verbatim) and ship the section — never plaintext — back over
the pipe; ``OP_RESTORE`` rebuilds a worker's store from such a section.
The pool caches the sections of the most recent snapshot, and that
cache is the recovery checkpoint:

A :class:`~repro.errors.ReproError` raised inside a worker (integrity
violation, crypto misuse...) is re-raised in the parent as the *same
exception class*, with the partition index prepended to the message.  A
worker that dies (crash, OOM-kill) or wedges past ``request_timeout``
is detected by liveness polling — never a blocking pipe read — and the
pool *recovers*: the dead process is respawned and restored from the
cached snapshot section.  The interrupted call still raises
:class:`~repro.errors.WorkerError` (its mutations may be lost), but the
pool keeps serving; ``state`` reports ``"recovered"`` and ``ops_lost``
counts an upper bound of mutations issued since the snapshot.  With no
snapshot to restore from the partition comes back *empty* and ``state``
reports ``"degraded"``.  Only a failed recovery marks the pool broken.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import struct
import threading
import time
from contextlib import ExitStack
from typing import Callable, Dict, List, Optional, Sequence

import repro.errors as _errors
from repro.core.config import StoreConfig
from repro.core.entry import TAMPER_PROBE_OFFSET
from repro.core.shmring import (
    DEFAULT_NUM_SLOTS,
    DEFAULT_SLOT_SIZE,
    Doorbell,
    ShmRing,
    shm_supported,
)
from repro.core.stats import StoreStats, TransportStats
from repro.crypto.keys import derive_key
from repro.crypto.suite import make_suite
from repro.errors import ProtocolError, ReproError, StoreError, WorkerError
from repro.net.message import (
    BATCH_OPS,
    Request,
    Response,
    SecureChannel,
    decode_response,
    encode_multi_items,
    encode_request,
)
from repro.sim import faults

# -- frame opcodes ------------------------------------------------------------
OP_REQ = 0x01       # execute one Request (single-key or mget/mset/mdelete)
OP_STATS = 0x02     # -> JSON snapshot of the worker's StoreStats
OP_ITER = 0x03      # -> encode_multi_items of all (key, value) pairs
OP_AUDIT = 0x04     # -> u64 entries checked (full integrity audit)
OP_LEN = 0x05       # -> u64 live entry count
OP_ELAPSED = 0x06   # -> f64 simulated microseconds on the worker's machine
OP_PING = 0x07      # -> empty OK (startup / liveness handshake)
OP_TAMPER = 0x08    # flip one bit of an entry's untrusted bytes (tests)
OP_SHUTDOWN = 0x09  # -> empty OK, then the worker exits cleanly
OP_SNAPSHOT = 0x0A  # u64 counter -> sealed snapshot section (§4.4)
OP_RESTORE = 0x0B   # u64 counter | u8 flags | section? -> u64 WAL ops replayed
                    # flags: bit0 = verify restored sets, bit1 = section present
OP_TIMING = 0x0C    # -> JSON per-stage timing (worker compute seconds)

REPLY_OK = 0x80
REPLY_ERR = 0xFF

_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

# Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL = 0.1
# Deadline for the respawn + restore round-trips of worker recovery
# (independent of request_timeout, which may be sub-second).
_RECOVERY_TIMEOUT = 60.0

# Request ops that mutate a partition (lost if the worker dies before
# the next snapshot).  Batch ops count their per-key operations.
_MUTATING_OPS = frozenset(
    {"set", "delete", "append", "increment", "cas", "mset", "mdelete"}
)


def process_mode_supported() -> bool:
    """Whether this platform can run the multiprocess engine.

    Needs a working ``spawn`` start method (the only one that is safe
    regardless of parent threads) and OS-level semaphore support, which
    some sandboxed platforms lack.
    """
    try:
        from multiprocessing import synchronize  # noqa: F401  (probe only)

        multiprocessing.get_context("spawn")
    except (ImportError, ValueError, OSError):
        return False
    return True


def _encode_error(exc: BaseException) -> bytes:
    name = type(exc).__name__.encode("ascii", "replace")[:255]
    return bytes([REPLY_ERR, len(name)]) + name + str(exc).encode("utf-8", "replace")


def _decode_error(frame: bytes, index: int) -> ReproError:
    """Rebuild a worker-side exception, annotated with its partition."""
    name_len = frame[1]
    name = frame[2 : 2 + name_len].decode("ascii", "replace")
    message = frame[2 + name_len :].decode("utf-8", "replace")
    klass = getattr(_errors, name, None)
    if not (isinstance(klass, type) and issubclass(klass, ReproError)):
        klass = StoreError
    return klass(f"partition {index}: {message}")


def _mutation_count(request: Request) -> int:
    """How many key mutations a request carries (0 for reads)."""
    if request.op not in _MUTATING_OPS:
        return 0
    if request.op in BATCH_OPS:
        if len(request.value) >= 4:
            return struct.unpack_from("<I", request.value, 0)[0]
        return 0
    return 1


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _tamper(store, key: bytes) -> None:
    """Flip one bit of ``key``'s entry record in untrusted memory.

    The in-process equivalent of :class:`~repro.sim.attacker.Attacker`
    pointed at a worker's private memory — tests use it to prove that
    integrity failures cross the process boundary as the original
    exception class.
    """
    bucket = store.keyring.keyed_bucket_hash(key, store.config.num_buckets)
    addr = int.from_bytes(
        store.machine.memory.raw_read(store.buckets.slot_addr(bucket), 8),
        "little",
    )
    if not addr:
        raise StoreError(f"tamper target {key!r} has an empty bucket")
    offset = addr + TAMPER_PROBE_OFFSET  # inside the encrypted key/value bytes
    byte = store.machine.memory.raw_read(offset, 1)[0]
    store.machine.memory.raw_write(offset, bytes([byte ^ 0x01]))


def _fresh_nonce() -> bytes:
    """Public per-spawn freshness value for :func:`_pipe_channel` keys."""
    return os.urandom(16)


def _pipe_channel(
    master_secret: bytes, index: int, nonce: bytes, role: str, suite_name: str
) -> SecureChannel:
    """Session channel sealing one worker pipe end (paper §3.2 spirit).

    Pipe frames cross the host kernel, which sits outside the simulated
    enclave boundary — so the data plane is encrypted + MACed end to
    end, exactly like the TCP wire.  Both ends derive the same
    per-worker key from the master secret (parent takes the ``client``
    role, worker the ``server`` role, fixing disjoint IV domains).

    ``nonce`` is a public per-spawn freshness value the parent draws
    anew for every (re)spawn and ships in the worker args.  Mixing it
    into the derivation makes each worker incarnation its own session:
    the host can kill a worker to force a respawn (and the sequence
    counters restart at zero with it), but the respawned channel pair
    holds fresh keys, so records recorded from the previous incarnation
    never authenticate and (key, IV) pairs are never reused across
    incarnations — the pipe-session analogue of the per-session DH
    derivation the TCP wire gets from :mod:`repro.net.sessions`.
    """
    secret = derive_key(
        master_secret, f"shieldstore/procpool/{index}/{nonce.hex()}", 32
    )
    return SecureChannel(
        make_suite(
            suite_name,
            derive_key(secret, "pipe/enc"),
            derive_key(secret, "pipe/mac"),
        ),
        role,
    )


# ---------------------------------------------------------------------------
# data planes
# ---------------------------------------------------------------------------
DATA_PLANE_SHM = "shm"
DATA_PLANE_PIPE = "pipe"
DATA_PLANES = (DATA_PLANE_SHM, DATA_PLANE_PIPE)


def default_data_plane() -> str:
    """``shm`` where shared memory exists, else the portable pipe."""
    return DATA_PLANE_SHM if shm_supported() else DATA_PLANE_PIPE


class _PipeWorkerEnd:
    """Worker-side endpoint of the pipe plane (picklable spawn arg)."""

    kind = DATA_PLANE_PIPE

    def __init__(self, conn):
        self.conn = conn

    def open(self) -> "_PipeWorkerEnd":
        return self

    def recv_bytes(self) -> bytes:
        return self.conn.recv_bytes()

    def send_bytes(self, raw: bytes) -> None:
        self.conn.send_bytes(raw)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class _ShmWorkerEnd:
    """Worker-side endpoint of the shm plane (picklable spawn arg).

    Carries the ring names and geometry plus the worker's doorbell
    ``Connection``; :meth:`open` attaches the rings with the roles
    mirrored (the worker consumes requests and produces replies).
    """

    kind = DATA_PLANE_SHM

    def __init__(self, req_name, rep_name, conn, num_slots, slot_size):
        self.req_name = req_name
        self.rep_name = rep_name
        self.conn = conn
        self.num_slots = num_slots
        self.slot_size = slot_size
        self.req = None
        self.rep = None

    def open(self) -> "_ShmWorkerEnd":
        self.req = ShmRing.attach(
            self.req_name, "consumer", self.num_slots, self.slot_size
        )
        self.rep = ShmRing.attach(
            self.rep_name, "producer", self.num_slots, self.slot_size
        )
        doorbell = Doorbell(self.conn)
        self.req.doorbell = doorbell
        self.rep.doorbell = doorbell
        return self

    def recv_bytes(self) -> bytes:
        # Blocks on the doorbell; the parent dying surfaces as the
        # doorbell's EOF (RingPeerGone is an OSError), which the serve
        # loop treats exactly like a closed pipe.
        return self.req.read()

    def send_bytes(self, raw: bytes) -> None:
        self.rep.write(raw)

    def close(self) -> None:
        if self.req is not None:
            self.req.close()
        if self.rep is not None:
            self.rep.close()
        try:
            self.conn.close()
        except OSError:
            pass


class _PipePlane:
    """Parent-side pipe data plane (the portable fallback)."""

    kind = DATA_PLANE_PIPE

    def __init__(self, ctx, index: int):
        self.index = index
        self.conn, self._child_conn = ctx.Pipe(duplex=True)

    def worker_end(self) -> _PipeWorkerEnd:
        return _PipeWorkerEnd(self._child_conn)

    def finish_spawn(self, process) -> None:
        self._child_conn.close()  # parent keeps only its own end
        self._child_conn = None

    def send(self, raw, on_crash, deadline=None, alive=None) -> None:
        hit = faults.check("procpool.pipe.send", raw, on_crash=on_crash)
        if hit is not None:
            if hit.kind == "drop":
                # The frame is lost in the kernel; the reply wait
                # will time out and trigger worker recovery.
                return
            if hit.payload is not None:
                raw = hit.payload
        self.conn.send_bytes(raw)

    def send_raw(self, raw) -> None:
        """Fault-free send for the shutdown control path."""
        self.conn.send_bytes(raw)

    def poll(self, timeout: float) -> bool:
        return self.conn.poll(timeout)

    def recv(self, on_crash, deadline=None, alive=None) -> bytes:
        raw = self.conn.recv_bytes()
        hit = faults.check("procpool.pipe.recv", raw, on_crash=on_crash)
        if hit is not None:
            if hit.kind == "drop":
                raise OSError("injected pipe frame drop")
            if hit.payload is not None:
                raw = hit.payload
        return raw

    def transport_stats(self) -> TransportStats:
        return TransportStats()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class _ShmPlane:
    """Parent-side shared-memory ring plane (the switchless hot path).

    Owns both rings (request: parent produces; reply: parent consumes)
    and the doorbell pipe.  Faults inject here — parent-side, where the
    §2.3 host adversary sits — under the ``shmring.*`` points.
    """

    kind = DATA_PLANE_SHM

    def __init__(self, ctx, index: int, num_slots: int, slot_size: int):
        self.index = index
        self.num_slots = num_slots
        self.slot_size = slot_size
        self.req = ShmRing.create("producer", num_slots, slot_size)
        self.rep = ShmRing.create("consumer", num_slots, slot_size)
        self.conn, self._child_conn = ctx.Pipe(duplex=True)
        self._doorbell = Doorbell(self.conn, fault_point="shmring.doorbell")
        self.req.doorbell = self._doorbell
        self.rep.doorbell = self._doorbell

    def worker_end(self) -> _ShmWorkerEnd:
        return _ShmWorkerEnd(
            self.req.name,
            self.rep.name,
            self._child_conn,
            self.num_slots,
            self.slot_size,
        )

    def finish_spawn(self, process) -> None:
        self._child_conn.close()  # parent keeps only its own end
        self._child_conn = None
        # An injected doorbell "crash" should kill the worker like any
        # other crossing crash.
        self._doorbell.on_crash = process.kill

    def send(self, raw, on_crash, deadline=None, alive=None) -> None:
        hit = faults.check("shmring.write", raw, on_crash=on_crash)
        if hit is not None:
            if hit.kind == "drop":
                # The frame is never written; the reply wait will time
                # out and trigger worker recovery.
                return
            if hit.payload is not None:
                raw = hit.payload
        self.req.write(raw, deadline=deadline, alive=alive)

    def send_raw(self, raw) -> None:
        self.req.write(raw)

    def poll(self, timeout: float) -> bool:
        return self.rep.poll(timeout)

    def recv(self, on_crash, deadline=None, alive=None) -> bytes:
        raw = self.rep.read(deadline=deadline, alive=alive)
        hit = faults.check("shmring.read", raw, on_crash=on_crash)
        if hit is not None:
            if hit.kind == "drop":
                raise OSError("injected ring frame drop")
            if hit.payload is not None:
                raw = hit.payload
        return raw

    def transport_stats(self) -> TransportStats:
        stats = TransportStats()
        stats.ring_frames = self.req.frames + self.rep.frames
        stats.ring_bytes = self.req.bytes_moved + self.rep.bytes_moved
        stats.ring_full_waits = self.req.full_waits + self.rep.full_waits
        stats.ring_doorbell_waits = (
            self.req.doorbell_waits + self.rep.doorbell_waits
        )
        stats.ring_doorbell_rings = self._doorbell.rings
        stats.ring_max_occupancy = max(
            self.req.max_occupancy, self.rep.max_occupancy
        )
        return stats

    def close(self) -> None:
        self.req.close()
        self.rep.close()
        self._doorbell.close()


def _make_plane(plane: str, ctx, index: int, num_slots: int, slot_size: int):
    if plane == DATA_PLANE_SHM:
        return _ShmPlane(ctx, index, num_slots, slot_size)
    return _PipePlane(ctx, index)


def _worker_main(
    end,
    index: int,
    config: StoreConfig,
    master_secret: bytes,
    channel_nonce: bytes,
    platform_secret: Optional[bytes] = None,
    wal_dir: Optional[str] = None,
    wal_sync_ms: float = 2.0,
) -> None:
    """Entry point of one partition worker process.

    ``end`` is the worker-side data-plane endpoint (pipe connection or
    shared-memory ring pair).  Builds a private machine + enclave +
    store, then serves frames until shutdown or EOF.  Clean
    :class:`ReproError` failures are reported and the loop continues —
    the store flushes its dirty sets before the exception escapes
    ``multi_set``/``multi_delete``, so the partition stays consistent
    and serviceable.

    ``platform_secret`` keys the sealing service used by
    ``OP_SNAPSHOT``/``OP_RESTORE``; the parent derives it from the
    master secret by default, so every worker of one deployment (and a
    restarted deployment with the same secret) is the same "platform".
    """
    from repro.core.persistence import (
        default_platform_secret,
        read_section,
        write_section,
    )
    from repro.core.store import ShieldStore
    from repro.net.message import decode_request
    from repro.net.server import execute_request
    from repro.sim.enclave import Machine
    from repro.sim.sealing import SealingService

    def fresh_store():
        # A disjoint RNG stream per worker keeps IVs distinct across
        # partitions while staying deterministic run to run.
        machine = Machine(num_threads=1, seed=config.seed + 7919 * (index + 1))
        return ShieldStore(config, machine=machine, master_secret=master_secret)

    def attach_wal(target, counter: int) -> int:
        """Replay this partition's sealed log chain into ``target``.

        Recovery runs with no log attached (re-applied ops must not
        re-log themselves); the tail log is attached afterwards.
        Returns the number of replayed operations.
        """
        if wal_dir is None:
            return 0
        from repro.core.wal import WriteAheadLog, apply_request

        wal = WriteAheadLog.recover(
            wal_dir,
            index,
            master_secret,
            config.suite_name,
            counter,
            apply=lambda req: apply_request(target, req),
            stats=target.stats,
            sync_ms=wal_sync_ms,
        )
        target.wal = wal
        return wal.replayed

    store = fresh_store()
    # Startup recovery: a respawned worker replays whatever chain its
    # dead predecessor left, so even with no cached snapshot section
    # the partition comes back with every logged mutation.
    attach_wal(store, 0)
    sealing = SealingService(
        platform_secret
        if platform_secret is not None
        else default_platform_secret(master_secret)
    )
    channel = _pipe_channel(
        master_secret, index, channel_nonce, "server", config.suite_name
    )
    plane = end.open()
    compute_s = 0.0  # seconds spent executing OP_REQ work (stage timing)
    while True:
        try:
            frame = channel.open(plane.recv_bytes())
        except (EOFError, OSError, ProtocolError):
            # A frame that fails authentication means the parent-side
            # channel is gone or desynced; the stream is unusable.
            break
        opcode, payload = frame[0], frame[1:]
        try:
            if opcode == OP_REQ:
                started = time.perf_counter()
                reply = bytes([REPLY_OK]) + _encode_resp(
                    execute_request(store, decode_request(payload))
                )
                compute_s += time.perf_counter() - started
            elif opcode == OP_TIMING:
                reply = bytes([REPLY_OK]) + json.dumps(
                    {"compute_s": compute_s}
                ).encode("ascii")
            elif opcode == OP_STATS:
                reply = bytes([REPLY_OK]) + json.dumps(
                    store.stats.snapshot_dict()
                ).encode("ascii")
            elif opcode == OP_ITER:
                reply = bytes([REPLY_OK]) + encode_multi_items(
                    list(store.iter_items())
                )
            elif opcode == OP_AUDIT:
                reply = bytes([REPLY_OK]) + _U64.pack(store.audit())
            elif opcode == OP_LEN:
                reply = bytes([REPLY_OK]) + _U64.pack(len(store))
            elif opcode == OP_ELAPSED:
                reply = bytes([REPLY_OK]) + _F64.pack(store.machine.elapsed_us())
            elif opcode == OP_PING:
                reply = bytes([REPLY_OK])
            elif opcode == OP_TAMPER:
                _tamper(store, bytes(payload))
                reply = bytes([REPLY_OK])
            elif opcode == OP_SNAPSHOT:
                counter = _U64.unpack_from(payload, 0)[0]
                section = write_section(
                    store.enclave.context(), store, sealing, counter
                )
                # Rotate inside the capture: the truncation record
                # brackets exactly what the section contains, so replay
                # of the next segment resumes from this counter.
                if store.wal is not None:
                    store.wal.rotate(counter)
                reply = bytes([REPLY_OK]) + section
            elif opcode == OP_RESTORE:
                counter = _U64.unpack_from(payload, 0)[0]
                flags = payload[8]
                verify = bool(flags & 0x01)
                # Build the replacement first: a malformed section or a
                # tampered log leaves the current store untouched.
                replacement = fresh_store()
                if flags & 0x02:
                    read_section(
                        replacement.enclave.context(),
                        replacement,
                        sealing,
                        bytes(payload[9:]),
                        counter,
                        verify=verify,
                    )
                replayed = attach_wal(replacement, counter)
                if store.wal is not None:
                    store.wal.close()
                store = replacement
                reply = bytes([REPLY_OK]) + _U64.pack(replayed)
            elif opcode == OP_SHUTDOWN:
                plane.send_bytes(channel.seal(bytes([REPLY_OK])))
                break
            else:
                # shieldlint: ignore[trust-boundary] -- one protocol opcode byte from the authenticated frame header, not client key/value plaintext
                raise ProtocolError(f"unknown worker opcode {opcode:#x}")
        except ReproError as exc:
            reply = _encode_error(exc)
        except Exception as exc:  # keep the worker alive; report faithfully
            reply = _encode_error(StoreError(f"{type(exc).__name__}: {exc}"))
        try:
            plane.send_bytes(channel.seal(reply))
        except (BrokenPipeError, OSError):
            break
    if store.wal is not None:
        store.wal.close()
    plane.close()


def _encode_resp(response: Response) -> bytes:
    from repro.net.message import encode_response

    return encode_response(response)


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side view of one worker: its process, data plane and lock.

    The plane pairs requests with replies purely by position, so the
    send/recv round-trip must be atomic per worker: ``lock`` serializes
    concurrent parent threads (e.g. one per TCP connection) that would
    otherwise interleave frames and read each other's replies.

    ``ops_since_snapshot`` counts mutations issued to this worker since
    the pool last snapshotted it — the upper bound on what a crash of
    this worker can lose.  It is read, updated and reset under ``lock``.

    ``channel`` is the parent end of the plane's session channel; its
    sequence counters advance on every frame, so it is only touched
    under ``lock`` (which already serializes the round-trips) and is
    replaced together with ``plane`` when the worker is respawned.

    ``serialize_s``/``ipc_wait_s`` accumulate this worker's parent-side
    stage timings (sealing vs waiting on the plane); they are only
    touched under ``lock``.
    """

    __slots__ = (
        "index", "process", "plane", "channel", "lock",
        "ops_since_snapshot", "serialize_s", "ipc_wait_s",
    )

    def __init__(self, index, process, plane, channel):
        self.index = index
        self.process = process
        self.plane = plane
        self.channel = channel
        self.lock = threading.Lock()
        self.ops_since_snapshot = 0
        self.serialize_s = 0.0
        self.ipc_wait_s = 0.0

    @property
    def conn(self):
        """The plane's parent-side ``Connection`` (the data pipe for
        the pipe plane, the doorbell for the shm plane).  Settable so
        tests can interpose spies on the pipe plane."""
        return self.plane.conn

    @conn.setter
    def conn(self, value):
        self.plane.conn = value


class ProcessPartitionPool:
    """One worker process per partition, with batched frame IPC.

    Workers are spawned eagerly at construction (matching §5.3: the
    enclave thread pool is fixed at enclave creation) and verified with
    a PING handshake so misconfiguration fails fast, not on first use.

    ``request_timeout`` bounds how long the parent waits for any single
    reply; ``None`` waits forever (liveness is still polled, so a dead
    worker raises promptly either way).

    A worker that dies mid-service is respawned and restored from the
    most recent cached snapshot (see :meth:`snapshot_all`); the pool
    stays usable and reports the incident through :attr:`state`,
    :attr:`recoveries` and :attr:`ops_lost`.
    """

    def __init__(
        self,
        config: StoreConfig,
        num_workers: int,
        master_secret: bytes,
        request_timeout: Optional[float] = None,
        platform_secret: Optional[bytes] = None,
        data_plane: Optional[str] = None,
        ring_slots: int = DEFAULT_NUM_SLOTS,
        ring_slot_size: int = DEFAULT_SLOT_SIZE,
        wal_dir: Optional[str] = None,
        wal_sync_ms: float = 2.0,
    ):
        if num_workers <= 0:
            raise StoreError("process pool needs at least one worker")
        if not process_mode_supported():
            raise StoreError("platform cannot run the multiprocess engine")
        if data_plane is None:
            data_plane = default_data_plane()
        if data_plane not in DATA_PLANES:
            raise StoreError(
                f"unknown data plane {data_plane!r}; known: {DATA_PLANES}"
            )
        if data_plane == DATA_PLANE_SHM and not shm_supported():
            raise StoreError(
                "data_plane='shm' needs multiprocessing.shared_memory"
            )
        from repro.core.persistence import default_platform_secret

        self.num_workers = num_workers
        self.request_timeout = request_timeout
        self.data_plane = data_plane
        self._ring_slots = ring_slots
        self._ring_slot_size = ring_slot_size
        self._broken: Optional[str] = None
        self._closed = False
        self._config = config
        self._master_secret = master_secret
        self._wal_dir = wal_dir
        self._wal_sync_ms = wal_sync_ms
        self._platform_secret = (
            platform_secret
            if platform_secret is not None
            else default_platform_secret(master_secret)
        )
        # Recovery checkpoint: the sections of the latest snapshot.
        self._snapshot_sections: Dict[int, bytes] = {}
        self._snapshot_counter: Optional[int] = None
        self._degraded: set = set()   # respawned empty (no snapshot)
        self._recovered: set = set()  # respawned + restored
        self.recoveries = 0           # workers brought back after dying
        self.ops_lost = 0             # upper bound on mutations lost
        # Guards the pool-wide health/checkpoint state above: those
        # fields are reached from recovery paths that hold *different*
        # worker locks concurrently.  Ordered strictly after any worker
        # lock (see shieldlint's lock-order pass).
        self._health_lock = threading.Lock()
        self._mp_ctx = multiprocessing.get_context("spawn")
        self.workers: List[_WorkerHandle] = []
        try:
            for index in range(num_workers):
                plane, process, channel = self._spawn(index)
                self.workers.append(
                    _WorkerHandle(index, process, plane, channel)
                )
            # Handshake: every worker must come up and answer a PING.
            # Spawning an interpreter takes far longer than a request
            # round-trip, so the startup deadline is the recovery one,
            # not ``request_timeout``.
            for handle in self.workers:
                with handle.lock:
                    self._send(handle, OP_PING, b"", recover=False)
                    self._recv(
                        handle, recover=False, timeout=_RECOVERY_TIMEOUT
                    )
        except BaseException:
            self._terminate_all()
            raise

    def _spawn(self, index: int):
        """Start one worker; returns (plane, process, channel).

        Each (re)spawn draws a fresh public channel nonce — so a
        replacement worker's session never shares keys with its dead
        predecessor (see :func:`_pipe_channel`) — and, on the shm
        plane, fresh rings: a reply queued by the dead incarnation can
        never physically reach the new session.
        """
        hit = faults.check("procpool.spawn")
        if hit is not None and hit.kind == "drop":
            raise OSError(f"injected spawn failure for partition {index}")
        nonce = _fresh_nonce()
        plane = _make_plane(
            self.data_plane,
            self._mp_ctx,
            index,
            self._ring_slots,
            self._ring_slot_size,
        )
        try:
            process = self._mp_ctx.Process(
                target=_worker_main,
                args=(
                    plane.worker_end(),
                    index,
                    self._config,
                    self._master_secret,
                    nonce,
                    self._platform_secret,
                    self._wal_dir,
                    self._wal_sync_ms,
                ),
                name=f"shieldstore-partition-{index}",
                daemon=True,
            )
            process.start()
        except BaseException:
            plane.close()
            raise
        plane.finish_spawn(process)
        channel = _pipe_channel(
            self._master_secret, index, nonce, "client", self._config.suite_name
        )
        return plane, process, channel

    # -- health -------------------------------------------------------------
    @property
    def state(self) -> str:
        """``ok`` | ``recovered`` | ``degraded`` | ``broken`` | ``closed``.

        ``recovered``: every dead worker was restored from a snapshot
        (mutations since that snapshot are lost, nothing else).
        ``degraded``: at least one worker was respawned *empty* because
        no snapshot existed.  A later :meth:`restore_all` or
        :meth:`snapshot_all` checkpoint returns the pool to ``ok``.
        """
        if self._closed:
            return "closed"
        if self._broken is not None:
            return "broken"
        if self._degraded:
            return "degraded"
        if self._recovered:
            return "recovered"
        return "ok"

    def _check_usable(self) -> None:
        if self._closed:
            raise WorkerError("process pool is closed")
        if self._broken is not None:
            raise WorkerError(
                f"process pool is unusable: {self._broken} "
                "(a partition is gone; rebuild the store)"
            )

    def _mark_broken(self, why: str) -> WorkerError:
        with self._health_lock:
            self._broken = why
        return WorkerError(why)

    def _worker_failed(
        self, handle: _WorkerHandle, why: str, recover: bool
    ) -> WorkerError:
        """Handle a dead/wedged worker; returns the error to raise.

        With ``recover`` (the normal data path — the caller holds
        ``handle.lock``) the worker is respawned and restored from the
        cached snapshot section; the in-flight call still failed, so a
        :class:`WorkerError` describing the recovery is returned.  Only
        when recovery itself fails is the pool marked broken.
        """
        if not recover:
            return WorkerError(why)
        if self._closed or self._broken is not None:
            return WorkerError(why)
        try:
            return self._recover_worker(handle, why)
        except Exception as exc:
            return self._mark_broken(f"{why}; recovery failed: {exc}")

    def _recover_worker(self, handle: _WorkerHandle, why: str) -> WorkerError:
        """Respawn ``handle``'s process and restore its snapshot section.

        Caller holds ``handle.lock``, so mutating the handle in place is
        safe: every other thread queues on the same lock and sees the
        replacement worker.
        """
        try:
            handle.plane.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5)
        lost = handle.ops_since_snapshot
        handle.plane, handle.process, handle.channel = self._spawn(handle.index)
        handle.ops_since_snapshot = 0
        # With a write-ahead log every acknowledged mutation is on disk
        # and replayed during recovery, so nothing counts as lost.
        walled = self._wal_dir is not None
        with self._health_lock:
            self.recoveries += 1
            if not walled:
                self.ops_lost += lost
        # The replacement interpreter needs time to spawn and import;
        # recovery uses its own generous deadline, not request_timeout.
        self._send(handle, OP_PING, b"", recover=False)
        self._recv(handle, recover=False, timeout=_RECOVERY_TIMEOUT)
        # Read the checkpoint pair atomically: a concurrent
        # snapshot_all must not hand us new sections with an old
        # counter (or vice versa).
        with self._health_lock:
            section = self._snapshot_sections.get(handle.index)
            counter = self._snapshot_counter
        if section is None:
            if walled:
                # The respawned worker already replayed its full log
                # chain at startup (attach_wal in _worker_main), so the
                # partition holds every acknowledged mutation again.
                with self._health_lock:
                    self._recovered.add(handle.index)
                    self._degraded.discard(handle.index)
                return WorkerError(
                    f"{why}; worker respawned and replayed its "
                    f"write-ahead log — {lost} acknowledged mutation(s) "
                    "recovered"
                )
            with self._health_lock:
                self._degraded.add(handle.index)
            return WorkerError(
                f"{why}; worker respawned but no snapshot exists — "
                f"partition {handle.index} restarted empty, losing "
                f"{lost} mutation(s) (pool degraded)"
            )
        payload = _U64.pack(counter) + b"\x03" + section
        self._send(handle, OP_RESTORE, payload, recover=False)
        self._recv(handle, recover=False, timeout=_RECOVERY_TIMEOUT)
        with self._health_lock:
            self._recovered.add(handle.index)
            self._degraded.discard(handle.index)
        if walled:
            return WorkerError(
                f"{why}; worker respawned, restored from snapshot counter "
                f"{counter} and replayed the write-ahead log tail — "
                f"{lost} acknowledged mutation(s) recovered"
            )
        return WorkerError(
            f"{why}; worker respawned and restored from snapshot counter "
            f"{counter} — up to {lost} mutation(s) since "
            "that snapshot were lost"
        )

    # -- low-level I/O ------------------------------------------------------
    def _send(
        self,
        handle: _WorkerHandle,
        opcode: int,
        payload: bytes,
        recover: bool = True,
    ) -> None:
        try:
            started = time.perf_counter()
            sealed = handle.channel.seal(bytes([opcode]) + payload)
            handle.serialize_s += time.perf_counter() - started
            deadline = (
                None
                if self.request_timeout is None
                else time.monotonic() + self.request_timeout
            )
            handle.plane.send(
                sealed,
                on_crash=handle.process.kill,
                deadline=deadline,
                alive=handle.process.is_alive,
            )
        except (BrokenPipeError, OSError) as exc:
            raise self._worker_failed(
                handle,
                f"partition {handle.index}: worker data plane broke "
                f"on send ({exc})",
                recover,
            ) from exc

    def _recv(
        self,
        handle: _WorkerHandle,
        recover: bool = True,
        timeout: Optional[float] = -1.0,
    ) -> bytes:
        """Receive one reply, polling liveness instead of blocking.

        Each ``poll()`` is clamped to the remaining timeout budget and
        elapsed time is measured on a monotonic clock, so sub-interval
        ``request_timeout`` values are honored instead of being rounded
        up to the 0.1 s poll interval.  ``timeout`` of -1 means "use
        ``self.request_timeout``"; ``None`` waits forever.
        """
        if timeout == -1.0:
            timeout = self.request_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        wait_started = time.perf_counter()
        try:
            while True:
                interval = _POLL_INTERVAL
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise self._worker_failed(
                            handle,
                            f"partition {handle.index}: no reply within "
                            f"{timeout:.3g}s",
                            recover,
                        )
                    interval = min(interval, remaining)
                if handle.plane.poll(interval):
                    break
                if not handle.process.is_alive():
                    raise self._worker_failed(
                        handle,
                        f"partition {handle.index}: worker process died "
                        f"(exit code {handle.process.exitcode})",
                        recover,
                    )
        finally:
            handle.ipc_wait_s += time.perf_counter() - wait_started
        try:
            raw = handle.plane.recv(
                on_crash=handle.process.kill,
                deadline=deadline,
                alive=handle.process.is_alive,
            )
            frame = handle.channel.open(raw)
        except (EOFError, OSError) as exc:
            raise self._worker_failed(
                handle,
                f"partition {handle.index}: worker data plane broke "
                f"on receive ({exc})",
                recover,
            ) from exc
        except ProtocolError as exc:
            # Tampered or desynced data-plane record: the channel state
            # is unrecoverable, treat it like a dead worker.
            raise self._worker_failed(
                handle,
                f"partition {handle.index}: data-plane record failed "
                f"authentication ({exc})",
                recover,
            ) from exc
        if not frame:
            raise self._worker_failed(
                handle, f"partition {handle.index}: empty reply frame", recover
            )
        if frame[0] == REPLY_ERR:
            # shieldlint: ignore[trust-boundary] -- re-raises the worker's own error report parent-side; messages are redacted at their raise sites inside the trusted store
            raise _decode_error(frame, handle.index)
        if frame[0] != REPLY_OK:
            # shieldlint: ignore[trust-boundary] -- one reply opcode byte from the authenticated frame header, not client key/value plaintext
            raise self._worker_failed(
                handle,
                f"partition {handle.index}: bad reply opcode {frame[0]:#x}",
                recover,
            )
        return frame[1:]

    # -- request fan-out ----------------------------------------------------
    def request(
        self,
        index: int,
        opcode: int,
        payload: bytes = b"",
        mutations: int = 0,
    ) -> bytes:
        """Round-trip one frame to one worker (atomic per worker).

        ``mutations`` is added to the worker's ``ops_since_snapshot``
        while its lock is held, so the loss-bound accounting cannot race
        with a concurrent snapshot reset.
        """
        handle = self.workers[index]
        with handle.lock:
            self._check_usable()
            handle.ops_since_snapshot += mutations
            self._send(handle, opcode, payload)
            return self._recv(handle)

    def scatter(
        self,
        payloads: Dict[int, bytes],
        opcode: int = OP_REQ,
        mutations: Optional[Dict[int, int]] = None,
        reset_counters: bool = False,
        on_success: Optional[Callable[[Dict[int, bytes]], None]] = None,
    ) -> Dict[int, bytes]:
        """Submit to many workers at once, then gather every reply.

        All frames are written before any reply is read — that is the
        parallelism: each worker crunches its slice while the others do
        the same.  Replies are collected in ascending partition order so
        merge results are deterministic.

        Every target worker's lock is held for the whole scatter, in
        ascending index order (``request`` takes a single lock, so all
        acquisition orders agree and concurrent callers cannot
        deadlock).  This keeps each pipe's request/reply pairing intact
        under concurrent parent threads while still letting requests for
        disjoint worker sets proceed in parallel.

        Every successfully-sent frame's reply is drained even when one
        worker fails — leaving frames queued would desynchronize the
        next round-trip — and a worker that died mid-scatter is
        recovered in place, so the surviving replies stay paired.  The
        first :class:`WorkerError` (then the first other
        :class:`ReproError`) is raised after the drain.

        ``mutations`` (per-target ``ops_since_snapshot`` increments) and
        ``reset_counters`` (zero each target's counter after a fully
        successful round) run inside the locked region, so the loss
        bound stays consistent under concurrent snapshot/execute races.
        ``on_success`` also runs inside the locked region, after every
        reply succeeded and *before* the counters reset — checkpoint
        installation uses it so {sections, counter, per-worker
        counters} change as one atom: a worker failing right after the
        scatter can never pair the old checkpoint with already-zeroed
        counters (which would undercount ``ops_lost``).
        """
        targets = sorted(payloads)
        with ExitStack() as stack:
            for index in targets:
                stack.enter_context(self.workers[index].lock)
            self._check_usable()
            if mutations:
                for index in targets:
                    self.workers[index].ops_since_snapshot += mutations.get(
                        index, 0
                    )
            sent: List[int] = []
            worker_error: Optional[WorkerError] = None
            first_error: Optional[ReproError] = None
            for index in targets:
                try:
                    self._send(self.workers[index], opcode, payloads[index])
                    sent.append(index)
                except WorkerError as exc:
                    if worker_error is None:
                        worker_error = exc
            results: Dict[int, bytes] = {}
            for index in sent:
                try:
                    results[index] = self._recv(self.workers[index])
                except WorkerError as exc:
                    if worker_error is None:
                        worker_error = exc
                except ReproError as exc:
                    if first_error is None:
                        first_error = exc
            if worker_error is not None:
                raise worker_error
            if first_error is not None:
                raise first_error
            if on_success is not None:
                on_success(results)
            if reset_counters:
                for index in targets:
                    self.workers[index].ops_since_snapshot = 0
            return results

    def broadcast(self, opcode: int, payload: bytes = b"") -> List[bytes]:
        """Scatter the same frame to every worker; replies in index order."""
        replies = self.scatter(
            {w.index: payload for w in self.workers}, opcode
        )
        return [replies[w.index] for w in self.workers]

    # -- execute_request conveniences ---------------------------------------
    def execute(self, index: int, request: Request) -> Response:
        """Run one wire-protocol request on one partition worker."""
        return decode_response(
            self.request(
                index,
                OP_REQ,
                encode_request(request),
                mutations=_mutation_count(request),
            )
        )

    def execute_many(self, requests: Dict[int, Request]) -> Dict[int, Response]:
        """Scatter per-partition requests; decode replies by partition."""
        replies = self.scatter(
            {index: encode_request(req) for index, req in requests.items()},
            mutations={
                index: _mutation_count(req)
                for index, req in requests.items()
            },
        )
        return {index: decode_response(raw) for index, raw in replies.items()}

    # -- snapshots -----------------------------------------------------------
    def _install_checkpoint(
        self, sections: Dict[int, bytes], counter: int
    ) -> None:
        """Publish a new recovery checkpoint (runs via scatter's
        ``on_success``, i.e. with every worker lock held, so no recovery
        can read a half-installed {sections, counter} pair)."""
        with self._health_lock:
            self._snapshot_sections = sections
            self._snapshot_counter = counter
            self._degraded.clear()
            self._recovered.clear()

    def snapshot_all(self, counter: int) -> Dict[int, bytes]:
        """Have every worker seal + serialize its store (paper §4.4).

        Returns the per-partition sections (index -> bytes) and caches
        them as the crash-recovery checkpoint; a previously degraded or
        recovered pool returns to ``ok`` because a fresh checkpoint now
        reflects whatever state the partitions actually hold.

        The checkpoint is installed from inside the scatter's locked
        region (just before the mutation counters reset), so recovery
        of a worker that dies right after the snapshot reads the *new*
        sections with the *new* (already-zeroed) counters — never the
        old checkpoint against zeroed counters, which would undercount
        the documented mutation-loss bound.
        """
        return self.scatter(
            {w.index: _U64.pack(counter) for w in self.workers},
            OP_SNAPSHOT,
            reset_counters=True,
            on_success=lambda sections: self._install_checkpoint(
                dict(sections), counter
            ),
        )

    def restore_all(
        self, sections: Sequence[bytes], counter: int, verify: bool = True
    ) -> None:
        """Replace every worker's store from snapshot sections.

        Also installs the sections as the recovery checkpoint and clears
        any degraded/recovered markers — after a full restore the pool
        is exactly the checkpointed state again.
        """
        if len(sections) != self.num_workers:
            raise StoreError(
                f"{len(sections)} snapshot sections for "
                f"{self.num_workers} workers"
            )
        flag = b"\x03" if verify else b"\x02"  # bit1: section present
        checkpoint = dict(enumerate(bytes(s) for s in sections))
        self.scatter(
            {
                index: _U64.pack(counter) + flag + section
                for index, section in checkpoint.items()
            },
            OP_RESTORE,
            reset_counters=True,
            on_success=lambda _: self._install_checkpoint(checkpoint, counter),
        )

    # -- aggregates ---------------------------------------------------------
    def gather_stats(self) -> List[StoreStats]:
        """Per-worker operation counters, reconstituted parent-side."""
        return [
            StoreStats.from_dict(json.loads(raw.decode("ascii")))
            for raw in self.broadcast(OP_STATS)
        ]

    def transport_stats(self) -> TransportStats:
        """Merged data-plane counters across every worker's plane."""
        merged = TransportStats()
        for handle in self.workers:
            with handle.lock:
                merged = merged.merge(handle.plane.transport_stats())
        return merged

    def stage_timings(self) -> Dict[str, float]:
        """Per-stage seconds: serialize / IPC wait / worker compute.

        ``serialize_s`` and ``ipc_wait_s`` are parent-side (sealing and
        blocked-on-plane time); ``worker_compute_s`` is fetched from
        the workers' own ``OP_REQ`` clocks, so the three stages
        attribute where a batch round-trip actually went.
        """
        timings = {"serialize_s": 0.0, "ipc_wait_s": 0.0}
        for handle in self.workers:
            with handle.lock:
                timings["serialize_s"] += handle.serialize_s
                timings["ipc_wait_s"] += handle.ipc_wait_s
        compute = 0.0
        for raw in self.broadcast(OP_TIMING):
            compute += float(json.loads(raw.decode("ascii"))["compute_s"])
        timings["worker_compute_s"] = compute
        return timings

    def total_len(self) -> int:
        return sum(_U64.unpack(raw)[0] for raw in self.broadcast(OP_LEN))

    def audit_all(self) -> int:
        """Full-table audit on every worker; sum of entries checked."""
        return sum(_U64.unpack(raw)[0] for raw in self.broadcast(OP_AUDIT))

    def elapsed_us(self) -> float:
        """Simulated wall time: the slowest worker's private clock."""
        return max(_F64.unpack(raw)[0] for raw in self.broadcast(OP_ELAPSED))

    def iter_partition_items(self, index: int):
        """All (key, value) pairs of one partition, decrypted worker-side."""
        from repro.net.message import decode_multi_items

        return decode_multi_items(self.request(index, OP_ITER))

    def tamper(self, index: int, key: bytes) -> None:
        """Flip a bit in a worker's untrusted memory (attack simulation)."""
        self.request(index, OP_TAMPER, bytes(key))

    # -- lifecycle ----------------------------------------------------------
    def _terminate_all(self) -> None:
        for handle in self.workers:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            handle.plane.close()

    def close(self) -> None:
        """Shut every worker down (idempotent).

        Takes every worker lock (ascending index order, same as
        ``scatter``) before sending ``OP_SHUTDOWN``: a concurrent
        connection thread mid round-trip finishes its send/recv pairing
        first, so it can never read a shutdown acknowledgement as its
        own reply.
        """
        with ExitStack() as stack:
            for handle in self.workers:
                stack.enter_context(handle.lock)
            if self._closed:
                return
            self._closed = True
            if self._broken is None:
                for handle in self.workers:
                    try:
                        handle.plane.send_raw(
                            handle.channel.seal(bytes([OP_SHUTDOWN]))
                        )
                    except (BrokenPipeError, OSError):
                        pass
                for handle in self.workers:
                    handle.process.join(timeout=5)
        self._terminate_all()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
