"""Snapshot persistence (paper §4.4, Algorithm 1; evaluated in Fig. 19).

Two halves:

* **Functional snapshots** — :class:`Snapshotter` writes a restorable
  snapshot: the in-enclave metadata (master secret, MAC tree, count) is
  *sealed* to the platform; the untrusted entry records are written
  verbatim — they are already encrypted and integrity-protected, which
  is the design's headline persistence advantage (no re-encryption).
  A monotonic counter defends restores against rollback to an older
  snapshot.  Restore rebuilds the chains and verifies every bucket-set
  hash, so offline tampering with the snapshot file is detected.

* **Performance model** — :class:`SnapshotScheduler` drives the paper's
  three Fig. 19 modes during a throughput run.  ``naive`` stalls all
  serving threads for the full storage write.  ``optimized`` follows
  Algorithm 1: a brief stall for sealing + fork, then a copy-on-write
  window during which the forked child streams entries to storage while
  the parent serves; writes during the window go additionally to a
  temporary table and are merged back when the child finishes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.entry import HEADER_SIZE, unpack_header
from repro.core.store import ShieldStore
from repro.errors import SnapshotError
from repro.sim.counters import MonotonicCounterService
from repro.sim.enclave import ExecContext
from repro.sim.sealing import SealingService

_MAGIC = b"SSSNAP1\0"

MODE_NONE = "none"
MODE_NAIVE = "naive"
MODE_OPTIMIZED = "optimized"


# ---------------------------------------------------------------------------
# functional snapshots
# ---------------------------------------------------------------------------
class Snapshotter:
    """Writes and restores real snapshot blobs for one store."""

    def __init__(
        self,
        sealing: SealingService,
        counters: MonotonicCounterService,
        counter_name: str = "shieldstore",
    ):
        self.sealing = sealing
        self.counters = counters
        self.counter_name = counter_name

    def snapshot_bytes(self, ctx: ExecContext, store: ShieldStore) -> bytes:
        """Produce a snapshot blob; bumps the monotonic counter."""
        counter = self.counters.increment(ctx, self.counter_name)
        meta = struct.pack("<Q", counter) + store.metadata_blob()
        sealed = self.sealing.seal(ctx, store.enclave, meta)
        parts: List[bytes] = [
            _MAGIC,
            struct.pack("<Q", counter),
            struct.pack("<I", len(sealed)),
            sealed,
        ]
        records: List[bytes] = []
        count = 0
        for bucket, record in store.iter_raw_entries():
            records.append(struct.pack("<II", bucket, len(record)) + record)
            count += 1
        parts.append(struct.pack("<Q", count))
        parts.extend(records)
        return b"".join(parts)

    def restore(
        self,
        ctx: ExecContext,
        blob: bytes,
        store: ShieldStore,
        verify: bool = True,
    ) -> ShieldStore:
        """Load a snapshot into a freshly constructed, empty ``store``.

        Raises :class:`SnapshotError` on format/tamper problems and
        :class:`~repro.errors.RollbackError` on stale snapshots.
        """
        if len(store) != 0:
            raise SnapshotError("restore target store must be empty")
        if blob[: len(_MAGIC)] != _MAGIC:
            raise SnapshotError("snapshot has wrong magic")
        off = len(_MAGIC)
        (claimed_counter,) = struct.unpack_from("<Q", blob, off)
        off += 8
        (sealed_len,) = struct.unpack_from("<I", blob, off)
        off += 4
        sealed = blob[off : off + sealed_len]
        off += sealed_len
        meta = self.sealing.unseal(ctx, store.enclave, sealed)
        (sealed_counter,) = struct.unpack_from("<Q", meta, 0)
        if sealed_counter != claimed_counter:
            raise SnapshotError("snapshot header counter does not match sealed value")
        self.counters.check_not_rolled_back(self.counter_name, sealed_counter)
        store.load_metadata_blob(meta[8:])

        (count,) = struct.unpack_from("<Q", blob, off)
        off += 8
        # Rebuild chains bucket by bucket, preserving chain order.
        tails: Dict[int, int] = {}
        mem = store.machine.memory
        restored = 0
        while restored < count:
            bucket, rec_len = struct.unpack_from("<II", blob, off)
            off += 8
            record = blob[off : off + rec_len]
            off += rec_len
            header = unpack_header(record[:HEADER_SIZE])
            addr = store.allocator.alloc(ctx, len(record))
            # Stored next_ptr values are stale; relink below.
            mem.write(ctx, addr, record)
            mem.write(ctx, addr, struct.pack("<Q", 0))  # clear next
            if bucket in tails:
                mem.write(ctx, tails[bucket], struct.pack("<Q", addr))
            else:
                store.buckets.write_head(ctx, bucket, addr)
            tails[bucket] = addr
            if store.macbuckets is not None:
                mac = record[HEADER_SIZE + header.kv_size :]
                head = store.buckets.read_mac_ptr(ctx, bucket, False)
                macs = store.macbuckets.read_all(ctx, head) if head else []
                macs.append(mac)
                if head == 0:
                    head = store.allocator.alloc(ctx, store.macbuckets.node_size)
                    store.buckets.write_mac_ptr(ctx, bucket, head)
                store.macbuckets.write_all(ctx, head, macs)
            restored += 1

        if verify:
            self._verify_all_sets(ctx, store)
        return store

    @staticmethod
    def _verify_all_sets(ctx: ExecContext, store: ShieldStore) -> None:
        """Check every bucket-set hash against the restored MAC tree."""
        for set_id in range(store.config.num_mac_hashes):
            by_bucket = {
                b: store._collect_bucket_macs(ctx, b)
                for b in store.mactree.buckets_of(set_id)
            }
            if any(by_bucket.values()) or store.mactree.read_hash(
                ctx, set_id
            ) != bytes(16):
                store._verify_set(ctx, set_id, by_bucket)


# ---------------------------------------------------------------------------
# performance model of periodic snapshots
# ---------------------------------------------------------------------------
@dataclass
class SnapshotPolicy:
    """How (and how often) periodic snapshots run during a measurement.

    ``fixed_cost_scale`` scales the per-snapshot *fixed* costs (fork,
    sealing, the ~60 ms monotonic-counter bump) relative to the paper's
    60-second schedule.  Scaled benchmarks shrink the interval together
    with the data, so these interval-independent costs must shrink by the
    same factor to preserve the paper's snapshot duty cycle; it defaults
    to ``interval_us / 60 s``.  Pass 1.0 for unscaled (real-time) runs.
    """

    mode: str = MODE_NONE
    interval_us: float = 60_000_000.0  # paper: every 60 s (Redis default)
    sealed_meta_bytes: Optional[int] = None  # default: derived from store
    fixed_cost_scale: Optional[float] = None

    def __post_init__(self):
        if self.mode not in (MODE_NONE, MODE_NAIVE, MODE_OPTIMIZED):
            raise SnapshotError(f"unknown snapshot mode {self.mode!r}")
        if self.fixed_cost_scale is None:
            self.fixed_cost_scale = min(1.0, self.interval_us / 60_000_000.0)


class SnapshotScheduler:
    """Applies Fig. 19 snapshot costs to a running store's thread clocks.

    Experiments call :meth:`tick` between operations (cheap); the
    scheduler watches simulated time and injects stalls / per-write
    overheads according to the policy.
    """

    # Extra cycles a set pays during the optimized window: encrypt+insert
    # into the temporary table and update its metadata (Algorithm 1 L7).
    TEMP_TABLE_FACTOR = 0.6
    # Per-entry cost of folding the temporary table back into the main
    # table after the child finishes (Algorithm 1 L11).
    MERGE_CYCLES_PER_ENTRY = 2_500.0

    def __init__(self, store, policy: SnapshotPolicy):
        self.store = store  # ShieldStore or PartitionedShieldStore
        self.policy = policy
        self.machine = store.machine
        self.next_snapshot_us = policy.interval_us
        self.window_end_us: Optional[float] = None
        self.temp_table_writes = 0
        self.snapshots_taken = 0
        self.total_stall_us = 0.0

    # -- helpers ---------------------------------------------------------
    def _data_bytes(self) -> int:
        if hasattr(self.store, "partitions"):
            return sum(p.untrusted_bytes_live() for p in self.store.partitions)
        return self.store.untrusted_bytes_live()

    def _meta_bytes(self) -> int:
        if self.policy.sealed_meta_bytes is not None:
            return self.policy.sealed_meta_bytes
        if hasattr(self.store, "partitions"):
            return sum(
                p.config.num_mac_hashes * 16 + 64 for p in self.store.partitions
            )
        return self.store.config.num_mac_hashes * 16 + 64

    def _storage_us(self, nbytes: int) -> float:
        cost = self.machine.cost
        return cost.storage_seek_us + nbytes / cost.storage_write_bw_bytes_per_us

    def _stall_all(self, us: float) -> None:
        cycles = self.machine.cost.us_to_cycles(us)
        for clock in self.machine.clock.threads:
            clock.charge(cycles)
        self.total_stall_us += us

    # -- the per-operation hook -----------------------------------------
    def tick(self, is_write: bool) -> None:
        """Advance the snapshot state machine; call once per operation."""
        if self.policy.mode == MODE_NONE:
            return
        now_us = self.machine.elapsed_us()
        if self.window_end_us is not None and now_us >= self.window_end_us:
            self._finish_window()
        if now_us >= self.next_snapshot_us:
            self._begin_snapshot()
        elif (
            self.policy.mode == MODE_OPTIMIZED
            and self.window_end_us is not None
            and is_write
        ):
            # Algorithm 1 line 7: mirror the write into the temp table.
            extra = self.machine.cost.op_dispatch_cycles * self.TEMP_TABLE_FACTOR
            extra += self.machine.cost.aes_cycles(64) * self.TEMP_TABLE_FACTOR
            self.machine.clock.threads[0].charge(extra)
            self.temp_table_writes += 1

    def _begin_snapshot(self) -> None:
        cost = self.machine.cost
        fixed = self.policy.fixed_cost_scale
        seal_us = fixed * cost.cycles_to_us(
            cost.aes_cycles(self._meta_bytes()) + cost.cmac_cycles(self._meta_bytes())
        )
        counter_us = fixed * cost.monotonic_counter_us
        meta_write_us = fixed * self._storage_us(self._meta_bytes())
        data_write_us = self._storage_us(self._data_bytes())
        self.snapshots_taken += 1
        if self.policy.mode == MODE_NAIVE:
            # Serving is blocked for the entire snapshot.
            self._stall_all(seal_us + counter_us + meta_write_us + data_write_us)
            self.next_snapshot_us = (
                self.machine.elapsed_us() + self.policy.interval_us
            )
        else:
            # Optimized: stall only for seal + fork + counter + metadata;
            # the forked child writes entries concurrently.
            fork_us = fixed * cost.cycles_to_us(cost.fork_cycles)
            self._stall_all(seal_us + counter_us + fork_us + meta_write_us)
            self.window_end_us = self.machine.elapsed_us() + data_write_us
            self.temp_table_writes = 0
            self.next_snapshot_us = (
                self.machine.elapsed_us() + self.policy.interval_us
            )

    def _finish_window(self) -> None:
        # Algorithm 1 line 11: merge the temp table into the main table.
        merge_cycles = self.temp_table_writes * self.MERGE_CYCLES_PER_ENTRY
        self.machine.clock.threads[0].charge(merge_cycles)
        self.window_end_us = None
        self.temp_table_writes = 0
