"""Snapshot persistence (paper §4.4, Algorithm 1; evaluated in Fig. 19).

Three halves:

* **Functional snapshots** — :class:`Snapshotter` writes a restorable
  snapshot: the in-enclave metadata (master secret, MAC tree, count) is
  *sealed* to the platform; the untrusted entry records are written
  verbatim — they are already encrypted and integrity-protected, which
  is the design's headline persistence advantage (no re-encryption).
  A monotonic counter defends restores against rollback to an older
  snapshot.  Restore rebuilds the chains and verifies every bucket-set
  hash, so offline tampering with the snapshot file is detected.

* **Partitioned snapshots** — :class:`PartitionSnapshotter` extends the
  same format across every engine of
  :class:`~repro.core.partition.PartitionedShieldStore`: one versioned
  blob with a per-partition section each, a *shared* monotonic counter,
  and the partition count plus routing geometry sealed into the header
  so a restore into a mismatched store is rejected up front instead of
  silently corrupting the keyspace.  In ``processes`` mode the sections
  are produced and consumed *inside* the worker processes
  (:data:`~repro.core.procpool.OP_SNAPSHOT` /
  :data:`~repro.core.procpool.OP_RESTORE`), so no plaintext ever
  crosses the pipe; the cached sections also power the pool's
  worker-crash recovery.

* **Performance model** — :class:`SnapshotScheduler` drives the paper's
  three Fig. 19 modes during a throughput run.  ``naive`` stalls all
  serving threads for the full storage write.  ``optimized`` follows
  Algorithm 1: a brief stall for sealing + fork, then a copy-on-write
  window during which the forked child streams entries to storage while
  the parent serves; writes during the window go additionally to a
  temporary table and are merged back when the child finishes.

Every parse of untrusted snapshot bytes goes through :class:`_Reader`,
which bounds-checks each read and rejects trailing bytes — malformed or
truncated blobs surface as :class:`~repro.errors.SnapshotError`, never
as a raw ``struct.error`` or silently-ignored garbage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.entry import HEADER_SIZE, MAC_SIZE, unpack_header
from repro.core.stats import StoreStats
from repro.core.store import ShieldStore
from repro.crypto.keys import derive_key
from repro.errors import SnapshotError
from repro.sim import faults
from repro.sim.counters import MonotonicCounterService
from repro.sim.enclave import ExecContext
from repro.sim.sealing import SealingService

_MAGIC = b"SSSNAP1\0"
_PMAGIC = b"SSPSNP1\0"


def _fault_blob(point: str, blob: bytes) -> bytes:
    """shieldfault hook for snapshot blobs entering/leaving persistence.

    ``tamper`` rules substitute a corrupted blob (exercising the sealed
    header, section MACs, and rollback checks downstream); ``error`` and
    ``delay`` are handled inside :func:`repro.sim.faults.check`.
    """
    hit = faults.check(point, blob)
    if hit is not None and hit.payload is not None:
        return hit.payload
    return blob

MODE_NONE = "none"
MODE_NAIVE = "naive"
MODE_OPTIMIZED = "optimized"


def default_platform_secret(master_secret: bytes) -> bytes:
    """Deterministic per-deployment sealing secret.

    The simulation has no fused platform key, so stores derive one from
    the enclave master secret: every process of one logical deployment
    (parent router, partition workers, a restarted server with the same
    seed) lands on the same "platform", which is exactly the set of
    parties real SGX sealing would let unseal.
    """
    return derive_key(master_secret, "shieldstore/platform-seal", 32)


def snapshot_counter(blob: bytes) -> int:
    """The monotonic counter a snapshot blob claims (both formats).

    Reads only the plaintext header — callers use it to name checkpoint
    files; the authoritative (sealed) copy is checked at restore.
    """
    if len(blob) < 16 or blob[:8] not in (_MAGIC, _PMAGIC):
        raise SnapshotError("not a snapshot blob")
    return struct.unpack_from("<Q", blob, 8)[0]


class _Reader:
    """Bounds-checked cursor over an untrusted snapshot blob."""

    __slots__ = ("blob", "off", "what")

    def __init__(self, blob: bytes, what: str = "snapshot"):
        self.blob = blob
        self.off = 0
        self.what = what

    def take(self, count: int) -> bytes:
        if count < 0 or self.off + count > len(self.blob):
            raise SnapshotError(
                f"{self.what} truncated: need {count} bytes at offset "
                f"{self.off}, have {len(self.blob) - self.off}"
            )
        data = self.blob[self.off : self.off + count]
        self.off += count
        return data

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def done(self) -> None:
        if self.off != len(self.blob):
            raise SnapshotError(
                f"{self.what} has {len(self.blob) - self.off} trailing "
                "bytes after the last record"
            )


# ---------------------------------------------------------------------------
# section format (shared by single-store and partitioned snapshots)
# ---------------------------------------------------------------------------
def write_section(
    ctx: ExecContext, store: ShieldStore, sealing: SealingService, counter: int
) -> bytes:
    """Serialize one store as a snapshot section.

    ``sealed(counter || metadata) || count || records`` — the metadata
    (master secret, MAC tree, live count) is sealed to the platform;
    entry records are written verbatim because they are already
    encrypted and MACed (§4.4's no-re-encryption property).
    """
    meta = struct.pack("<Q", counter) + store.metadata_blob()
    sealed = sealing.seal(ctx, store.enclave, meta)
    parts: List[bytes] = [struct.pack("<I", len(sealed)), sealed]
    records: List[bytes] = []
    count = 0
    for bucket, record in store.iter_raw_entries():
        records.append(struct.pack("<II", bucket, len(record)) + record)
        count += 1
    parts.append(struct.pack("<Q", count))
    parts.extend(records)
    return b"".join(parts)


def read_section(
    ctx: ExecContext,
    store: ShieldStore,
    sealing: SealingService,
    blob: bytes,
    expected_counter: int,
    verify: bool = True,
    counters: Optional[MonotonicCounterService] = None,
    counter_name: Optional[str] = None,
) -> None:
    """Load one snapshot section into a freshly constructed ``store``.

    Every read is bounds-checked and leftover bytes are rejected;
    malformed input raises :class:`SnapshotError`.  The sealed counter
    must equal ``expected_counter`` (the plaintext header's claim), and
    when a ``counters`` service is given it additionally enforces the
    rollback defense.
    """
    reader = _Reader(blob, "snapshot section")
    sealed = reader.take(reader.u32())
    meta = sealing.unseal(ctx, store.enclave, sealed)
    if len(meta) < 8:
        raise SnapshotError("sealed metadata too short for a counter")
    (sealed_counter,) = struct.unpack_from("<Q", meta, 0)
    if sealed_counter != expected_counter:
        raise SnapshotError("snapshot header counter does not match sealed value")
    if counters is not None and counter_name is not None:
        counters.check_not_rolled_back(counter_name, sealed_counter)
    store.load_metadata_blob(meta[8:])

    count = reader.u64()
    # Rebuild chains bucket by bucket, preserving chain order.
    tails: Dict[int, int] = {}
    mem = store.machine.memory
    for _ in range(count):
        bucket = reader.u32()
        rec_len = reader.u32()
        record = reader.take(rec_len)
        if bucket >= store.config.num_buckets:
            raise SnapshotError(
                f"record bucket {bucket} outside table of "
                f"{store.config.num_buckets} buckets"
            )
        if rec_len < HEADER_SIZE + MAC_SIZE:
            raise SnapshotError(f"record of {rec_len} bytes is too short")
        header = unpack_header(record[:HEADER_SIZE])
        if header.total_size != rec_len:
            raise SnapshotError(
                f"record length {rec_len} does not match its header "
                f"({header.total_size})"
            )
        addr = store.allocator.alloc(ctx, len(record))
        # Stored next_ptr values are stale; relink below.
        mem.write(ctx, addr, record)
        mem.write(ctx, addr, struct.pack("<Q", 0))  # clear next
        if bucket in tails:
            mem.write(ctx, tails[bucket], struct.pack("<Q", addr))
        else:
            store.buckets.write_head(ctx, bucket, addr)
        tails[bucket] = addr
        if store.macbuckets is not None:
            mac = record[HEADER_SIZE + header.kv_size :]
            head = store.buckets.read_mac_ptr(ctx, bucket, False)
            macs = store.macbuckets.read_all(ctx, head) if head else []
            macs.append(mac)
            if head == 0:
                head = store.allocator.alloc(ctx, store.macbuckets.node_size)
                store.buckets.write_mac_ptr(ctx, bucket, head)
            store.macbuckets.write_all(ctx, head, macs)
    reader.done()

    if verify:
        _verify_all_sets(ctx, store)


def _verify_all_sets(ctx: ExecContext, store: ShieldStore) -> None:
    """Check every bucket-set hash against the restored MAC tree."""
    for set_id in range(store.config.num_mac_hashes):
        by_bucket = {
            b: store._collect_bucket_macs(ctx, b)
            for b in store.mactree.buckets_of(set_id)
        }
        if any(by_bucket.values()) or store.mactree.read_hash(
            ctx, set_id
        ) != bytes(16):
            store._verify_set(ctx, set_id, by_bucket)


# ---------------------------------------------------------------------------
# single-store snapshots
# ---------------------------------------------------------------------------
class Snapshotter:
    """Writes and restores real snapshot blobs for one store."""

    def __init__(
        self,
        sealing: SealingService,
        counters: MonotonicCounterService,
        counter_name: str = "shieldstore",
    ):
        self.sealing = sealing
        self.counters = counters
        self.counter_name = counter_name

    def snapshot_bytes(self, ctx: ExecContext, store: ShieldStore) -> bytes:
        """Produce a snapshot blob; bumps the monotonic counter."""
        counter = self.counters.increment(ctx, self.counter_name)
        blob = (
            _MAGIC
            + struct.pack("<Q", counter)
            + write_section(ctx, store, self.sealing, counter)
        )
        return _fault_blob("persistence.snapshot", blob)

    def restore(
        self,
        ctx: ExecContext,
        blob: bytes,
        store: ShieldStore,
        verify: bool = True,
    ) -> ShieldStore:
        """Load a snapshot into a freshly constructed, empty ``store``.

        Raises :class:`SnapshotError` on format/tamper problems and
        :class:`~repro.errors.RollbackError` on stale snapshots.
        """
        if len(store) != 0:
            raise SnapshotError("restore target store must be empty")
        blob = _fault_blob("persistence.restore", blob)
        reader = _Reader(blob)
        if reader.take(len(_MAGIC)) != _MAGIC:
            raise SnapshotError("snapshot has wrong magic")
        claimed_counter = reader.u64()
        read_section(
            ctx,
            store,
            self.sealing,
            reader.take(len(blob) - reader.off),
            claimed_counter,
            verify=verify,
            counters=self.counters,
            counter_name=self.counter_name,
        )
        return store


# ---------------------------------------------------------------------------
# multi-partition snapshots
# ---------------------------------------------------------------------------
class PartitionSnapshotter:
    """One versioned snapshot blob for every partition of a store.

    Blob layout::

        PMAGIC | counter u64 | num_partitions u32
               | sealed_len u32 | sealed_header
               | num_partitions x (section_len u64 | section)

    ``sealed_header`` seals ``counter || num_partitions || num_buckets
    || num_mac_hashes || suite || master_secret`` — the shared counter
    plus the routing geometry, so a restore into a store with a
    different partition count or table shape fails with
    :class:`SnapshotError` before any partition is touched, and the
    plaintext copies (used for file naming / quick inspection) cannot be
    tampered into a mismatched restore.

    Works with every engine of ``PartitionedShieldStore``: in-process
    partitions are serialized directly; ``processes``-mode workers build
    and consume their own sections over ``OP_SNAPSHOT``/``OP_RESTORE``,
    which also installs the sections as the pool's crash-recovery
    checkpoint.
    """

    def __init__(
        self,
        sealing: SealingService,
        counters: MonotonicCounterService,
        counter_name: str = "shieldstore-partitions",
    ):
        self.sealing = sealing
        self.counters = counters
        self.counter_name = counter_name

    @classmethod
    def for_store(
        cls,
        store,
        counters: MonotonicCounterService,
        counter_name: str = "shieldstore-partitions",
    ) -> "PartitionSnapshotter":
        """Snapshotter on the store's own platform sealing secret."""
        return cls(SealingService(store.platform_secret), counters, counter_name)

    # -- write --------------------------------------------------------------
    def snapshot_bytes(self, store) -> bytes:
        """Snapshot every partition under one shared counter bump."""
        ctx = store.enclave.context()
        counter = self.counters.increment(ctx, self.counter_name)
        sealed = self.sealing.seal(ctx, store.enclave, self._header(store, counter))
        if store._pool is not None:
            by_index = store._pool.snapshot_all(counter)
            sections = [by_index[i] for i in range(store.num_threads)]
        else:
            sections = []
            for t, partition in enumerate(store.partitions):
                sections.append(
                    write_section(
                        store.enclave.context(t), partition, self.sealing, counter
                    )
                )
                if partition.wal is not None:
                    # Rotate inside the capture: the truncation record
                    # brackets exactly what this section contains, and
                    # the fresh segment is keyed to the new counter.
                    partition.wal.rotate(counter)
        parts: List[bytes] = [
            _PMAGIC,
            struct.pack("<QI", counter, store.num_threads),
            struct.pack("<I", len(sealed)),
            sealed,
        ]
        for section in sections:
            parts.append(struct.pack("<Q", len(section)))
            parts.append(section)
        return _fault_blob("persistence.snapshot", b"".join(parts))

    @staticmethod
    def _header(store, counter: int) -> bytes:
        suite = store.config.suite_name.encode("ascii")
        master = store._keyring.master
        return (
            struct.pack(
                "<QIII",
                counter,
                store.num_threads,
                store.config.num_buckets,
                store.config.num_mac_hashes,
            )
            + bytes([len(suite)])
            + suite
            + struct.pack("<H", len(master))
            + master
        )

    # -- read ---------------------------------------------------------------
    def restore(self, blob: bytes, store, verify: bool = True):
        """Restore a multi-partition snapshot into ``store``.

        The target's geometry (partition count, bucket/hash counts,
        cipher suite) must match the sealed header exactly; mismatches
        raise :class:`SnapshotError` with nothing modified.  Partition
        contents are replaced wholesale — in ``processes`` mode each
        worker rebuilds its private store from its own section.
        """
        ctx = store.enclave.context()
        blob = _fault_blob("persistence.restore", blob)
        reader = _Reader(blob)
        if reader.take(len(_PMAGIC)) != _PMAGIC:
            raise SnapshotError("partition snapshot has wrong magic")
        claimed_counter = reader.u64()
        claimed_parts = reader.u32()
        sealed = reader.take(reader.u32())
        header = _Reader(
            self.sealing.unseal(ctx, store.enclave, sealed), "snapshot header"
        )
        counter = header.u64()
        num_partitions = header.u32()
        num_buckets = header.u32()
        num_mac_hashes = header.u32()
        suite = header.take(header.u8()).decode("ascii", "replace")
        master = header.take(header.u16())
        header.done()
        if counter != claimed_counter or num_partitions != claimed_parts:
            raise SnapshotError(
                "snapshot plaintext header does not match its sealed values"
            )
        self.counters.check_not_rolled_back(self.counter_name, counter)
        if num_partitions != store.num_threads:
            raise SnapshotError(
                f"snapshot has {num_partitions} partitions but the store "
                f"has {store.num_threads}; restore into matching geometry"
            )
        if (
            num_buckets != store.config.num_buckets
            or num_mac_hashes != store.config.num_mac_hashes
            or suite != store.config.suite_name
        ):
            raise SnapshotError(
                f"snapshot geometry ({num_buckets} buckets, "
                f"{num_mac_hashes} hashes, {suite!r}) does not match the "
                f"store ({store.config.num_buckets} buckets, "
                f"{store.config.num_mac_hashes} hashes, "
                f"{store.config.suite_name!r})"
            )
        sections = [reader.take(reader.u64()) for _ in range(num_partitions)]
        reader.done()

        if store._pool is not None:
            store._pool.restore_all(sections, counter, verify=verify)
        else:
            part_config = store._part_config
            restored: List[ShieldStore] = []
            for t, section in enumerate(sections):
                fresh = ShieldStore(
                    part_config,
                    machine=store.machine,
                    enclave=store.enclave,
                    thread_id=t,
                    master_secret=master,
                )
                read_section(
                    store.enclave.context(t),
                    fresh,
                    self.sealing,
                    section,
                    counter,
                    verify=verify,
                )
                restored.append(fresh)
            old_partitions = store.partitions
            store.partitions = restored
            for old in old_partitions:
                if old.wal is not None:
                    old.wal.close()
                    old.wal = None
            if getattr(store, "wal_dir", None) is not None:
                # Snapshot + verified replay of the log tail: frames
                # sealed after this checkpoint's rotation live in the
                # segment chain starting at its counter.
                store._attach_wals(counter)
        store._rekey(master)
        return store


# ---------------------------------------------------------------------------
# performance model of periodic snapshots
# ---------------------------------------------------------------------------
@dataclass
class SnapshotPolicy:
    """How (and how often) periodic snapshots run during a measurement.

    ``fixed_cost_scale`` scales the per-snapshot *fixed* costs (fork,
    sealing, the ~60 ms monotonic-counter bump) relative to the paper's
    60-second schedule.  Scaled benchmarks shrink the interval together
    with the data, so these interval-independent costs must shrink by the
    same factor to preserve the paper's snapshot duty cycle; it defaults
    to ``interval_us / 60 s``.  Pass 1.0 for unscaled (real-time) runs.
    """

    mode: str = MODE_NONE
    interval_us: float = 60_000_000.0  # paper: every 60 s (Redis default)
    sealed_meta_bytes: Optional[int] = None  # default: derived from store
    fixed_cost_scale: Optional[float] = None

    def __post_init__(self):
        if self.mode not in (MODE_NONE, MODE_NAIVE, MODE_OPTIMIZED):
            raise SnapshotError(f"unknown snapshot mode {self.mode!r}")
        if self.fixed_cost_scale is None:
            self.fixed_cost_scale = min(1.0, self.interval_us / 60_000_000.0)


class SnapshotScheduler:
    """Applies Fig. 19 snapshot costs to a running store's thread clocks.

    Experiments call :meth:`tick` between operations (cheap); the
    scheduler watches simulated time and injects stalls / per-write
    overheads according to the policy.  Snapshot activity is mirrored
    into the store's :class:`~repro.core.stats.StoreStats`
    (``snapshots``, ``snapshot_stall_us``, ``temp_table_merges``) so
    ``repro stats`` and experiment reports see it.
    """

    # Extra cycles a set pays during the optimized window: encrypt+insert
    # into the temporary table and update its metadata (Algorithm 1 L7).
    TEMP_TABLE_FACTOR = 0.6
    # Per-entry cost of folding the temporary table back into the main
    # table after the child finishes (Algorithm 1 L11).
    MERGE_CYCLES_PER_ENTRY = 2_500.0

    def __init__(self, store, policy: SnapshotPolicy):
        self.store = store  # ShieldStore or PartitionedShieldStore
        self.policy = policy
        self.machine = store.machine
        self.next_snapshot_us = policy.interval_us
        self.window_end_us: Optional[float] = None
        self.temp_table_writes = 0
        self.snapshots_taken = 0
        self.total_stall_us = 0.0
        self._stats = self._stats_target(store)

    @staticmethod
    def _stats_target(store) -> Optional[StoreStats]:
        """The StoreStats object snapshot counters are mirrored into.

        Single stores expose ``.stats`` directly; partitioned stores
        aggregate on demand, so the scheduler mirrors into partition 0
        (``merge`` sums partitions, so the aggregate stays correct).
        """
        stats = getattr(store, "stats", None)
        if isinstance(stats, StoreStats):
            return stats
        partitions = getattr(store, "partitions", None)
        if partitions:
            return partitions[0].stats
        return None

    # -- helpers ---------------------------------------------------------
    def _data_bytes(self) -> int:
        if hasattr(self.store, "partitions"):
            return sum(p.untrusted_bytes_live() for p in self.store.partitions)
        return self.store.untrusted_bytes_live()

    def _meta_bytes(self) -> int:
        if self.policy.sealed_meta_bytes is not None:
            return self.policy.sealed_meta_bytes
        if hasattr(self.store, "partitions"):
            return sum(
                p.config.num_mac_hashes * 16 + 64 for p in self.store.partitions
            )
        return self.store.config.num_mac_hashes * 16 + 64

    def _storage_us(self, nbytes: int) -> float:
        cost = self.machine.cost
        return cost.storage_seek_us + nbytes / cost.storage_write_bw_bytes_per_us

    def _stall_all(self, us: float) -> None:
        cycles = self.machine.cost.us_to_cycles(us)
        for clock in self.machine.clock.threads:
            clock.charge(cycles)
        self.total_stall_us += us
        if self._stats is not None:
            self._stats.snapshot_stall_us += us

    # -- the per-operation hook -----------------------------------------
    def tick(self, is_write: bool) -> None:
        """Advance the snapshot state machine; call once per operation."""
        if self.policy.mode == MODE_NONE:
            return
        now_us = self.machine.elapsed_us()
        if self.window_end_us is not None and now_us >= self.window_end_us:
            self._finish_window()
        if now_us >= self.next_snapshot_us:
            self._begin_snapshot()
        elif (
            self.policy.mode == MODE_OPTIMIZED
            and self.window_end_us is not None
            and is_write
        ):
            # Algorithm 1 line 7: mirror the write into the temp table.
            extra = self.machine.cost.op_dispatch_cycles * self.TEMP_TABLE_FACTOR
            extra += self.machine.cost.aes_cycles(64) * self.TEMP_TABLE_FACTOR
            self.machine.clock.threads[0].charge(extra)
            self.temp_table_writes += 1

    def _begin_snapshot(self) -> None:
        # A snapshot interval shorter than the previous copy-on-write
        # window means the window is still open here; its temp-table
        # merge (Algorithm 1 L11) must be paid before the next snapshot
        # resets the temp table, not silently dropped.
        if self.window_end_us is not None:
            self._finish_window()
        cost = self.machine.cost
        fixed = self.policy.fixed_cost_scale
        seal_us = fixed * cost.cycles_to_us(
            cost.aes_cycles(self._meta_bytes()) + cost.cmac_cycles(self._meta_bytes())
        )
        counter_us = fixed * cost.monotonic_counter_us
        meta_write_us = fixed * self._storage_us(self._meta_bytes())
        data_write_us = self._storage_us(self._data_bytes())
        self.snapshots_taken += 1
        if self._stats is not None:
            self._stats.snapshots += 1
        if self.policy.mode == MODE_NAIVE:
            # Serving is blocked for the entire snapshot.
            self._stall_all(seal_us + counter_us + meta_write_us + data_write_us)
            self.next_snapshot_us = (
                self.machine.elapsed_us() + self.policy.interval_us
            )
        else:
            # Optimized: stall only for seal + fork + counter + metadata;
            # the forked child writes entries concurrently.
            fork_us = fixed * cost.cycles_to_us(cost.fork_cycles)
            self._stall_all(seal_us + counter_us + fork_us + meta_write_us)
            self.window_end_us = self.machine.elapsed_us() + data_write_us
            self.temp_table_writes = 0
            self.next_snapshot_us = (
                self.machine.elapsed_us() + self.policy.interval_us
            )

    def _finish_window(self) -> None:
        # Algorithm 1 line 11: merge the temp table into the main table.
        merge_cycles = self.temp_table_writes * self.MERGE_CYCLES_PER_ENTRY
        self.machine.clock.threads[0].charge(merge_cycles)
        self.window_end_us = None
        self.temp_table_writes = 0
        if self._stats is not None:
            self._stats.temp_table_merges += 1
