"""Store configuration and the paper's named variants.

The evaluation compares four systems (paper §6.1): Baseline (naive
in-enclave table), Memcached+Graphene, ShieldBase (this design without
the §5 optimizations, multi-threading excepted) and ShieldOpt (all
optimizations).  :func:`shield_base` and :func:`shield_opt` build those
two; the Figure 14 ablation toggles the intermediate flags.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.cycles import MB

DEFAULT_NUM_BUCKETS = 8_000_000
DEFAULT_NUM_MAC_HASHES = 4_000_000


@dataclass(frozen=True)
class StoreConfig:
    """All knobs of a ShieldStore instance.

    Attributes
    ----------
    num_buckets:
        Hash buckets in the untrusted main table.  Paper default 8M.
    num_mac_hashes:
        In-enclave bucket-set MAC hashes (§4.3).  Paper default 4M;
        Figure 15 sweeps 1M-8M.
    mac_bucketing:
        §5.2 — keep per-bucket MAC arrays in untrusted memory instead of
        pointer-chasing entry chains for integrity reads.
    mac_bucket_capacity:
        MAC slots per MAC-bucket node before chaining (paper: 30).
    key_hint_enabled:
        §5.4 — 1-byte plaintext keyed hash of the key in each entry.
    two_step_search:
        §5.4 remedy — fall back to a full decrypt-everything search when
        the hint pass finds nothing (tolerates malicious hint corruption).
    use_extra_heap:
        §5.1 — in-enclave allocator carving untrusted chunks; when off,
        every entry allocation OCALLs out for memory.
    heap_chunk_bytes:
        sbrk granularity of the extra heap allocator (paper: 16 MB).
    pointer_check:
        §7 — validate that untrusted pointers lie outside the enclave's
        contiguous virtual range before dereferencing.
    cache_bytes:
        §6.3 — optional in-enclave LRU cache over hot entries
        (ShieldOpt+cache in Fig. 17).  0 disables.
    mac_cache_bytes:
        Optional enclave-resident cache of verified bucket-set MAC
        lists (:mod:`repro.core.maccache`): point reads verify against
        the in-enclave ground-truth copy in O(1) instead of regathering
        the whole set and recomputing the keyed hash (§4.3 cost traded
        against spare EPC, cf. Fig. 15).  0 disables.
    suite_name:
        Cipher suite backend; "aes-reference" is the faithful one,
        "fast-hashlib" keeps big benches quick (identical semantics).
    seed:
        Master-secret / IV determinism for reproducible runs.
    scale:
        Reporting-only note of the size scale a benchmark ran at.
    """

    num_buckets: int = DEFAULT_NUM_BUCKETS
    num_mac_hashes: int = DEFAULT_NUM_MAC_HASHES
    mac_bucketing: bool = True
    mac_bucket_capacity: int = 30
    key_hint_enabled: bool = True
    two_step_search: bool = True
    use_extra_heap: bool = True
    heap_chunk_bytes: int = 16 * MB
    pointer_check: bool = True
    cache_bytes: int = 0
    mac_cache_bytes: int = 0
    suite_name: str = "fast-hashlib"
    seed: int = 2019
    scale: float = 1.0

    def __post_init__(self):
        if self.num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if self.num_mac_hashes <= 0:
            raise ValueError("num_mac_hashes must be positive")
        if self.num_mac_hashes > self.num_buckets:
            raise ValueError(
                "num_mac_hashes cannot exceed num_buckets (each hash covers "
                ">=1 bucket, paper §4.3)"
            )
        if self.mac_bucket_capacity <= 0:
            raise ValueError("mac_bucket_capacity must be positive")
        if self.heap_chunk_bytes < 4096:
            raise ValueError("heap_chunk_bytes must be at least one page")
        if self.cache_bytes < 0 or self.mac_cache_bytes < 0:
            raise ValueError("cache budgets cannot be negative")

    def with_(self, **changes) -> "StoreConfig":
        """Functional update (alias for :func:`dataclasses.replace`)."""
        return replace(self, **changes)


def shield_base(num_buckets: int, num_mac_hashes: int, **overrides) -> StoreConfig:
    """ShieldStore without the §5 optimizations (paper's *ShieldBase*)."""
    defaults = dict(
        num_buckets=num_buckets,
        num_mac_hashes=num_mac_hashes,
        mac_bucketing=False,
        key_hint_enabled=False,
        two_step_search=False,
        use_extra_heap=False,
    )
    defaults.update(overrides)
    return StoreConfig(**defaults)


def shield_opt(num_buckets: int, num_mac_hashes: int, **overrides) -> StoreConfig:
    """Fully optimized ShieldStore (paper's *ShieldOpt*)."""
    defaults = dict(num_buckets=num_buckets, num_mac_hashes=num_mac_hashes)
    defaults.update(overrides)
    return StoreConfig(**defaults)
