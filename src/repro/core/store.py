"""ShieldStore: the paper's shielded key-value store (§4, §5).

The store runs "inside" a simulated enclave: its secrets (key ring,
bucket-set MAC hashes) live in enclave memory, while the main hash table
— bucket slots, entry records, MAC buckets — lives in untrusted memory
as real, attacker-visible bytes.  Every operation does the actual
cryptographic work (encrypt, decrypt, MAC, verify) and charges the
simulated cycle costs of the accesses it performs.

Operation anatomy (``get``; ``set``/``delete`` add a mutation phase):

1. keyed-hash the client key to a bucket and a 1-byte hint (§4.2, §5.4);
2. walk the untrusted chain, decrypting only hint-matching candidates;
3. collect every entry MAC of the covering bucket set — from MAC buckets
   (§5.2) or by pointer-chasing chains — and verify the in-enclave
   bucket-set hash (§4.3, replay defense);
4. verify the found entry's own MAC, then return the plaintext value.

With ``mac_cache_bytes`` configured, step 3's O(bucket-set) gather +
keyed-hash recompute collapses to an O(1) lookup in an enclave-resident
cache of already-verified MAC lists (:mod:`repro.core.maccache`); step 4
then compares against that in-enclave ground truth directly.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from hmac import compare_digest
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.allocator import make_allocator
from repro.core.cache import EnclaveCache
from repro.core.config import StoreConfig
from repro.core.entry import (
    HEADER_SIZE,
    MAC_SIZE,
    EntryHeader,
    mac_message,
    pack_header,
    unpack_header,
)
from repro.core.hashindex import BucketTable
from repro.core.macbucket import MacBucketStore
from repro.core.maccache import MacSetCache
from repro.core.mactree import MacTree
from repro.core.stats import StoreStats
from repro.crypto.keys import KeyRing
from repro.crypto.suite import make_suite
from repro.errors import IntegrityError, KeyNotFoundError, StoreError
from repro.net.message import (
    Request,
    encode_cas_value,
    encode_multi_items,
    encode_multi_keys,
)
from repro.sim.enclave import Enclave, ExecContext, Machine

_MAX_CHAIN = 1_000_000  # cycle guard against corrupted untrusted chains

# MRENCLAVE of the reference ShieldStore enclave build (any fixed 32 bytes).
DEFAULT_MEASUREMENT = bytes(range(32))


@dataclass
class FoundEntry:
    """Result of a successful chain search."""

    addr: int
    prev_addr: int      # 0 when the entry is the chain head
    index: int          # position within the chain (0 = head)
    header: EntryHeader
    key: bytes
    value: bytes
    enc_kv: bytes


@dataclass
class WalkResult:
    """Everything one chain traversal learned.

    ``candidates`` are entries that were decrypted but did not match the
    requested key (hint collisions — or tampered ciphertexts, which is
    why their MACs are verified before a miss is reported).
    ``chain_len`` is the full chain length when the walk reached the end
    (always on a miss), or -1 when it stopped early at a match.
    """

    found: Optional[FoundEntry]
    macs: List[bytes]
    chain_len: int
    candidates: List[Tuple[int, EntryHeader, bytes]]


class ShieldStore:
    """A single-partition shielded key-value store.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.StoreConfig` to build with.
    machine:
        Simulated host; a fresh single-thread machine is created when
        omitted.
    enclave:
        Enclave to run in; created on ``machine`` when omitted.
    thread_id:
        The simulated thread that serves this store's operations
        (partitioned stores assign one store per thread, §5.3).
    master_secret:
        32-byte enclave master secret; drawn from the machine RNG when
        omitted.  Sealing restores it across restarts.
    """

    def __init__(
        self,
        config: StoreConfig,
        machine: Optional[Machine] = None,
        enclave: Optional[Enclave] = None,
        thread_id: int = 0,
        master_secret: Optional[bytes] = None,
    ):
        self.config = config
        self.machine = machine if machine is not None else Machine(seed=config.seed)
        self.enclave = (
            enclave
            if enclave is not None
            else Enclave(self.machine, DEFAULT_MEASUREMENT)
        )
        self.thread_id = thread_id
        self._ctx = self.enclave.context(thread_id)
        if master_secret is None:
            master_secret = bytes(
                self.machine.rng.getrandbits(8) for _ in range(32)
            )
        self.keyring = KeyRing(master_secret)
        self.suite = make_suite(
            config.suite_name, self.keyring.enc_key, self.keyring.mac_key
        )
        self.allocator = make_allocator(
            self.enclave, config.use_extra_heap, config.heap_chunk_bytes
        )
        self.buckets = BucketTable(self.enclave, config.num_buckets)
        self.mactree = MacTree(
            self.enclave, config.num_mac_hashes, config.num_buckets
        )
        self.macbuckets = (
            MacBucketStore(self.enclave, self.allocator, config.mac_bucket_capacity)
            if config.mac_bucketing
            else None
        )
        self.cache = (
            EnclaveCache(self.enclave, config.cache_bytes)
            if config.cache_bytes > 0
            else None
        )
        self.maccache = (
            MacSetCache(self.enclave, config.mac_cache_bytes)
            if config.mac_cache_bytes > 0
            else None
        )
        self.stats = StoreStats()
        self.count = 0
        # Entry-IV allocator: a per-instance entropy salt (top 64 bits)
        # plus a monotone keystream-block counter (bottom 64 bits).
        # Every encryption takes a fresh, disjoint block span, so (key,
        # IV) pairs never repeat — not within this store, and (with
        # 2^-64 salt-collision probability) not across incarnations
        # that re-derive the same entry key from a restored master.
        # The deterministic machine RNG must NOT supply IVs: a respawned
        # worker or restored snapshot replays the same "random" stream
        # under the same key.
        self._iv_salt = int.from_bytes(os.urandom(8), "big")
        self._iv_seq = 0
        # Optional sealed write-ahead log (repro.core.wal): when
        # attached, every mutating op appends a sealed frame *before*
        # applying, so acknowledged writes survive a crash as
        # snapshot + replayable log tail.
        self.wal = None

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _context(self, ctx: Optional[ExecContext]) -> ExecContext:
        return ctx if ctx is not None else self._ctx

    def _bucket_of(self, ctx: ExecContext, key: bytes) -> int:
        ctx.charge_keyed_hash()
        return self.keyring.keyed_bucket_hash(key, self.config.num_buckets)

    def _hint_of(self, ctx: ExecContext, key: bytes) -> int:
        ctx.charge_keyed_hash()
        return self.keyring.key_hint(key)

    def _charge_copy(self, ctx: ExecContext, nbytes: int, write: bool) -> None:
        # Copying request/response payloads across the enclave boundary
        # (the paper's "copying data back and forth from an enclave").
        ctx.charge(self.machine.cost.mem_cycles(nbytes, write, in_epc=True))

    def _mem(self):
        return self.machine.memory

    def _alloc_iv(self, nbytes: int) -> bytes:
        """A fresh IV/counter block covering ``nbytes`` of keystream.

        Advances the monotone block counter by the payload's worst-case
        block count (16-byte AES blocks; the fast suite's 32-byte chunks
        consume at most as many), so consecutive allocations hand out
        disjoint keystream spans.  Cycle accounting stays at the call
        sites: inserts charge the one-block ``sgx_read_rand`` cost real
        ShieldStore pays per fresh entry IV; updates charge nothing,
        like the counter bump they replace.
        """
        iv_ctr = struct.pack(">QQ", self._iv_salt, self._iv_seq)
        self._iv_seq += (nbytes + 15) // 16
        return iv_ctr

    def _wal_append(self, op: str, key: bytes, value: bytes = b"") -> None:
        """Seal one mutating request into the WAL *before* applying it.

        With no log attached this is one attribute check.  The append
        precedes every state change, so a crash at any later point
        leaves the operation replayable; an op that goes on to fail
        deterministically (miss, type error) fails the same way on
        replay.
        """
        if self.wal is not None:
            self.wal.append(Request(op, key, value))

    # -- entry record I/O ---------------------------------------------------
    def _read_header(self, ctx: ExecContext, addr: int) -> EntryHeader:
        header = unpack_header(self._mem().read(ctx, addr, HEADER_SIZE))
        self.buckets.check_pointer(header.next_ptr, self.config.pointer_check)
        return header

    def _read_enc_kv(self, ctx: ExecContext, addr: int, header: EntryHeader) -> bytes:
        return self._mem().read(ctx, addr + HEADER_SIZE, header.kv_size)

    def _read_entry_mac(self, ctx: ExecContext, addr: int, header: EntryHeader) -> bytes:
        return self._mem().read(
            ctx, addr + HEADER_SIZE + header.kv_size, MAC_SIZE
        )

    def _decrypt_kv(
        self, ctx: ExecContext, header: EntryHeader, enc_kv: bytes
    ) -> Tuple[bytes, bytes]:
        ctx.charge_aes(len(enc_kv))
        self.machine.counters.decryptions += 1
        self.stats.search_decryptions += 1
        plain = self.suite.decrypt(header.iv_ctr, enc_kv)
        return plain[: header.key_size], plain[header.key_size :]

    def _write_entry(
        self,
        ctx: ExecContext,
        addr: int,
        header: EntryHeader,
        enc_kv: bytes,
        mac: bytes,
    ) -> None:
        self._mem().write(ctx, addr, pack_header(header) + enc_kv + mac)

    def _encrypt_entry(
        self, ctx: ExecContext, key: bytes, value: bytes, iv_ctr: bytes, next_ptr: int
    ) -> Tuple[EntryHeader, bytes, bytes]:
        header = EntryHeader(
            next_ptr=next_ptr,
            key_hint=self.keyring.key_hint(key),
            key_size=len(key),
            val_size=len(value),
            iv_ctr=iv_ctr,
        )
        ctx.charge_aes(len(key) + len(value))
        enc_kv = self.suite.encrypt(iv_ctr, key + value)
        ctx.charge_cmac(len(enc_kv) + 25)
        mac = self.suite.mac(mac_message(header, enc_kv))
        return header, enc_kv, mac

    # ------------------------------------------------------------------
    # chain search
    # ------------------------------------------------------------------
    def _walk(
        self,
        ctx: ExecContext,
        bucket: int,
        key: bytes,
        hint: int,
        decrypt_all: bool,
        collect_macs: bool,
    ) -> WalkResult:
        """Walk one bucket chain looking for ``key``.

        ``macs`` is only populated when ``collect_macs`` (the
        non-MAC-bucket integrity path, which must pointer-chase every
        entry anyway).  That path defers candidate decryption and runs
        it through the suite's batched keystream primitive
        (:meth:`_decrypt_candidates`); the MAC-bucket path keeps inline
        per-entry decryption so the §5.2 early exit still skips the
        chain tail.
        """
        use_hints = self.config.key_hint_enabled and not decrypt_all
        macs: List[bytes] = []
        candidates: List[Tuple[int, EntryHeader, bytes]] = []
        pending: List[Tuple[int, int, int, EntryHeader]] = []
        found: Optional[FoundEntry] = None
        prev = 0
        addr = self.buckets.read_head(ctx, bucket, self.config.pointer_check)
        index = 0
        while addr:
            if index >= _MAX_CHAIN:
                raise StoreError("hash chain cycle detected (corrupted table)")
            header = self._read_header(ctx, addr)
            self.stats.chain_steps += 1
            if collect_macs:
                macs.append(self._read_entry_mac(ctx, addr, header))
                if header.key_size == len(key):
                    if not use_hints or header.key_hint == hint:
                        pending.append((index, addr, prev, header))
                    else:
                        self.stats.hint_skips += 1
            elif found is None and header.key_size == len(key):
                if not use_hints or header.key_hint == hint:
                    enc_kv = self._read_enc_kv(ctx, addr, header)
                    plain_key, plain_val = self._decrypt_kv(ctx, header, enc_kv)
                    if plain_key == key:
                        found = FoundEntry(
                            addr, prev, index, header, plain_key, plain_val, enc_kv
                        )
                        # MAC buckets provide the remaining MACs; the
                        # chain walk can stop at the match (§5.2).
                        return WalkResult(found, macs, -1, candidates)
                    candidates.append((index, header, enc_kv))
                elif use_hints:
                    self.stats.hint_skips += 1
            prev = addr
            addr = header.next_ptr
            index += 1
        if pending:
            found = self._decrypt_candidates(ctx, key, pending, candidates)
        return WalkResult(found, macs, index, candidates)

    # Candidates decrypted per batched-keystream call; chunking keeps
    # the early stop at a match from speculating far past it.
    _DECRYPT_CHUNK = 8

    def _decrypt_candidates(
        self,
        ctx: ExecContext,
        key: bytes,
        pending: List[Tuple[int, int, int, EntryHeader]],
        candidates: List[Tuple[int, EntryHeader, bytes]],
    ) -> Optional[FoundEntry]:
        """Decrypt deferred walk candidates through ``decrypt_many``.

        Candidates are processed in chain order, one fixed-size chunk
        per batched keystream call, stopping after the chunk containing
        the plaintext key match.  Ciphertext reads and AES cycles are
        charged per decrypted entry, exactly as the inline path would
        charge them; every decrypted non-match lands in ``candidates``
        so :meth:`_verify_walk` authenticates it before a miss or hit
        is reported.
        """
        for start in range(0, len(pending), self._DECRYPT_CHUNK):
            chunk = pending[start : start + self._DECRYPT_CHUNK]
            enc_kvs = [
                self._read_enc_kv(ctx, addr, header)
                for _index, addr, _prev, header in chunk
            ]
            for (_i, _a, _p, header), enc_kv in zip(chunk, enc_kvs):
                ctx.charge_aes(len(enc_kv))
                self.machine.counters.decryptions += 1
                self.stats.search_decryptions += 1
            plains = self.suite.decrypt_many(
                [
                    (header.iv_ctr, enc_kv)
                    for (_i, _a, _p, header), enc_kv in zip(chunk, enc_kvs)
                ]
            )
            found: Optional[FoundEntry] = None
            for (index, addr, prev, header), enc_kv, plain in zip(
                chunk, enc_kvs, plains
            ):
                plain_key = plain[: header.key_size]
                if found is None and plain_key == key:
                    found = FoundEntry(
                        addr, prev, index, header,
                        plain_key, plain[header.key_size :], enc_kv,
                    )
                else:
                    candidates.append((index, header, enc_kv))
            if found is not None:
                return found
        return None

    def _search(self, ctx: ExecContext, bucket: int, key: bytes, hint: int) -> WalkResult:
        """Hint-guided search with the §5.4 two-step fallback.

        The MAC list in the result is populated only in the
        pointer-chasing (no MAC bucket) configuration.
        """
        start = perf_counter()
        collect = self.macbuckets is None
        walk = self._walk(
            ctx, bucket, key, hint, decrypt_all=False, collect_macs=collect
        )
        if (
            walk.found is None
            and self.config.key_hint_enabled
            and self.config.two_step_search
        ):
            # Hints may have been corrupted (availability attack, §5.4):
            # re-walk decrypting everything before concluding absence.
            self.stats.full_searches += 1
            walk = self._walk(
                ctx, bucket, key, hint, decrypt_all=True, collect_macs=collect
            )
        self.stats.stage_walk_s += perf_counter() - start
        return walk

    # ------------------------------------------------------------------
    # integrity plumbing
    # ------------------------------------------------------------------
    def _collect_bucket_macs(self, ctx: ExecContext, bucket: int) -> List[bytes]:
        """All entry MACs of ``bucket`` in chain order."""
        if self.macbuckets is not None:
            head = self.buckets.read_mac_ptr(ctx, bucket, self.config.pointer_check)
            return self.macbuckets.read_all(ctx, head) if head else []
        macs: List[bytes] = []
        addr = self.buckets.read_head(ctx, bucket, self.config.pointer_check)
        steps = 0
        while addr:
            if steps >= _MAX_CHAIN:
                raise StoreError("hash chain cycle detected (corrupted table)")
            header = self._read_header(ctx, addr)
            macs.append(self._read_entry_mac(ctx, addr, header))
            addr = header.next_ptr
            steps += 1
        return macs

    def _gather_set_macs(
        self,
        ctx: ExecContext,
        bucket: int,
        own_macs: Optional[List[bytes]] = None,
    ) -> Tuple[int, Dict[int, List[bytes]]]:
        """MACs of every bucket in the covering set, keyed by bucket."""
        start = perf_counter()
        set_id = self.mactree.set_of(bucket)
        by_bucket: Dict[int, List[bytes]] = {}
        for member in self.mactree.buckets_of(set_id):
            if member == bucket and own_macs is not None:
                by_bucket[member] = own_macs
            else:
                by_bucket[member] = self._collect_bucket_macs(ctx, member)
        self.stats.stage_verify_s += perf_counter() - start
        return set_id, by_bucket

    @staticmethod
    def _flatten(by_bucket: Dict[int, List[bytes]]) -> List[bytes]:
        return [mac for b in sorted(by_bucket) for mac in by_bucket[b]]

    def _verify_set(
        self, ctx: ExecContext, set_id: int, by_bucket: Dict[int, List[bytes]]
    ) -> None:
        start = perf_counter()
        self.stats.integrity_checks += 1
        self.mactree.verify_set(ctx, self.suite, set_id, self._flatten(by_bucket))
        self.stats.stage_verify_s += perf_counter() - start

    def _update_set(
        self, ctx: ExecContext, set_id: int, by_bucket: Dict[int, List[bytes]]
    ) -> None:
        self.mactree.update_set(ctx, self.suite, set_id, self._flatten(by_bucket))
        if self.maccache is not None:
            # Write-through: every mutation path funnels here, so the
            # enclave-resident verified copy can never go stale relative
            # to what was just written to untrusted memory.
            self.maccache.store(ctx, set_id, by_bucket)
            self.stats.mac_cache_evictions = self.maccache.evictions

    def _verify_covering_set(
        self,
        ctx: ExecContext,
        bucket: int,
        walk: Optional["WalkResult"] = None,
        own_macs: Optional[List[bytes]] = None,
    ) -> Tuple[int, Dict[int, List[bytes]]]:
        """Authenticated MAC lists for ``bucket``'s covering set.

        Fast path: the enclave-resident :class:`MacSetCache` already
        holds the verified lists — enclave memory is ground truth, so
        neither the untrusted re-gather nor the keyed set-hash
        recomputation is needed (the caller still authenticates the
        entries it uses against the returned lists).  On a miss the
        full §4.3 gather + verification runs and repopulates the cache.
        """
        set_id = self.mactree.set_of(bucket)
        if self.maccache is not None:
            cached = self.maccache.lookup(ctx, set_id)
            if cached is not None:
                self.stats.mac_cache_hits += 1
                return set_id, cached
            self.stats.mac_cache_misses += 1
        if own_macs is None and walk is not None and self.macbuckets is None:
            own_macs = walk.macs
        _sid, by_bucket = self._gather_set_macs(ctx, bucket, own_macs)
        self._verify_set(ctx, set_id, by_bucket)
        if self.maccache is not None:
            self.maccache.store(ctx, set_id, by_bucket)
            self.stats.mac_cache_evictions = self.maccache.evictions
        return set_id, by_bucket

    def _verify_lookup(
        self, ctx: ExecContext, key: bytes
    ) -> Tuple[int, int, Dict[int, List[bytes]], "WalkResult"]:
        """Shared single-op read prologue: search the chain, obtain the
        authenticated covering-set MAC lists, and authenticate what the
        walk concluded.  Returns ``(bucket, set_id, by_bucket, walk)``.
        """
        bucket = self._bucket_of(ctx, key)
        hint = self._hint_of(ctx, key) if self.config.key_hint_enabled else 0
        walk = self._search(ctx, bucket, key, hint)
        set_id, by_bucket = self._verify_covering_set(ctx, bucket, walk)
        self._verify_walk(ctx, walk, by_bucket[bucket])
        return bucket, set_id, by_bucket, walk

    def _verify_found(
        self,
        ctx: ExecContext,
        found: FoundEntry,
        bucket_macs: List[bytes],
    ) -> None:
        """Check the found entry's own MAC against the authenticated copy.

        ``bucket_macs`` is ground truth either way it was obtained — a
        just-verified §4.3 gather, or the enclave-cached copy at the
        entry's chain position (the O(1) hit path) — so this one
        constant-time comparison is the entire per-entry authentication.
        """
        start = perf_counter()
        ctx.charge_cmac(len(found.enc_kv) + 25)
        computed = self.suite.mac(mac_message(found.header, found.enc_kv))
        if found.index >= len(bucket_macs):
            raise IntegrityError(
                "entry is missing from its MAC bucket (tampered metadata)"
            )
        if not compare_digest(computed, bucket_macs[found.index]):
            raise IntegrityError(
                f"entry MAC mismatch for key {self.keyring.redact(found.key)}: "
                "untrusted entry bytes were tampered with"
            )
        self.stats.stage_crypto_s += perf_counter() - start

    def _verify_walk(
        self,
        ctx: ExecContext,
        walk: "WalkResult",
        bucket_macs: List[bytes],
    ) -> None:
        """Authenticate everything a walk concluded (hardening beyond the
        paper; see DESIGN.md).

        * Decrypted-but-unmatched candidates are verified, so a flipped
          ciphertext cannot masquerade as a different key and turn into a
          silent authenticated miss.
        * On a miss, the observed chain length must equal the
          authenticated MAC count — in MAC-bucket mode a truncated chain
          would otherwise hide entries while the set hash still matched.
        """
        start = perf_counter()
        for index, header, enc_kv in walk.candidates:
            ctx.charge_cmac(len(enc_kv) + 25)
            computed = self.suite.mac(mac_message(header, enc_kv))
            if index >= len(bucket_macs) or not compare_digest(
                computed, bucket_macs[index]
            ):
                raise IntegrityError(
                    f"chain entry at position {index} failed verification: "
                    "untrusted entry bytes were tampered with"
                )
        if (
            walk.found is None
            and walk.chain_len >= 0
            and walk.chain_len != len(bucket_macs)
        ):
            raise IntegrityError(
                f"chain length {walk.chain_len} does not match the "
                f"authenticated MAC count {len(bucket_macs)}: entries were "
                "hidden or injected"
            )
        self.stats.stage_crypto_s += perf_counter() - start

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def get(self, key: bytes, ctx: Optional[ExecContext] = None) -> bytes:
        """Return the value stored under ``key``.

        Raises :class:`KeyNotFoundError` when absent,
        :class:`IntegrityError`/:class:`ReplayError` when untrusted state
        fails verification.
        """
        ctx = self._context(ctx)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        self.stats.gets += 1
        key = bytes(key)
        if self.cache is not None:
            cached = self.cache.lookup(ctx, key)
            if cached is not None:
                self.stats.cache_hits += 1
                self.stats.hits += 1
                return cached
            self.stats.cache_misses += 1
        bucket, _set_id, by_bucket, walk = self._verify_lookup(ctx, key)
        found = walk.found
        if found is None:
            self.stats.misses += 1
            # shieldlint: ignore[trust-boundary] -- structured miss signal: the key rides as the exception argument, every boundary catches it (execute_request maps it to STATUS_MISS) and only redacted text may enter transported messages
            raise KeyNotFoundError(key)
        self._verify_found(ctx, found, by_bucket[bucket])
        self._charge_copy(ctx, len(found.value), write=True)
        if self.cache is not None:
            self.cache.insert(ctx, key, found.value)
        self.stats.hits += 1
        return found.value

    def set(self, key: bytes, value: bytes, ctx: Optional[ExecContext] = None) -> None:
        """Insert or update ``key`` -> ``value``."""
        ctx = self._context(ctx)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        self.stats.sets += 1
        key, value = bytes(key), bytes(value)
        self._wal_append("set", key, value)
        self._charge_copy(ctx, len(key) + len(value), write=False)
        bucket, set_id, by_bucket, walk = self._verify_lookup(ctx, key)
        found = walk.found
        if found is not None:
            self._update_entry(ctx, bucket, set_id, by_bucket, found, value)
            self.stats.updates += 1
        else:
            self._insert_entry(ctx, bucket, set_id, by_bucket, key, value)
            self.stats.inserts += 1
        if self.cache is not None:
            self.cache.insert(ctx, key, value)

    def delete(self, key: bytes, ctx: Optional[ExecContext] = None) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent."""
        ctx = self._context(ctx)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        self.stats.deletes += 1
        key = bytes(key)
        self._wal_append("delete", key)
        bucket, set_id, by_bucket, walk = self._verify_lookup(ctx, key)
        found = walk.found
        if found is None:
            self.stats.misses += 1
            # shieldlint: ignore[trust-boundary] -- structured miss signal: the key rides as the exception argument, every boundary catches it (execute_request maps it to STATUS_MISS) and only redacted text may enter transported messages
            raise KeyNotFoundError(key)
        self._verify_found(ctx, found, by_bucket[bucket])
        self._remove_entry(ctx, bucket, set_id, by_bucket, found)

    def append(self, key: bytes, suffix: bytes, ctx: Optional[ExecContext] = None) -> bytes:
        """Append ``suffix`` to the value (server-side op, §6.2).

        Creates the key when absent (Redis ``APPEND`` semantics).
        Returns the new value.
        """
        ctx = self._context(ctx)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        self.stats.appends += 1
        key, suffix = bytes(key), bytes(suffix)
        self._wal_append("append", key, suffix)
        self._charge_copy(ctx, len(key) + len(suffix), write=False)
        bucket, set_id, by_bucket, walk = self._verify_lookup(ctx, key)
        found = walk.found
        if found is None:
            self._insert_entry(ctx, bucket, set_id, by_bucket, key, suffix)
            self.stats.inserts += 1
            new_value = suffix
        else:
            self._verify_found(ctx, found, by_bucket[bucket])
            new_value = found.value + suffix
            self._update_entry(ctx, bucket, set_id, by_bucket, found, new_value)
            self.stats.updates += 1
        if self.cache is not None:
            self.cache.insert(ctx, key, new_value)
        return new_value

    def increment(
        self, key: bytes, delta: int = 1, ctx: Optional[ExecContext] = None
    ) -> int:
        """Add ``delta`` to an ASCII-integer value (server-side op, §3.2).

        Creates the key at ``delta`` when absent (Redis ``INCRBY``).
        Returns the new integer value.
        """
        ctx = self._context(ctx)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        self.stats.increments += 1
        key = bytes(key)
        self._wal_append("increment", key, str(delta).encode())
        bucket, set_id, by_bucket, walk = self._verify_lookup(ctx, key)
        found = walk.found
        if found is None:
            new_int = delta
            self._insert_entry(
                ctx, bucket, set_id, by_bucket, key, str(new_int).encode()
            )
            self.stats.inserts += 1
        else:
            self._verify_found(ctx, found, by_bucket[bucket])
            try:
                new_int = int(found.value.decode("ascii")) + delta
            except (UnicodeDecodeError, ValueError):
                raise StoreError(
                    f"value under {self.keyring.redact(key)} is not an "
                    "ASCII integer"
                ) from None
            self._update_entry(
                ctx, bucket, set_id, by_bucket, found, str(new_int).encode()
            )
            self.stats.updates += 1
        if self.cache is not None:
            self.cache.insert(ctx, key, str(new_int).encode())
        return new_int

    def compare_and_swap(
        self,
        key: bytes,
        expected: bytes,
        new_value: bytes,
        ctx: Optional[ExecContext] = None,
    ) -> bool:
        """Atomically replace ``key``'s value iff it equals ``expected``.

        Another §3.2 server-side operation: the comparison happens on the
        plaintext *inside the enclave*, so the client never round-trips
        the current value, and the host observes only that an entry was
        rewritten.  Returns True on swap, False on value mismatch; raises
        :class:`KeyNotFoundError` when absent.
        """
        ctx = self._context(ctx)
        ctx.charge(self.machine.cost.op_dispatch_cycles)
        key, expected, new_value = bytes(key), bytes(expected), bytes(new_value)
        self._wal_append("cas", key, encode_cas_value(expected, new_value))
        self._charge_copy(ctx, len(key) + len(expected) + len(new_value), write=False)
        bucket, set_id, by_bucket, walk = self._verify_lookup(ctx, key)
        if walk.found is None:
            self.stats.misses += 1
            # shieldlint: ignore[trust-boundary] -- structured miss signal: the key rides as the exception argument, every boundary catches it (execute_request maps it to STATUS_MISS) and only redacted text may enter transported messages
            raise KeyNotFoundError(key)
        self._verify_found(ctx, walk.found, by_bucket[bucket])
        if walk.found.value != expected:
            return False
        self._update_entry(ctx, bucket, set_id, by_bucket, walk.found, new_value)
        self.stats.sets += 1
        self.stats.updates += 1
        if self.cache is not None:
            self.cache.insert(ctx, key, new_value)
        return True

    def contains(self, key: bytes, ctx: Optional[ExecContext] = None) -> bool:
        """Membership test with full integrity verification."""
        try:
            self.get(key, ctx)
            return True
        except KeyNotFoundError:
            return False

    def _batch_step(
        self,
        ctx: ExecContext,
        key: bytes,
        verified_sets: Dict[int, Dict[int, List[bytes]]],
    ) -> Tuple[int, int, Dict[int, List[bytes]], WalkResult]:
        """One batched operation's search plus amortized set verification.

        The first operation of a batch touching a set gathers and
        verifies it; later operations reuse the authenticated (and
        batch-locally maintained) MAC lists from ``verified_sets``.
        Dirty sets must NOT be re-verified mid-batch — their stored
        hashes are stale until the batch flushes — which the cache
        guarantees structurally: a set stays cached from first touch.

        The enclave-resident MAC cache is consulted first: its lists
        are ground truth across batches, and — because mutations update
        the shared dict object in place and ``verified_sets`` is seeded
        with that same object on first touch — a mid-batch hit on a
        dirty set returns the batch-locally maintained lists, never a
        stale copy.
        """
        bucket = self._bucket_of(ctx, key)
        hint = self._hint_of(ctx, key) if self.config.key_hint_enabled else 0
        walk = self._search(ctx, bucket, key, hint)
        set_id = self.mactree.set_of(bucket)
        by_bucket = None
        if self.maccache is not None:
            by_bucket = self.maccache.lookup(ctx, set_id)
        if by_bucket is not None:
            self.stats.mac_cache_hits += 1
            verified_sets.setdefault(set_id, by_bucket)
        else:
            by_bucket = verified_sets.get(set_id)
            if by_bucket is not None:
                self.stats.batch_verifications_saved += 1
            else:
                if self.maccache is not None:
                    self.stats.mac_cache_misses += 1
                _sid, by_bucket = self._gather_set_macs(
                    ctx, bucket, walk.macs if self.macbuckets is None else None
                )
                self._verify_set(ctx, set_id, by_bucket)
                self.stats.batch_sets_verified += 1
                if self.maccache is not None:
                    self.maccache.store(ctx, set_id, by_bucket)
                    self.stats.mac_cache_evictions = self.maccache.evictions
                verified_sets[set_id] = by_bucket
        self._verify_walk(ctx, walk, by_bucket[bucket])
        return bucket, set_id, by_bucket, walk

    def multi_get(
        self, keys, ctx: Optional[ExecContext] = None
    ) -> Dict[bytes, Optional[bytes]]:
        """Batched lookup (memcached ``get_multi`` semantics).

        Returns a dict with one entry per requested key; absent keys map
        to ``None``.  Keys that share a bucket set amortize the set-hash
        verification: the integrity read covering the whole set is done
        once per set instead of once per key.
        """
        ctx = self._context(ctx)
        self.stats.batches += 1
        results: Dict[bytes, Optional[bytes]] = {}
        verified_sets: Dict[int, Dict[int, List[bytes]]] = {}
        for key in keys:
            key = bytes(key)
            ctx.charge(self.machine.cost.op_dispatch_cycles // 2)
            self.stats.gets += 1
            self.stats.batch_ops += 1
            if self.cache is not None:
                cached = self.cache.lookup(ctx, key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self.stats.hits += 1
                    results[key] = cached
                    continue
                self.stats.cache_misses += 1
            bucket, _set_id, by_bucket, walk = self._batch_step(
                ctx, key, verified_sets
            )
            if walk.found is None:
                self.stats.misses += 1
                results[key] = None
                continue
            self._verify_found(ctx, walk.found, by_bucket[bucket])
            self._charge_copy(ctx, len(walk.found.value), write=True)
            if self.cache is not None:
                self.cache.insert(ctx, key, walk.found.value)
            self.stats.hits += 1
            results[key] = walk.found.value
        return results

    def multi_set(self, items, ctx: Optional[ExecContext] = None) -> None:
        """Batched insert/update (memcached ``set_multi`` semantics).

        ``items`` is a dict or an iterable of ``(key, value)`` pairs;
        later pairs for a repeated key win.  Batching amortizes the
        per-set integrity work twice over:

        * like :meth:`multi_get`, each touched bucket set is gathered
          and verified once per batch instead of once per operation;
        * per-set **dirty tracking** — mutations update the untrusted
          bytes and the batch-local authenticated MAC lists immediately,
          but the in-enclave set hash is recomputed and stored once per
          dirty set when the batch completes, not once per write.

        Untrusted state is momentarily ahead of the enclave set hashes
        mid-batch; the flush in the ``finally`` block restores the
        invariant even when verification fails part-way, so every
        operation the batch did apply remains readable afterwards.
        """
        ctx = self._context(ctx)
        if isinstance(items, dict):
            items = items.items()
        pairs = [(bytes(key), bytes(value)) for key, value in items]
        if pairs:
            self._wal_append("mset", b"", encode_multi_items(pairs))
        self.stats.batches += 1
        verified_sets: Dict[int, Dict[int, List[bytes]]] = {}
        dirty_sets: set = set()
        mutations = 0
        try:
            for key, value in pairs:
                ctx.charge(self.machine.cost.op_dispatch_cycles // 2)
                self.stats.sets += 1
                self.stats.batch_ops += 1
                self._charge_copy(ctx, len(key) + len(value), write=False)
                bucket, set_id, by_bucket, walk = self._batch_step(
                    ctx, key, verified_sets
                )
                if walk.found is not None:
                    self._update_entry(
                        ctx, bucket, set_id, by_bucket, walk.found, value,
                        update_set=False,
                    )
                    self.stats.updates += 1
                else:
                    self._insert_entry(
                        ctx, bucket, set_id, by_bucket, key, value,
                        update_set=False,
                    )
                    self.stats.inserts += 1
                dirty_sets.add(set_id)
                mutations += 1
                if self.cache is not None:
                    self.cache.insert(ctx, key, value)
        finally:
            for set_id in sorted(dirty_sets):
                self._update_set(ctx, set_id, verified_sets[set_id])
            self.stats.batch_set_updates_saved += max(
                0, mutations - len(dirty_sets)
            )

    def multi_delete(
        self, keys, ctx: Optional[ExecContext] = None
    ) -> Dict[bytes, bool]:
        """Batched removal; returns ``{key: was_present}``.

        Unlike single-key :meth:`delete`, absent keys do not raise —
        they report ``False`` — so one cold key cannot abort the rest of
        the batch.  Integrity failures still raise immediately.  Set
        hashes are flushed once per dirty set (same dirty-tracking
        discipline as :meth:`multi_set`).
        """
        ctx = self._context(ctx)
        keys = [bytes(key) for key in keys]
        if keys:
            self._wal_append("mdelete", b"", encode_multi_keys(keys))
        self.stats.batches += 1
        results: Dict[bytes, bool] = {}
        verified_sets: Dict[int, Dict[int, List[bytes]]] = {}
        dirty_sets: set = set()
        mutations = 0
        try:
            for key in keys:
                ctx.charge(self.machine.cost.op_dispatch_cycles // 2)
                self.stats.deletes += 1
                self.stats.batch_ops += 1
                bucket, set_id, by_bucket, walk = self._batch_step(
                    ctx, key, verified_sets
                )
                if walk.found is None:
                    self.stats.misses += 1
                    # A duplicate of a key already deleted earlier in the
                    # batch keeps its True outcome.
                    results.setdefault(key, False)
                    continue
                self._verify_found(ctx, walk.found, by_bucket[bucket])
                self._remove_entry(
                    ctx, bucket, set_id, by_bucket, walk.found,
                    update_set=False,
                )
                dirty_sets.add(set_id)
                mutations += 1
                results[key] = True
        finally:
            for set_id in sorted(dirty_sets):
                self._update_set(ctx, set_id, verified_sets[set_id])
            self.stats.batch_set_updates_saved += max(
                0, mutations - len(dirty_sets)
            )
        return results

    def __len__(self) -> int:
        return self.count

    def audit(self, ctx: Optional[ExecContext] = None) -> int:
        """Full-table integrity audit; returns the number of entries checked.

        Verifies every bucket-set hash *and* every entry's own MAC — the
        strongest offline check available (an admin operation, e.g. after
        a restore or on a schedule).  Deliberately bypasses the MAC
        cache: an audit's job is to re-derive trust from the in-enclave
        set hashes alone.  Raises the usual
        :class:`~repro.errors.ReplayError`/:class:`~repro.errors.IntegrityError`
        on the first inconsistency.
        """
        ctx = self._context(ctx)
        checked = 0
        for set_id in range(self.config.num_mac_hashes):
            by_bucket = {
                b: self._collect_bucket_macs(ctx, b)
                for b in self.mactree.buckets_of(set_id)
            }
            if any(by_bucket.values()) or self.mactree.read_hash(
                ctx, set_id
            ) != bytes(16):
                self._verify_set(ctx, set_id, by_bucket)
            for bucket, macs in by_bucket.items():
                addr = self.buckets.read_head(ctx, bucket, self.config.pointer_check)
                index = 0
                while addr:
                    header = self._read_header(ctx, addr)
                    enc_kv = self._read_enc_kv(ctx, addr, header)
                    ctx.charge_cmac(len(enc_kv) + 25)
                    computed = self.suite.mac(mac_message(header, enc_kv))
                    if index >= len(macs) or not compare_digest(
                        computed, macs[index]
                    ):
                        raise IntegrityError(
                            f"audit: entry {index} of bucket {bucket} fails "
                            "verification"
                        )
                    addr = header.next_ptr
                    index += 1
                    checked += 1
                if index != len(macs):
                    raise IntegrityError(
                        f"audit: bucket {bucket} chain length {index} != "
                        f"authenticated MAC count {len(macs)}"
                    )
        return checked

    # ------------------------------------------------------------------
    # mutation internals
    # ------------------------------------------------------------------
    def _update_entry(
        self,
        ctx: ExecContext,
        bucket: int,
        set_id: int,
        by_bucket: Dict[int, List[bytes]],
        found: FoundEntry,
        new_value: bytes,
        update_set: bool = True,
    ) -> None:
        self._verify_found(ctx, found, by_bucket[bucket])
        # A fresh disjoint span, NOT increment_iv_ctr(old_iv): advancing
        # one block would overlap the old ciphertext's keystream span
        # for any record longer than one block (two-time pad).
        new_iv = self._alloc_iv(len(found.key) + len(new_value))
        header, enc_kv, mac = self._encrypt_entry(
            ctx, found.key, new_value, new_iv, found.header.next_ptr
        )
        if len(new_value) == found.header.val_size:
            # Same size: rewrite the record in place.
            self._write_entry(ctx, found.addr, header, enc_kv, mac)
        else:
            # Size changed: reallocate and splice into the same position.
            self.allocator.free(ctx, found.addr, found.header.total_size)
            new_addr = self.allocator.alloc(ctx, header.total_size)
            self._write_entry(ctx, new_addr, header, enc_kv, mac)
            if found.prev_addr:
                self._mem().write(
                    ctx, found.prev_addr, new_addr.to_bytes(8, "little")
                )
            else:
                self.buckets.write_head(ctx, bucket, new_addr)
        if self.macbuckets is not None:
            head = self.buckets.read_mac_ptr(ctx, bucket, self.config.pointer_check)
            self.macbuckets.replace(ctx, head, found.index, mac)
        by_bucket[bucket][found.index] = mac
        if update_set:
            self._update_set(ctx, set_id, by_bucket)
        self._sync_alloc_stats()

    def _insert_entry(
        self,
        ctx: ExecContext,
        bucket: int,
        set_id: int,
        by_bucket: Dict[int, List[bytes]],
        key: bytes,
        value: bytes,
        update_set: bool = True,
    ) -> None:
        iv_ctr = self._alloc_iv(len(key) + len(value))
        ctx.charge_rand(16)  # the per-entry IV cost real ShieldStore pays
        old_head = self.buckets.read_head(ctx, bucket, self.config.pointer_check)
        header, enc_kv, mac = self._encrypt_entry(ctx, key, value, iv_ctr, old_head)
        addr = self.allocator.alloc(ctx, header.total_size)
        self._write_entry(ctx, addr, header, enc_kv, mac)
        self.buckets.write_head(ctx, bucket, addr)
        if self.macbuckets is not None:
            head = self.buckets.read_mac_ptr(ctx, bucket, self.config.pointer_check)
            new_head = self.macbuckets.insert_front(ctx, head, mac)
            if new_head != head:
                self.buckets.write_mac_ptr(ctx, bucket, new_head)
        by_bucket[bucket].insert(0, mac)
        if update_set:
            self._update_set(ctx, set_id, by_bucket)
        self.count += 1
        self._sync_alloc_stats()

    def _remove_entry(
        self,
        ctx: ExecContext,
        bucket: int,
        set_id: int,
        by_bucket: Dict[int, List[bytes]],
        found: FoundEntry,
        update_set: bool = True,
    ) -> None:
        """Unlink a verified entry and retire its MAC (shared by
        ``delete`` and ``multi_delete``)."""
        if found.prev_addr:
            self._mem().write(
                ctx, found.prev_addr, found.header.next_ptr.to_bytes(8, "little")
            )
        else:
            self.buckets.write_head(ctx, bucket, found.header.next_ptr)
        self.allocator.free(ctx, found.addr, found.header.total_size)
        if self.macbuckets is not None:
            head = self.buckets.read_mac_ptr(ctx, bucket, self.config.pointer_check)
            new_head = self.macbuckets.remove(ctx, head, found.index)
            if new_head != head:
                self.buckets.write_mac_ptr(ctx, bucket, new_head)
        del by_bucket[bucket][found.index]
        if update_set:
            self._update_set(ctx, set_id, by_bucket)
        if self.cache is not None:
            self.cache.invalidate(found.key)
        self.count -= 1
        self._sync_alloc_stats()

    def _sync_alloc_stats(self) -> None:
        self.stats.alloc_ocalls = self.allocator.ocalls
        self.stats.alloc_requests = self.allocator.requests

    # ------------------------------------------------------------------
    # iteration (snapshots, tests)
    # ------------------------------------------------------------------
    def iter_raw_entries(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (bucket, raw_record_bytes) without charging cycles.

        Used by the snapshot child process, which reads the untrusted
        region directly (the entries are already encrypted, §4.4).
        """
        mem = self._mem()
        for bucket in range(self.config.num_buckets):
            addr_raw = mem.raw_read(self.buckets.slot_addr(bucket), 8)
            addr = int.from_bytes(addr_raw, "little")
            steps = 0
            while addr:
                if steps >= _MAX_CHAIN:
                    raise StoreError("hash chain cycle during snapshot walk")
                header = unpack_header(mem.raw_read(addr, HEADER_SIZE))
                record = mem.raw_read(addr, header.total_size)
                yield bucket, record
                addr = header.next_ptr
                steps += 1

    def iter_items(
        self, ctx: Optional[ExecContext] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Decrypt-iterate all (key, value) pairs (charged enclave work).

        Each bucket chain is MAC-verified against its covering set hash
        before its plaintext is yielded (verify-before-use, §4.3).
        Entries are decrypted through the suite's batched keystream path
        in fixed-size chunks; the per-entry AES cycle charges are
        unchanged (batching saves Python overhead, not modeled work).
        """
        ctx = self._context(ctx)
        chain: List[Tuple[EntryHeader, bytes]] = []
        current = -1
        for bucket, record in self.iter_raw_entries():
            if bucket != current:
                yield from self._emit_verified_bucket(ctx, current, chain)
                chain, current = [], bucket
            header = unpack_header(record[:HEADER_SIZE])
            enc_kv = record[HEADER_SIZE : HEADER_SIZE + header.kv_size]
            ctx.charge_aes(len(enc_kv))
            chain.append((header, enc_kv))
        yield from self._emit_verified_bucket(ctx, current, chain)

    def iter_set_items(
        self, set_id: int, ctx: Optional[ExecContext] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Decrypt-iterate one MAC set's (key, value) pairs, verified.

        Replication anti-entropy descends into exactly the bucket sets
        whose logical digests diverge, so it needs a per-set walk: each
        chain covered by ``set_id`` is MAC-verified against its set
        hash before plaintext is yielded, same as :meth:`iter_items`.
        """
        if not 0 <= set_id < self.mactree.num_hashes:
            raise StoreError(f"MAC set id {set_id} out of range")
        ctx = self._context(ctx)
        mem = self._mem()
        for bucket in self.mactree.buckets_of(set_id):
            addr = int.from_bytes(mem.raw_read(self.buckets.slot_addr(bucket), 8), "little")
            chain: List[Tuple[EntryHeader, bytes]] = []
            steps = 0
            while addr:
                if steps >= _MAX_CHAIN:
                    raise StoreError("hash chain cycle during set walk")
                header = unpack_header(mem.raw_read(addr, HEADER_SIZE))
                record = mem.raw_read(addr, header.total_size)
                enc_kv = record[HEADER_SIZE : HEADER_SIZE + header.kv_size]
                ctx.charge_aes(len(enc_kv))
                chain.append((header, enc_kv))
                addr = header.next_ptr
                steps += 1
            yield from self._emit_verified_bucket(ctx, bucket, chain)

    def _emit_verified_bucket(
        self,
        ctx: ExecContext,
        bucket: int,
        entries: List[Tuple[EntryHeader, bytes]],
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Authenticate one bucket chain, then decrypt-yield its entries.

        Mirrors the read path: the chain's entry MACs are checked
        against the covering set hash (and, in MAC-bucket mode, against
        the authenticated per-entry MAC list) before any plaintext
        leaves this method — a tampered or truncated chain raises
        :class:`IntegrityError` instead of yielding forged items.
        """
        if not entries:
            return
        own_macs: List[bytes] = []
        for header, enc_kv in entries:
            ctx.charge_cmac(len(enc_kv) + 25)
            own_macs.append(self.suite.mac(mac_message(header, enc_kv)))
        # On a MAC-cache hit by_bucket is the enclave-resident verified
        # copy, so the comparison below authenticates the recomputed
        # chain MACs in every configuration; without a hit it falls back
        # to the full set-hash verification as before.
        _sid, by_bucket = self._verify_covering_set(
            ctx, bucket, own_macs=own_macs if self.macbuckets is None else None
        )
        authenticated = by_bucket[bucket]
        if len(own_macs) != len(authenticated) or not compare_digest(
            b"".join(own_macs), b"".join(authenticated)
        ):
            raise IntegrityError(
                f"bucket {bucket} chain does not match its authenticated "
                "MACs: untrusted entries were tampered with or reordered"
            )
        for start in range(0, len(entries), 64):
            yield from self._decrypt_chunk(entries[start : start + 64])

    def _decrypt_chunk(self, chunk) -> Iterator[Tuple[bytes, bytes]]:
        plains = self.suite.decrypt_many(
            [(header.iv_ctr, enc_kv) for header, enc_kv in chunk]
        )
        for (header, _enc_kv), plain in zip(chunk, plains):
            yield plain[: header.key_size], plain[header.key_size :]

    # ------------------------------------------------------------------
    # snapshot plumbing (see repro.core.persistence for the manager)
    # ------------------------------------------------------------------
    def metadata_blob(self) -> bytes:
        """Serialize in-enclave metadata for sealing (§4.4)."""
        tree = self.mactree.dump()
        return (
            len(self.keyring.master).to_bytes(4, "little")
            + self.keyring.master
            + self.count.to_bytes(8, "little")
            + tree
        )

    def load_metadata_blob(self, blob: bytes) -> None:
        """Restore sealed metadata (inverse of :meth:`metadata_blob`)."""
        mlen = int.from_bytes(blob[:4], "little")
        master = blob[4 : 4 + mlen]
        off = 4 + mlen
        self.count = int.from_bytes(blob[off : off + 8], "little")
        off += 8
        self.keyring = KeyRing(master)
        self.suite = make_suite(
            self.config.suite_name, self.keyring.enc_key, self.keyring.mac_key
        )
        self.mactree.load(blob[off:])
        # A restore / checkpoint install replaces the untrusted table
        # wholesale: both enclave caches describe the old world and must
        # flush (the MAC cache would otherwise be stale "ground truth").
        if self.maccache is not None:
            self.maccache.clear()
        if self.cache is not None:
            self.cache.clear()

    def untrusted_bytes_live(self) -> int:
        """Bytes of untrusted memory currently holding store data."""
        return self.allocator.bytes_live + self.config.num_buckets * 16
