"""Sealed shared-memory SPSC ring buffers: the switchless data plane.

The paper's hot path never crosses the enclave boundary per request —
HotCalls-style shared-memory handoffs replace OCALLs (§2.2, and the
exit-less data-path design of Harnik et al.).  This module is that idea
applied to our worker IPC: instead of round-tripping every batch frame
through a ``multiprocessing`` pipe (two kernel copies plus a wakeup per
direction), the parent and each worker share two fixed-size ring
buffers in :mod:`multiprocessing.shared_memory` — one request ring
(parent produces, worker consumes) and one reply ring (the reverse).

Only *sealed* records ride the rings.  Shared memory is host-visible,
i.e. untrusted under the §2.3 threat model, exactly like the pipe it
replaces: every frame written here is already encrypted + MACed by the
per-incarnation :class:`~repro.net.message.SecureChannel` the pool
derives in :mod:`repro.core.procpool`.  shieldlint's trust map treats
any *unsealed* write into a ``SharedMemory`` buffer as a trust-boundary
violation.

Ring layout
-----------
::

    +---------------- header (64 bytes) ----------------+
    | head u64 | tail u64 | cwait u8 | pwait u8 | pad   |
    +------------- data (num_slots * slot_size) --------+
    | frame := len u32 | sealed record | pad to slot    |
    | frame := ...                                      |
    +---------------------------------------------------+

``head`` and ``tail`` are *monotonic* byte counters (physical offset =
``counter % capacity``), each written by exactly one side: the producer
advances ``head`` after copying a frame in, the consumer advances
``tail`` after copying a frame out.  Frames start on slot boundaries
(their footprint is padded up to a slot multiple) and the payload bytes
are logically contiguous — a frame crossing the physical end of the
ring is split into two ``memoryview`` copies.  A frame larger than the
whole ring streams through it in chunks: the producer publishes bytes
as slots free up and the consumer releases them as it assembles the
frame, so snapshot sections of any size cross without growing the ring.

Readiness without futexes
-------------------------
Each side first spins a few cooperative ``sleep(0)`` yields (on a busy
single-core host that hands the CPU to the peer, which is exactly what
must run next), then arms its *waiting flag* in the header and naps on
the **doorbell** — one duplex ``multiprocessing`` ``Connection`` pair
per worker, shared by both rings.  A producer publishing into a ring
whose consumer declared itself waiting sends one doorbell byte; the
waiter re-checks the ring *after* arming the flag and before napping,
so the publish-then-check / arm-then-check orders close the lost-wakeup
race.  Doorbell naps are always bounded by :data:`POLL_INTERVAL`, so a
dropped doorbell (see the ``shmring.doorbell`` fault point) degrades to
at most one poll interval of added latency — never a deadlock — and
the doorbell's EOF doubles as peer-death detection for the worker.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Callable, Optional

from repro.errors import StoreError

try:  # pragma: no cover - exercised by platform, not by branch
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    _shared_memory = None

__all__ = [
    "DEFAULT_NUM_SLOTS",
    "DEFAULT_SLOT_SIZE",
    "Doorbell",
    "RingPeerGone",
    "RingTimeout",
    "ShmRing",
    "shm_supported",
    "spin_budget",
]

# 1024 slots x 1 KiB = 1 MiB per ring: a 256-op batch frame fits in a
# handful of slots, and snapshot sections stream through chunked.
DEFAULT_NUM_SLOTS = 1024
DEFAULT_SLOT_SIZE = 1024

HEADER_SIZE = 64
_HEAD_OFF = 0   # u64, producer-owned monotonic byte counter
_TAIL_OFF = 8   # u64, consumer-owned monotonic byte counter
_CWAIT_OFF = 16  # u8, consumer armed the doorbell (producer must ring)
_PWAIT_OFF = 17  # u8, producer armed the doorbell (consumer must ring)

_U64 = struct.Struct("<Q")
_LEN = struct.Struct("<I")

# Upper bound on one doorbell nap.  CPython gives no cross-process
# memory-ordering guarantees for the waiting flags, so waits are always
# bounded: a lost doorbell costs at most this much latency.
POLL_INTERVAL = 0.02
def spin_budget(cpus: Optional[int] = None) -> int:
    """Cooperative yields before arming the doorbell.

    With spare cores the peer runs concurrently, so a short spin
    usually observes progress without any doorbell syscall at all — the
    switchless fast path.  On a single-core host the peer can only run
    while *we* are off the CPU, so spinning merely steals its cycles
    (each ``sleep(0)`` round-trips the scheduler and pollutes the
    cache): there the budget is zero and waits arm the doorbell
    immediately, degrading to exactly the pipe plane's poll/wake cost.
    """
    if cpus is None:
        cpus = os.cpu_count() or 1
    return 100 if cpus > 1 else 0


SPIN_CHECKS = spin_budget()


def shm_supported() -> bool:
    """Whether this platform can host shared-memory rings."""
    return _shared_memory is not None


class RingTimeout(OSError):
    """A bounded ring wait expired before the peer made progress."""


class RingPeerGone(OSError):
    """The peer died or closed its doorbell end mid-wait."""


class Doorbell:
    """The wakeup line both rings of one worker share.

    A doorbell byte carries no meaning beyond "re-check your ring":
    both sides send on publish/release and drain everything pending on
    wake, so sharing one duplex ``Connection`` pair between the request
    and reply rings is safe — each process only ever naps on one
    condition at a time (the plane is strict request/reply).
    """

    def __init__(self, conn, fault_point: Optional[str] = None):
        self.conn = conn
        self.fault_point = fault_point
        self.on_crash: Optional[Callable[[], None]] = None
        self.rings = 0
        self.waits = 0

    def ring(self) -> None:
        """Send one wakeup byte (best-effort: peer death is the alive
        callback's job, not the doorbell's)."""
        if self.fault_point is not None:
            from repro.sim import faults

            try:
                hit = faults.check(
                    self.fault_point, b"\x01", on_crash=self.on_crash
                )
            except OSError:
                return  # injected crash/error: the wakeup byte is lost
            if hit is not None and hit.kind == "drop":
                return
        self.rings += 1
        try:
            self.conn.send_bytes(b"\x01")
        except (BrokenPipeError, OSError):
            pass

    def wait(self, timeout: float) -> None:
        """Nap until rung or ``timeout``; drains every pending byte."""
        self.waits += 1
        try:
            if self.conn.poll(timeout):
                while True:
                    self.conn.recv_bytes(maxlength=64)
                    if not self.conn.poll(0):
                        break
        except EOFError as exc:
            raise RingPeerGone("ring doorbell closed by peer") from exc
        except OSError as exc:
            raise RingPeerGone(f"ring doorbell broke ({exc})") from exc

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class ShmRing:
    """One direction of a worker's data plane (single producer, single
    consumer) in one ``SharedMemory`` segment.

    Exactly one process holds the ``producer`` role and one the
    ``consumer`` role; each caches its own counter locally (it is the
    only writer) and reads the peer's from the header.  The creating
    side *owns* the segment and unlinks it on :meth:`close`.
    """

    def __init__(self, shm, num_slots: int, slot_size: int, role: str, owner: bool):
        if role not in ("producer", "consumer"):
            raise StoreError(f"unknown ring role {role!r}")
        if num_slots < 2 or slot_size < 16:
            raise StoreError("ring needs >= 2 slots of >= 16 bytes")
        self.shm = shm
        self._buf = shm.buf
        self.num_slots = num_slots
        self.slot_size = slot_size
        self.capacity = num_slots * slot_size
        self.role = role
        self._owner = owner
        # Cache of the counter this side owns (head for the producer,
        # tail for the consumer) — re-read from the header at attach.
        own_off = _HEAD_OFF if role == "producer" else _TAIL_OFF
        self._local = _U64.unpack_from(self._buf, own_off)[0]
        self.doorbell: Optional[Doorbell] = None
        self._closed = False
        # -- occupancy / wait counters (parent aggregates them into
        #    TransportStats; see repro.core.stats) --
        self.frames = 0          # complete frames moved through this end
        self.bytes_moved = 0     # prefix + payload bytes (pad excluded)
        self.full_waits = 0      # producer found the ring full
        self.doorbell_waits = 0  # times this end armed its waiting flag
        self.max_occupancy = 0   # high-water mark of in-flight bytes

    # -- construction --------------------------------------------------------
    @classmethod
    def create(
        cls,
        role: str,
        num_slots: int = DEFAULT_NUM_SLOTS,
        slot_size: int = DEFAULT_SLOT_SIZE,
    ) -> "ShmRing":
        if not shm_supported():
            raise StoreError("platform has no multiprocessing.shared_memory")
        shm = _shared_memory.SharedMemory(
            create=True, size=HEADER_SIZE + num_slots * slot_size
        )
        shm.buf[:HEADER_SIZE] = bytes(HEADER_SIZE)
        return cls(shm, num_slots, slot_size, role, owner=True)

    @classmethod
    def attach(
        cls, name: str, role: str, num_slots: int, slot_size: int
    ) -> "ShmRing":
        if not shm_supported():
            raise StoreError("platform has no multiprocessing.shared_memory")
        # Spawned workers inherit the parent's resource tracker, whose
        # registry is a set: the attach-side register is idempotent and
        # cleanup stays owned by the creating side's unlink.
        shm = _shared_memory.SharedMemory(name=name)
        return cls(shm, num_slots, slot_size, role, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- header accessors ----------------------------------------------------
    def _peer_counter(self) -> int:
        """The counter the *other* side owns (tail for a producer)."""
        off = _TAIL_OFF if self.role == "producer" else _HEAD_OFF
        return _U64.unpack_from(self._buf, off)[0]

    def _publish_counter(self, value: int) -> None:
        off = _HEAD_OFF if self.role == "producer" else _TAIL_OFF
        _U64.pack_into(self._buf, off, value)
        self._local = value

    def _peer_waiting(self) -> bool:
        off = _CWAIT_OFF if self.role == "producer" else _PWAIT_OFF
        return self._buf[off] != 0

    def _set_waiting(self, flag: bool) -> None:
        off = _PWAIT_OFF if self.role == "producer" else _CWAIT_OFF
        self._buf[off] = 1 if flag else 0

    # -- occupancy -----------------------------------------------------------
    def data_available(self) -> int:
        """Unconsumed bytes currently in the ring."""
        if self.role == "producer":
            return self._local - self._peer_counter()
        return self._peer_counter() - self._local

    def free_space(self) -> int:
        return self.capacity - self.data_available()

    # -- blocking ------------------------------------------------------------
    def _wait(
        self,
        ready: Callable[[], bool],
        deadline: Optional[float],
        alive: Optional[Callable[[], bool]],
    ) -> None:
        """Block until ``ready()``; spin-yield first, then doorbell-nap.

        Raises :class:`RingTimeout` past ``deadline`` and
        :class:`RingPeerGone` when ``alive`` reports the peer dead (or
        the doorbell hits EOF).  Naps are bounded by ``POLL_INTERVAL``
        so a lost doorbell can only add latency.
        """
        for _ in range(SPIN_CHECKS):
            if ready():
                return
            time.sleep(0)
        if ready():
            return
        self.doorbell_waits += 1
        try:
            while True:
                self._set_waiting(True)
                if ready():
                    return
                nap = POLL_INTERVAL
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RingTimeout(
                            f"ring {self.role} wait expired "
                            f"(occupancy {self.data_available()}B)"
                        )
                    nap = min(nap, remaining)
                if self.doorbell is not None:
                    self.doorbell.wait(nap)
                else:
                    time.sleep(nap)
                if ready():
                    return
                if alive is not None and not alive():
                    raise RingPeerGone("ring peer process died")
        finally:
            self._set_waiting(False)

    # -- byte movement -------------------------------------------------------
    def _copy_in(self, counter: int, data) -> None:
        """Write ``data`` at monotonic position ``counter`` (wrap-split)."""
        pos = counter % self.capacity
        src = memoryview(data)
        n = len(src)
        first = min(n, self.capacity - pos)
        base = HEADER_SIZE + pos
        self._buf[base : base + first] = src[:first]
        if first < n:
            self._buf[HEADER_SIZE : HEADER_SIZE + n - first] = src[first:]

    def _copy_out(self, counter: int, dest, dest_off: int, n: int) -> None:
        """Read ``n`` bytes at ``counter`` into ``dest[dest_off:]``."""
        pos = counter % self.capacity
        first = min(n, self.capacity - pos)
        base = HEADER_SIZE + pos
        dest[dest_off : dest_off + first] = self._buf[base : base + first]
        if first < n:
            dest[dest_off + first : dest_off + n] = self._buf[
                HEADER_SIZE : HEADER_SIZE + n - first
            ]

    def _padded(self, total: int) -> int:
        return -(-total // self.slot_size) * self.slot_size

    def _advance(self, new_counter: int) -> None:
        """Publish progress and ring the peer iff it armed its flag."""
        self._publish_counter(new_counter)
        if self.role == "producer":
            occupancy = self.data_available()
            if occupancy > self.max_occupancy:
                self.max_occupancy = occupancy
        if self._peer_waiting() and self.doorbell is not None:
            self.doorbell.ring()

    # -- producer side -------------------------------------------------------
    def write(
        self,
        frame,
        deadline: Optional[float] = None,
        alive: Optional[Callable[[], bool]] = None,
        block: bool = True,
    ) -> bool:
        """Append one length-prefixed frame; ``True`` once fully written.

        ``block=False`` is the *shed* path: a frame that does not fit in
        the free space right now is refused up front (``False``) with
        zero bytes written, so the caller can drop or retry without the
        ring ever holding a half-frame.  Frames larger than the whole
        ring always stream (they cannot be admitted atomically) and are
        therefore refused when ``block=False``.
        """
        if self.role != "producer":
            raise StoreError("read end cannot write")
        total = _LEN.size + len(frame)
        padded = self._padded(total)
        if padded > self.capacity:
            if not block:
                return False
            self._write_streaming(frame, total, padded, deadline, alive)
        else:
            if self.capacity - (self._local - self._peer_counter()) < padded:
                if not block:
                    return False
                self.full_waits += 1
                self._wait(
                    lambda: self.capacity
                    - (self._local - self._peer_counter())
                    >= padded,
                    deadline,
                    alive,
                )
            self._copy_in(self._local, _LEN.pack(len(frame)))
            self._copy_in(self._local + _LEN.size, frame)
            self._advance(self._local + padded)
        self.frames += 1
        self.bytes_moved += total
        return True

    def _write_streaming(
        self, frame, total: int, padded: int, deadline, alive
    ) -> None:
        """Stream a larger-than-ring frame through in chunks.

        Publishes each chunk as it lands so the consumer can release
        space behind it; only the payload region is copied (pad bytes
        are published but never written).
        """
        prefix = _LEN.pack(len(frame))
        payload = memoryview(frame)
        sent = 0  # bytes of the padded stream already published
        while sent < padded:
            free = self.capacity - (self._local - self._peer_counter())
            if free <= 0:
                self.full_waits += 1
                self._wait(
                    lambda: self.capacity - (self._local - self._peer_counter())
                    > 0,
                    deadline,
                    alive,
                )
                free = self.capacity - (self._local - self._peer_counter())
            take = min(free, padded - sent)
            offset = 0
            if sent < _LEN.size:
                n = min(sent + take, _LEN.size) - sent
                self._copy_in(self._local + offset, prefix[sent : sent + n])
                offset += n
            pay_lo = max(sent, _LEN.size) - _LEN.size
            pay_hi = min(sent + take, total) - _LEN.size
            if pay_hi > pay_lo:
                self._copy_in(self._local + offset, payload[pay_lo:pay_hi])
            self._advance(self._local + take)
            sent += take

    # -- consumer side -------------------------------------------------------
    def poll(self, timeout: float) -> bool:
        """Whether a frame (or its first slots) is ready to read."""
        if self.role != "consumer":
            raise StoreError("write end cannot poll for data")
        if self.data_available() >= _LEN.size:
            return True
        if timeout <= 0:
            return False
        try:
            self._wait(
                lambda: self.data_available() >= _LEN.size,
                time.monotonic() + timeout,
                None,
            )
        except (RingTimeout, RingPeerGone):
            return self.data_available() >= _LEN.size
        return True

    def read(
        self,
        deadline: Optional[float] = None,
        alive: Optional[Callable[[], bool]] = None,
    ) -> bytes:
        """Pop the next frame (blocking, deadline- and liveness-aware)."""
        if self.role != "consumer":
            raise StoreError("write end cannot read")
        if self.data_available() < _LEN.size:
            self._wait(
                lambda: self.data_available() >= _LEN.size, deadline, alive
            )
        scratch = bytearray(_LEN.size)
        self._copy_out(self._local, scratch, 0, _LEN.size)
        length = _LEN.unpack(bytes(scratch))[0]
        total = _LEN.size + length
        padded = self._padded(total)
        out = bytearray(length)
        if padded <= self.capacity:
            if self.data_available() < padded:
                self._wait(
                    lambda: self.data_available() >= padded, deadline, alive
                )
            self._copy_out(self._local + _LEN.size, out, 0, length)
            self._advance(self._local + padded)
        else:
            self._read_streaming(out, total, padded, deadline, alive)
        self.frames += 1
        self.bytes_moved += total
        return bytes(out)

    def _read_streaming(
        self, out: bytearray, total: int, padded: int, deadline, alive
    ) -> None:
        done = 0  # bytes of the padded stream released back to the producer
        while done < padded:
            avail = self.data_available()
            if avail <= 0:
                self._wait(
                    lambda: self.data_available() > 0, deadline, alive
                )
                avail = self.data_available()
            take = min(avail, padded - done)
            pay_lo = max(done, _LEN.size) - _LEN.size
            pay_hi = min(done + take, total) - _LEN.size
            if pay_hi > pay_lo:
                src = self._local + (max(done, _LEN.size) - done)
                self._copy_out(src, out, pay_lo, pay_hi - pay_lo)
            self._advance(self._local + take)
            done += take

    # -- lifecycle -----------------------------------------------------------
    def snapshot(self) -> dict:
        """Counter view for stats aggregation and debugging."""
        return {
            "role": self.role,
            "frames": self.frames,
            "bytes_moved": self.bytes_moved,
            "full_waits": self.full_waits,
            "doorbell_waits": self.doorbell_waits,
            "max_occupancy": self.max_occupancy,
            "capacity": self.capacity,
        }

    def close(self) -> None:
        """Release the mapping; the owning side also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
