"""Enclave-resident cache of verified bucket-set MAC lists.

The §4.3 replay defense forces every operation to re-read **every entry
MAC of the covering bucket set** from untrusted memory and recompute the
keyed set hash — even when nothing in the set changed since the last
verified read.  This cache trades spare enclave memory for that work
(the same EPC-size tradeoff the paper explores in §4.3/Fig. 15 and
§6.3): once a set's MAC lists have been gathered and verified, the
authenticated copy is kept *inside the enclave*, and subsequent
operations on the set verify only what they actually use — the found
entry's recomputed MAC against the cached copy at its chain position —
in O(1) instead of O(bucket-set).

Soundness (see docs/INTERNALS.md for the full argument): the cached
lists live in enclave memory the host cannot write, so they are ground
truth exactly like the in-enclave set hashes they stand in for.  Every
mutation write-throughs the cached list on the same code path that
recomputes the set hash (:meth:`ShieldStore._update_set`), and snapshot
restore flushes the cache, so a hit can never compare against stale
state.  A miss or eviction simply falls back to the full §4.3 gather +
keyed-hash verification and repopulates.

Like :class:`~repro.core.cache.EnclaveCache`, the cache is backed by a
real enclave allocation and every hit/store touches addresses inside
it, so its EPC cost (and paging, when oversized) emerges from the
simulator rather than being assumed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.cache import clamp_touch_offset
from repro.core.entry import MAC_SIZE
from repro.sim.enclave import Enclave, ExecContext

# Accounting overheads (bytes) beyond the raw MAC material: per-bucket
# list headers and the per-set map/LRU bookkeeping.
_PER_BUCKET_OVERHEAD = 8
_PER_SET_OVERHEAD = 48


class MacSetCache:
    """Byte-budgeted LRU of verified per-set MAC lists, in enclave memory.

    Values are the same ``{bucket: [mac, ...]}`` dicts the store's
    verification plumbing passes around.  The store deliberately caches
    the *live object* — mutations update it in place before the set
    hash is recomputed, which is what keeps the cached copy coherent
    through batched (dirty-set) mutation windows.
    """

    def __init__(self, enclave: Enclave, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("MAC cache capacity must be positive")
        self._memory = enclave.machine.memory
        self.capacity_bytes = capacity_bytes
        # Address space the cached MAC lists notionally occupy; accesses
        # into it drive the EPC model.  Contents live in _sets.
        self.base = enclave.alloc(capacity_bytes, materialize=False)
        # set_id -> (by_bucket, offset, cost snapshot at last store())
        self._sets: "OrderedDict[int, tuple]" = OrderedDict()
        self.bytes_used = 0
        self.evictions = 0
        self._cursor = 0

    @staticmethod
    def _set_cost_bytes(by_bucket: Dict[int, List[bytes]]) -> int:
        macs = sum(len(lst) for lst in by_bucket.values())
        return (
            macs * MAC_SIZE
            + len(by_bucket) * _PER_BUCKET_OVERHEAD
            + _PER_SET_OVERHEAD
        )

    def _touch(self, ctx: ExecContext, offset: int, size: int, write: bool) -> None:
        offset = clamp_touch_offset(offset, size, self.capacity_bytes)
        self._memory.touch(ctx, self.base + offset, size, write)

    def lookup(
        self, ctx: ExecContext, set_id: int
    ) -> Optional[Dict[int, List[bytes]]]:
        """Return the verified MAC lists for ``set_id`` or None.

        Charges an EPC read over the cached material (the enclave copy
        is what the operation will compare against).
        """
        hit = self._sets.get(set_id)
        if hit is None:
            return None
        by_bucket, offset, cost = hit
        self._sets.move_to_end(set_id)
        self._touch(ctx, offset, cost, write=False)
        return by_bucket

    def store(
        self, ctx: ExecContext, set_id: int, by_bucket: Dict[int, List[bytes]]
    ) -> None:
        """Insert or refresh a *verified* set, evicting LRU sets to fit.

        Callers must only pass lists that were just authenticated (full
        §4.3 verification) or that descend from an authenticated copy
        through the store's own mutation write-through.  Re-storing an
        already-cached set re-accounts its cost — mutations change the
        number of MACs in the live dict.
        """
        cost = self._set_cost_bytes(by_bucket)
        old = self._sets.pop(set_id, None)
        if old is not None:
            self.bytes_used -= old[2]
        if cost > self.capacity_bytes:
            # Too large to ever cache.  The pop above also dropped any
            # stale smaller copy, so a set that grew past the budget
            # falls back to full verification instead of stale state.
            return
        while self.bytes_used + cost > self.capacity_bytes and self._sets:
            _evicted, (_lists, _off, ecost) = self._sets.popitem(last=False)
            self.bytes_used -= ecost
            self.evictions += 1
        offset = self._cursor
        self._cursor = (self._cursor + cost) % self.capacity_bytes
        self._sets[set_id] = (by_bucket, offset, cost)
        self.bytes_used += cost
        self._touch(ctx, offset, cost, write=True)

    def invalidate(self, set_id: int) -> None:
        """Drop one set (falls back to full verification next touch)."""
        old = self._sets.pop(set_id, None)
        if old is not None:
            self.bytes_used -= old[2]

    def clear(self) -> None:
        """Flush everything — required on snapshot restore / checkpoint
        install, where untrusted memory was replaced wholesale."""
        self._sets.clear()
        self.bytes_used = 0
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._sets)
