"""In-enclave LRU cache over hot key-value pairs (ShieldOpt+cache).

Section 6.3 adds "a simple cache design to use the remaining memory of
EPC efficiently at small working set sizes": plaintext copies of hot
entries live in enclave memory, so a hit skips the untrusted walk,
decryption and integrity verification entirely.  The cache is backed by
a real enclave allocation and every hit/miss touches addresses inside
it, so EPC pressure (and paging, if the cache is configured larger than
the EPC) emerges from the simulator rather than being assumed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.enclave import Enclave, ExecContext


def clamp_touch_offset(offset: int, size: int, capacity_bytes: int) -> int:
    """Clamp a notional cache offset so [offset, offset+size) stays
    inside a ``capacity_bytes`` allocation.

    Wraps first (cursors run past the end by design), then pins the
    span's tail to the allocation's end.  Entries as large as the whole
    capacity map to offset 0 rather than degenerating.
    """
    offset %= capacity_bytes
    return min(offset, max(0, capacity_bytes - size))


class EnclaveCache:
    """Byte-budgeted LRU of plaintext values, resident in enclave memory."""

    def __init__(self, enclave: Enclave, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self._memory = enclave.machine.memory
        self.capacity_bytes = capacity_bytes
        # Address space the cached bytes notionally occupy; accesses into
        # it drive the EPC model.  Contents are mirrored in _entries.
        self.base = enclave.alloc(capacity_bytes, materialize=False)
        self._entries: "OrderedDict[bytes, tuple]" = OrderedDict()  # key -> (value, offset)
        self.bytes_used = 0
        self._cursor = 0

    def _entry_cost_bytes(self, key: bytes, value: bytes) -> int:
        return len(key) + len(value) + 32  # bookkeeping overhead

    def _touch(self, ctx: ExecContext, offset: int, size: int, write: bool) -> None:
        offset = clamp_touch_offset(offset, size, self.capacity_bytes)
        self._memory.touch(ctx, self.base + offset, size, write)

    def lookup(self, ctx: ExecContext, key: bytes) -> Optional[bytes]:
        """Return the cached value or None; charges an EPC access."""
        hit = self._entries.get(key)
        if hit is None:
            return None
        value, offset = hit
        self._entries.move_to_end(key)
        self._touch(ctx, offset, len(key) + len(value), write=False)
        return value

    def insert(self, ctx: ExecContext, key: bytes, value: bytes) -> None:
        """Insert/refresh a cached pair, evicting LRU pairs to fit."""
        cost = self._entry_cost_bytes(key, value)
        if cost > self.capacity_bytes:
            return  # too large to ever cache
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= self._entry_cost_bytes(key, old[0])
        while self.bytes_used + cost > self.capacity_bytes and self._entries:
            evicted_key, (evicted_val, _off) = self._entries.popitem(last=False)
            self.bytes_used -= self._entry_cost_bytes(evicted_key, evicted_val)
        offset = self._cursor
        self._cursor = (self._cursor + cost) % self.capacity_bytes
        self._entries[key] = (value, offset)
        self.bytes_used += cost
        self._touch(ctx, offset, len(key) + len(value), write=True)

    def invalidate(self, key: bytes) -> None:
        """Drop a key after a store-side delete."""
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= self._entry_cost_bytes(key, old[0])

    def clear(self) -> None:
        """Flush everything (snapshot restore replaces the whole table)."""
        self._entries.clear()
        self.bytes_used = 0
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._entries)
